//! Ansor-lite schedule search (§7.5, Fig 14b).
//!
//! Evolutionary search over the schedule space of one task: each round
//! proposes candidates (mutations of the population plus fresh samples), a
//! cost model ranks them, the top few are "measured" (on the device
//! simulator — standing in for real-hardware measurement in Ansor's loop),
//! and measurements refresh the population. Better cost models prune the
//! space better and find faster schedules in the same number of rounds.

use std::collections::HashMap;

use devsim::{DeviceSpec, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tir::{
    crossover_schedule, lower, mutate_schedule, sample_schedule, Nest, Schedule, TensorProgram,
};

use crate::e2e::encode_programs;
use crate::trainer::{InferenceModel, TrainedModel};

/// A cost model usable by the search: lower score = predicted faster.
pub trait CostModel {
    /// Scores a lowered program for a device.
    fn score(&self, prog: &TensorProgram, dev: &DeviceSpec) -> f64;

    /// Scores many candidate programs at once. The default loops over
    /// [`CostModel::score`]; batched models override this so the search
    /// pays one dense forward pass per leaf-count bucket instead of one
    /// tape per candidate.
    fn score_batch(&self, progs: &[&TensorProgram], dev: &DeviceSpec) -> Vec<f64> {
        progs.iter().map(|p| self.score(p, dev)).collect()
    }
}

impl CostModel for TrainedModel {
    fn score(&self, prog: &TensorProgram, dev: &DeviceSpec) -> f64 {
        self.score_batch(&[prog], dev)[0]
    }

    fn score_batch(&self, progs: &[&TensorProgram], dev: &DeviceSpec) -> Vec<f64> {
        let enc = encode_programs(progs, dev, self.predictor.config().theta, self.use_pe);
        self.predict_samples(&enc)
    }
}

/// A frozen (inference-only) model is a cost model too: the CLI `search`
/// subcommand restores one from a snapshot and drives search with zero
/// recordings. Invalid leaf counts and prediction failures rank INFINITY,
/// matching the serving engine's `CostModel` convention.
impl CostModel for InferenceModel {
    fn score(&self, prog: &TensorProgram, dev: &DeviceSpec) -> f64 {
        self.score_batch(&[prog], dev)[0]
    }

    fn score_batch(&self, progs: &[&TensorProgram], dev: &DeviceSpec) -> Vec<f64> {
        let enc = encode_programs(progs, dev, self.predictor.config().theta, self.use_pe);
        let max_leaves = self.predictor.config().max_leaves;
        let valid_idx: Vec<usize> = enc
            .iter()
            .enumerate()
            .filter(|(_, s)| (1..=max_leaves).contains(&s.leaf_count))
            .map(|(i, _)| i)
            .collect();
        let mut out = vec![f64::INFINITY; progs.len()];
        if valid_idx.is_empty() {
            return out;
        }
        if valid_idx.len() == enc.len() {
            if let Ok(per) = self.predict_samples(&enc) {
                return per;
            }
            return out;
        }
        let valid: Vec<crate::batch::EncodedSample> =
            valid_idx.iter().map(|&i| enc[i].clone()).collect();
        if let Ok(per) = self.predict_samples(&valid) {
            for (&i, p) in valid_idx.iter().zip(per) {
                out[i] = p;
            }
        }
        out
    }
}

/// An oracle cost model (the simulator itself) — upper bound for search
/// quality comparisons.
pub struct OracleCost;

impl CostModel for OracleCost {
    fn score(&self, prog: &TensorProgram, dev: &DeviceSpec) -> f64 {
        Simulator::new(dev.clone()).latency_seconds(prog)
    }
}

/// A random cost model — lower bound for search quality comparisons.
pub struct RandomCost {
    /// Seed for the pseudo-random scores.
    pub seed: u64,
}

impl CostModel for RandomCost {
    fn score(&self, prog: &TensorProgram, _dev: &DeviceSpec) -> f64 {
        // Deterministic hash-based pseudo-random score.
        let mut h = self.seed ^ prog.node_count() as u64;
        h ^= (prog.total_iterations() as u64).wrapping_mul(0x9E3779B97F4A7C15);
        h = h.wrapping_mul(0xBF58476D1CE4E5B9);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Search rounds.
    pub rounds: usize,
    /// Candidates proposed per round.
    pub candidates_per_round: usize,
    /// Candidates measured (on the simulator) per round — Ansor measures
    /// ~10 per round.
    pub measure_per_round: usize,
    /// Population size kept across rounds.
    pub population: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            rounds: 30,
            candidates_per_round: 24,
            measure_per_round: 2,
            population: 8,
            seed: 0,
        }
    }
}

/// Trace of one search run.
#[derive(Debug, Clone)]
pub struct SearchTrace {
    /// Best measured latency (seconds) after each round — Fig 14b's curve.
    pub best_per_round: Vec<f64>,
    /// The best schedule found.
    pub best_schedule: Schedule,
    /// Total simulator measurements spent.
    pub measurements: usize,
}

/// Runs the evolutionary search on one task nest.
pub fn search_schedule(
    nest: &Nest,
    dev: &DeviceSpec,
    cost: &dyn CostModel,
    cfg: &SearchConfig,
) -> SearchTrace {
    let sim = Simulator::new(dev.clone());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut population: Vec<Schedule> = Vec::new();
    let mut best_measured = f64::INFINITY;
    let mut best_schedule = Schedule::default();
    let mut best_per_round = Vec::with_capacity(cfg.rounds);
    let mut measurements = 0usize;
    for _ in 0..cfg.rounds {
        // Propose candidates: mutations of the population + fresh samples.
        let mut candidates: Vec<(Schedule, TensorProgram)> = Vec::new();
        for i in 0..cfg.candidates_per_round {
            let sched = if !population.is_empty() && i % 2 == 0 {
                let parent = &population[i / 2 % population.len()];
                mutate_schedule(nest, parent, &mut rng)
            } else {
                sample_schedule(nest, &mut rng)
            };
            if let Ok(prog) = lower(nest, &sched) {
                candidates.push((sched, prog));
            }
        }
        if candidates.is_empty() {
            best_per_round.push(best_measured);
            continue;
        }
        // Cost model ranks (one batched call per round); top-k get measured.
        let progs: Vec<&TensorProgram> = candidates.iter().map(|(_, p)| p).collect();
        let mut scored: Vec<(f64, usize)> = cost
            .score_batch(&progs, dev)
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s, i))
            .collect();
        // Total order so non-scoreable candidates (NaN from a failed
        // prediction) sort last — never measured — instead of panicking.
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(_, ci) in scored.iter().take(cfg.measure_per_round) {
            let t = sim.latency_seconds(&candidates[ci].1);
            measurements += 1;
            if t < best_measured {
                best_measured = t;
                best_schedule = candidates[ci].0.clone();
            }
        }
        // Population = schedules of the best-ranked candidates, deduped by
        // schedule identity first: a parent and its no-op mutation would
        // otherwise occupy two of the top-`population` slots and silently
        // shrink the effective diversity.
        population.clear();
        for &(_, ci) in &scored {
            if population.len() >= cfg.population {
                break;
            }
            if !population.contains(&candidates[ci].0) {
                population.push(candidates[ci].0.clone());
            }
        }
        best_per_round.push(best_measured);
    }
    SearchTrace {
        best_per_round,
        best_schedule,
        measurements,
    }
}

/// How a generational round's candidates are proposed, as integer weights.
///
/// Out of every `mutation + crossover + fresh` candidates, `mutation` are
/// mutations of round-robin population parents, `crossover` graft one
/// parent's tiling onto another's order/annotations
/// ([`tir::crossover_schedule`]), and `fresh` are new random samples.
/// Round 0 (empty population) is always all-fresh.
#[derive(Debug, Clone)]
pub struct ProposerMix {
    /// Weight of population mutations.
    pub mutation: usize,
    /// Weight of crossover-by-stage children.
    pub crossover: usize,
    /// Weight of fresh random samples.
    pub fresh: usize,
}

impl Default for ProposerMix {
    fn default() -> Self {
        ProposerMix {
            mutation: 2,
            crossover: 1,
            fresh: 1,
        }
    }
}

/// Configuration of the generational large-scale search.
#[derive(Debug, Clone)]
pub struct GenSearchConfig {
    /// Search rounds (generations).
    pub rounds: usize,
    /// Candidates proposed per round (before dedup).
    pub candidates_per_round: usize,
    /// Top-ranked candidates measured on the simulator per round.
    pub measure_per_round: usize,
    /// Population carried between rounds.
    pub population: usize,
    /// Proposer mix.
    pub mix: ProposerMix,
    /// Seed for the proposal RNG.
    pub seed: u64,
    /// When set, every round additionally sweeps the simulator over **all**
    /// unique candidates to report the per-round regret of the model's
    /// pick against the in-round oracle optimum. O(candidates) simulator
    /// evaluations per round — for benches and quality reports, not for
    /// tuning runs where measurements are the budget.
    pub oracle_regret: bool,
}

impl Default for GenSearchConfig {
    fn default() -> Self {
        GenSearchConfig {
            rounds: 8,
            candidates_per_round: 1024,
            measure_per_round: 4,
            population: 16,
            mix: ProposerMix::default(),
            seed: 0,
            oracle_regret: false,
        }
    }
}

/// Per-round record of a generational search.
#[derive(Debug, Clone, Copy)]
pub struct GenRound {
    /// Candidates proposed (incl. duplicates and non-lowering ones).
    pub proposed: usize,
    /// Unique lowered candidates actually encoded + scored.
    pub unique: usize,
    /// Best model score in the round.
    pub best_predicted: f64,
    /// Best simulator latency among this round's measured top-k (seconds).
    pub round_measured: f64,
    /// Best measured latency so far, after this round (seconds).
    pub best_measured: f64,
    /// In-round oracle optimum over all unique candidates (NaN unless
    /// `oracle_regret`).
    pub oracle_best: f64,
    /// `round_measured / oracle_best − 1` (NaN unless `oracle_regret`):
    /// how much the model's pick trails the best candidate it was shown.
    pub regret: f64,
}

/// Trace of a generational search run.
#[derive(Debug, Clone)]
pub struct GenSearchTrace {
    /// One record per round.
    pub rounds: Vec<GenRound>,
    /// The best schedule found.
    pub best_schedule: Schedule,
    /// Its measured latency (seconds).
    pub best_measured: f64,
    /// Total simulator measurements spent (excluding oracle sweeps).
    pub measurements: usize,
}

/// Large-scale generational search: thousands of candidates per round from
/// a configurable proposer mix, deduped by schedule identity so identical
/// programs are encoded and scored once, ranked by **one** `score_batch`
/// call per round (the engine-backed cost model turns that into saturating
/// serving traffic).
///
/// Deterministic for a fixed `(nest, dev, cost, cfg)`: proposals draw from
/// a seeded RNG in a fixed order, crossover is deterministic, dedup keeps
/// first occurrences, and ranking uses a stable sort on `total_cmp`.
pub fn generational_search(
    nest: &Nest,
    dev: &DeviceSpec,
    cost: &dyn CostModel,
    cfg: &GenSearchConfig,
) -> GenSearchTrace {
    let sim = Simulator::new(dev.clone());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut population: Vec<Schedule> = Vec::new();
    let mut best_measured = f64::INFINITY;
    let mut best_schedule = Schedule::default();
    let mut rounds = Vec::with_capacity(cfg.rounds);
    let mut measurements = 0usize;
    for _ in 0..cfg.rounds {
        // --- Propose. ---
        let target = cfg.candidates_per_round;
        let weight = (cfg.mix.mutation + cfg.mix.crossover + cfg.mix.fresh).max(1);
        let (n_mut, n_cross) = if population.is_empty() {
            (0, 0)
        } else {
            (
                target * cfg.mix.mutation / weight,
                target * cfg.mix.crossover / weight,
            )
        };
        let mut proposals: Vec<Schedule> = Vec::with_capacity(target);
        for i in 0..n_mut {
            let parent = &population[i % population.len()];
            proposals.push(mutate_schedule(nest, parent, &mut rng));
        }
        for i in 0..n_cross {
            let a = i % population.len();
            let mut b = (a + 1 + i / population.len()) % population.len();
            if b == a {
                b = (b + 1) % population.len();
            }
            proposals.push(crossover_schedule(nest, &population[a], &population[b]));
        }
        while proposals.len() < target {
            proposals.push(sample_schedule(nest, &mut rng));
        }
        // --- Dedup by schedule identity (hash, confirmed by equality). ---
        let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut unique: Vec<(Schedule, TensorProgram)> = Vec::new();
        'next: for sched in proposals.drain(..) {
            let bucket = by_hash.entry(sched.identity_hash()).or_default();
            for &ui in bucket.iter() {
                if unique[ui].0 == sched {
                    continue 'next;
                }
            }
            if let Ok(prog) = lower(nest, &sched) {
                bucket.push(unique.len());
                unique.push((sched, prog));
            }
        }
        if unique.is_empty() {
            rounds.push(GenRound {
                proposed: target,
                unique: 0,
                best_predicted: f64::INFINITY,
                round_measured: f64::INFINITY,
                best_measured,
                oracle_best: f64::NAN,
                regret: f64::NAN,
            });
            continue;
        }
        // --- Rank: one batched cost-model call for the whole round. ---
        let progs: Vec<&TensorProgram> = unique.iter().map(|(_, p)| p).collect();
        let mut scored: Vec<(f64, usize)> = cost
            .score_batch(&progs, dev)
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s, i))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        // --- Measure the model's top-k. ---
        let mut round_measured = f64::INFINITY;
        for &(_, ci) in scored.iter().take(cfg.measure_per_round) {
            let t = sim.latency_seconds(&unique[ci].1);
            measurements += 1;
            round_measured = round_measured.min(t);
            if t < best_measured {
                best_measured = t;
                best_schedule = unique[ci].0.clone();
            }
        }
        // --- Optional oracle sweep for the regret metric. ---
        let (oracle_best, regret) = if cfg.oracle_regret {
            let ob = progs
                .iter()
                .map(|p| sim.latency_seconds(p))
                .fold(f64::INFINITY, f64::min);
            (ob, round_measured / ob - 1.0)
        } else {
            (f64::NAN, f64::NAN)
        };
        rounds.push(GenRound {
            proposed: target,
            unique: unique.len(),
            best_predicted: scored.first().map(|&(s, _)| s).unwrap_or(f64::INFINITY),
            round_measured,
            best_measured,
            oracle_best,
            regret,
        });
        // --- Refresh the population (already unique within the round). ---
        population.clear();
        for &(_, ci) in scored.iter().take(cfg.population) {
            population.push(unique[ci].0.clone());
        }
    }
    GenSearchTrace {
        rounds,
        best_schedule,
        best_measured,
        measurements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::OpSpec;

    fn nest() -> Nest {
        OpSpec::Dense {
            m: 128,
            n: 128,
            k: 128,
        }
        .canonical_nest()
    }

    #[test]
    fn search_improves_over_rounds() {
        let cfg = SearchConfig {
            rounds: 15,
            ..Default::default()
        };
        let trace = search_schedule(&nest(), &devsim::t4(), &OracleCost, &cfg);
        assert_eq!(trace.best_per_round.len(), 15);
        let first = trace.best_per_round[0];
        let last = *trace.best_per_round.last().unwrap();
        assert!(last <= first);
        // Monotone non-increasing curve.
        for w in trace.best_per_round.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn oracle_beats_random_cost_model() {
        let cfg = SearchConfig {
            rounds: 20,
            seed: 3,
            ..Default::default()
        };
        let oracle = search_schedule(&nest(), &devsim::t4(), &OracleCost, &cfg);
        let random = search_schedule(&nest(), &devsim::t4(), &RandomCost { seed: 3 }, &cfg);
        assert!(
            oracle.best_per_round.last().unwrap() <= random.best_per_round.last().unwrap(),
            "oracle {:?} vs random {:?}",
            oracle.best_per_round.last(),
            random.best_per_round.last()
        );
    }

    #[test]
    fn best_schedule_is_valid_and_matches_best_latency() {
        let cfg = SearchConfig {
            rounds: 10,
            ..Default::default()
        };
        let trace = search_schedule(&nest(), &devsim::v100(), &OracleCost, &cfg);
        let prog = lower(&nest(), &trace.best_schedule).expect("best schedule lowers");
        let t = Simulator::new(devsim::v100()).latency_seconds(&prog);
        let best = *trace.best_per_round.last().unwrap();
        assert!((t - best).abs() / best < 1e-9);
    }

    #[test]
    fn measurement_budget_respected() {
        let cfg = SearchConfig {
            rounds: 7,
            measure_per_round: 3,
            ..Default::default()
        };
        let trace = search_schedule(&nest(), &devsim::t4(), &OracleCost, &cfg);
        assert!(trace.measurements <= 21);
    }

    fn gen_cfg() -> GenSearchConfig {
        GenSearchConfig {
            rounds: 4,
            candidates_per_round: 200,
            measure_per_round: 3,
            population: 8,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn generational_search_is_deterministic_and_dedups() {
        let a = generational_search(&nest(), &devsim::t4(), &RandomCost { seed: 1 }, &gen_cfg());
        let b = generational_search(&nest(), &devsim::t4(), &RandomCost { seed: 1 }, &gen_cfg());
        assert_eq!(a.best_schedule, b.best_schedule);
        assert_eq!(a.measurements, b.measurements);
        for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(ra.unique, rb.unique);
            assert_eq!(ra.best_measured, rb.best_measured);
        }
        // At 200 proposals over a small schedule space, collisions are
        // certain: dedup must have collapsed some, and each round's scored
        // count must never exceed its proposal count.
        assert!(a.rounds.iter().any(|r| r.unique < r.proposed));
        for r in &a.rounds {
            assert!(r.unique <= r.proposed);
            assert!(r.best_measured.is_finite());
        }
        // best_measured is the running minimum of round_measured.
        let mut running = f64::INFINITY;
        for r in &a.rounds {
            running = running.min(r.round_measured);
            assert_eq!(r.best_measured, running);
        }
    }

    #[test]
    fn generational_oracle_regret_is_zero_for_oracle_model() {
        // When the cost model *is* the simulator, its top pick is the
        // in-round optimum, so regret must be exactly zero every round.
        let cfg = GenSearchConfig {
            oracle_regret: true,
            rounds: 3,
            candidates_per_round: 60,
            ..gen_cfg()
        };
        let trace = generational_search(&nest(), &devsim::t4(), &OracleCost, &cfg);
        for r in &trace.rounds {
            assert!(r.oracle_best.is_finite());
            assert_eq!(r.regret, 0.0);
        }
    }

    #[test]
    fn generational_random_model_has_positive_regret() {
        let cfg = GenSearchConfig {
            oracle_regret: true,
            measure_per_round: 1,
            ..gen_cfg()
        };
        let trace = generational_search(&nest(), &devsim::t4(), &RandomCost { seed: 5 }, &cfg);
        // A random ranking almost surely misses the in-round optimum when
        // measuring only its top-1 out of hundreds.
        assert!(trace.rounds.iter().any(|r| r.regret > 0.0));
        for r in &trace.rounds {
            assert!(r.regret >= 0.0, "regret can never be negative");
        }
    }

    #[test]
    fn generational_search_finds_good_schedules() {
        // The oracle-driven generational search must beat the canonical
        // schedule comfortably at this scale.
        let n = nest();
        let dev = devsim::t4();
        let canonical =
            Simulator::new(dev.clone()).latency_seconds(&lower(&n, &Schedule::default()).unwrap());
        let trace = generational_search(&n, &dev, &OracleCost, &gen_cfg());
        assert!(
            trace.best_measured < canonical,
            "search best {} vs canonical {canonical}",
            trace.best_measured
        );
        // And the reported best schedule reproduces the reported latency.
        let t = Simulator::new(dev).latency_seconds(&lower(&n, &trace.best_schedule).unwrap());
        assert!((t - trace.best_measured).abs() / trace.best_measured < 1e-9);
    }
}
