//! Ansor-lite schedule search (§7.5, Fig 14b).
//!
//! Evolutionary search over the schedule space of one task: each round
//! proposes candidates (mutations of the population plus fresh samples), a
//! cost model ranks them, the top few are "measured" (on the device
//! simulator — standing in for real-hardware measurement in Ansor's loop),
//! and measurements refresh the population. Better cost models prune the
//! space better and find faster schedules in the same number of rounds.

use devsim::{DeviceSpec, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tir::{lower, mutate_schedule, sample_schedule, Nest, Schedule, TensorProgram};

use crate::e2e::encode_programs;
use crate::trainer::TrainedModel;

/// A cost model usable by the search: lower score = predicted faster.
pub trait CostModel {
    /// Scores a lowered program for a device.
    fn score(&self, prog: &TensorProgram, dev: &DeviceSpec) -> f64;

    /// Scores many candidate programs at once. The default loops over
    /// [`CostModel::score`]; batched models override this so the search
    /// pays one dense forward pass per leaf-count bucket instead of one
    /// tape per candidate.
    fn score_batch(&self, progs: &[&TensorProgram], dev: &DeviceSpec) -> Vec<f64> {
        progs.iter().map(|p| self.score(p, dev)).collect()
    }
}

impl CostModel for TrainedModel {
    fn score(&self, prog: &TensorProgram, dev: &DeviceSpec) -> f64 {
        self.score_batch(&[prog], dev)[0]
    }

    fn score_batch(&self, progs: &[&TensorProgram], dev: &DeviceSpec) -> Vec<f64> {
        let enc = encode_programs(progs, dev, self.predictor.config().theta, self.use_pe);
        self.predict_samples(&enc)
    }
}

/// An oracle cost model (the simulator itself) — upper bound for search
/// quality comparisons.
pub struct OracleCost;

impl CostModel for OracleCost {
    fn score(&self, prog: &TensorProgram, dev: &DeviceSpec) -> f64 {
        Simulator::new(dev.clone()).latency_seconds(prog)
    }
}

/// A random cost model — lower bound for search quality comparisons.
pub struct RandomCost {
    /// Seed for the pseudo-random scores.
    pub seed: u64,
}

impl CostModel for RandomCost {
    fn score(&self, prog: &TensorProgram, _dev: &DeviceSpec) -> f64 {
        // Deterministic hash-based pseudo-random score.
        let mut h = self.seed ^ prog.node_count() as u64;
        h ^= (prog.total_iterations() as u64).wrapping_mul(0x9E3779B97F4A7C15);
        h = h.wrapping_mul(0xBF58476D1CE4E5B9);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Search rounds.
    pub rounds: usize,
    /// Candidates proposed per round.
    pub candidates_per_round: usize,
    /// Candidates measured (on the simulator) per round — Ansor measures
    /// ~10 per round.
    pub measure_per_round: usize,
    /// Population size kept across rounds.
    pub population: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            rounds: 30,
            candidates_per_round: 24,
            measure_per_round: 2,
            population: 8,
            seed: 0,
        }
    }
}

/// Trace of one search run.
#[derive(Debug, Clone)]
pub struct SearchTrace {
    /// Best measured latency (seconds) after each round — Fig 14b's curve.
    pub best_per_round: Vec<f64>,
    /// The best schedule found.
    pub best_schedule: Schedule,
    /// Total simulator measurements spent.
    pub measurements: usize,
}

/// Runs the evolutionary search on one task nest.
pub fn search_schedule(
    nest: &Nest,
    dev: &DeviceSpec,
    cost: &dyn CostModel,
    cfg: &SearchConfig,
) -> SearchTrace {
    let sim = Simulator::new(dev.clone());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut population: Vec<Schedule> = Vec::new();
    let mut best_measured = f64::INFINITY;
    let mut best_schedule = Schedule::default();
    let mut best_per_round = Vec::with_capacity(cfg.rounds);
    let mut measurements = 0usize;
    for _ in 0..cfg.rounds {
        // Propose candidates: mutations of the population + fresh samples.
        let mut candidates: Vec<(Schedule, TensorProgram)> = Vec::new();
        for i in 0..cfg.candidates_per_round {
            let sched = if !population.is_empty() && i % 2 == 0 {
                let parent = &population[i / 2 % population.len()];
                mutate_schedule(nest, parent, &mut rng)
            } else {
                sample_schedule(nest, &mut rng)
            };
            if let Ok(prog) = lower(nest, &sched) {
                candidates.push((sched, prog));
            }
        }
        if candidates.is_empty() {
            best_per_round.push(best_measured);
            continue;
        }
        // Cost model ranks (one batched call per round); top-k get measured.
        let progs: Vec<&TensorProgram> = candidates.iter().map(|(_, p)| p).collect();
        let mut scored: Vec<(f64, usize)> = cost
            .score_batch(&progs, dev)
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s, i))
            .collect();
        // Total order so non-scoreable candidates (NaN from a failed
        // prediction) sort last — never measured — instead of panicking.
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(_, ci) in scored.iter().take(cfg.measure_per_round) {
            let t = sim.latency_seconds(&candidates[ci].1);
            measurements += 1;
            if t < best_measured {
                best_measured = t;
                best_schedule = candidates[ci].0.clone();
            }
        }
        // Population = schedules of the best-ranked candidates.
        population = scored
            .iter()
            .take(cfg.population)
            .map(|&(_, ci)| candidates[ci].0.clone())
            .collect();
        best_per_round.push(best_measured);
    }
    SearchTrace {
        best_per_round,
        best_schedule,
        measurements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::OpSpec;

    fn nest() -> Nest {
        OpSpec::Dense {
            m: 128,
            n: 128,
            k: 128,
        }
        .canonical_nest()
    }

    #[test]
    fn search_improves_over_rounds() {
        let cfg = SearchConfig {
            rounds: 15,
            ..Default::default()
        };
        let trace = search_schedule(&nest(), &devsim::t4(), &OracleCost, &cfg);
        assert_eq!(trace.best_per_round.len(), 15);
        let first = trace.best_per_round[0];
        let last = *trace.best_per_round.last().unwrap();
        assert!(last <= first);
        // Monotone non-increasing curve.
        for w in trace.best_per_round.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn oracle_beats_random_cost_model() {
        let cfg = SearchConfig {
            rounds: 20,
            seed: 3,
            ..Default::default()
        };
        let oracle = search_schedule(&nest(), &devsim::t4(), &OracleCost, &cfg);
        let random = search_schedule(&nest(), &devsim::t4(), &RandomCost { seed: 3 }, &cfg);
        assert!(
            oracle.best_per_round.last().unwrap() <= random.best_per_round.last().unwrap(),
            "oracle {:?} vs random {:?}",
            oracle.best_per_round.last(),
            random.best_per_round.last()
        );
    }

    #[test]
    fn best_schedule_is_valid_and_matches_best_latency() {
        let cfg = SearchConfig {
            rounds: 10,
            ..Default::default()
        };
        let trace = search_schedule(&nest(), &devsim::v100(), &OracleCost, &cfg);
        let prog = lower(&nest(), &trace.best_schedule).expect("best schedule lowers");
        let t = Simulator::new(devsim::v100()).latency_seconds(&prog);
        let best = *trace.best_per_round.last().unwrap();
        assert!((t - best).abs() / best < 1e-9);
    }

    #[test]
    fn measurement_budget_respected() {
        let cfg = SearchConfig {
            rounds: 7,
            measure_per_round: 3,
            ..Default::default()
        };
        let trace = search_schedule(&nest(), &devsim::t4(), &OracleCost, &cfg);
        assert!(trace.measurements <= 21);
    }
}
