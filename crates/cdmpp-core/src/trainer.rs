//! Pre-training (§5.2): Box-Cox label normalization + the scale-insensitive
//! hybrid objective, minibatched over leaf-count-homogeneous batches.
//!
//! ## Data-parallel steps
//!
//! [`pretrain`] runs every optimizer step through
//! [`train_step_parallel`]: the minibatch is cut into fixed-size gradient
//! shards (the shard partition depends on the batch alone, **never** on the
//! thread count), each shard runs forward + backward on its own tape
//! against the shared read-only parameters, and the shard gradients are
//! combined by a fixed-order binary tree reduction. Because both the
//! partition and the reduction order are thread-count-independent — and the
//! GEMM kernels below keep per-element accumulation order fixed — seeded
//! training produces **bit-identical weights for any
//! [`TrainConfig::threads`] value** (asserted by
//! `tests/parallel_determinism.rs`).

use std::time::Instant;

use dataset::Dataset;
use learn::{accuracy_within, mape, rmse, FittedTransform, LabelTransform, TransformKind};
use nn::{Adam, CyclicLr, Graph, LrSchedule, Optimizer, Sgd, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Tensor;

use crate::batch::{encode_records, group_by_leaf, make_batches, Batch, EncodedSample, FeatScaler};
use crate::predictor::{PredictResult, Predictor, PredictorConfig, SharedPredictor};

/// Which training objective (Tables 4 & 5 ablation).
pub use nn::LossKind;

/// Which optimizer the auto-tuner picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptKind {
    /// Adam with decoupled weight decay (the paper's tuned choice).
    Adam,
    /// SGD with momentum.
    Sgd,
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Epochs over the training set.
    pub epochs: usize,
    /// Minibatch size (the paper uses 600; scaled down here).
    pub batch_size: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Hybrid-loss λ (§5.2 uses 1e-3).
    pub lambda: f32,
    /// Label normalization (§5.4; Box-Cox by default).
    pub transform: TransformKind,
    /// Training objective.
    pub loss: LossKind,
    /// Positional encoding on/off (Fig 14a ablation).
    pub use_pe: bool,
    /// Optimizer.
    pub optimizer: OptKind,
    /// Use the cyclic LR schedule (the paper's tuned scheduler).
    pub cyclic_lr: bool,
    /// Shuffle/init seed.
    pub seed: u64,
    /// Worker threads for data-parallel gradient shards. `0` resolves via
    /// the `PARALLEL_THREADS` environment variable, then available
    /// parallelism. Any value yields bit-identical weights for a given
    /// seed (see the module docs).
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 12,
            batch_size: 64,
            lr: 2e-3,
            weight_decay: 1e-3,
            lambda: 1e-3,
            transform: TransformKind::BoxCox,
            loss: LossKind::Hybrid,
            use_pe: true,
            optimizer: OptKind::Adam,
            cyclic_lr: true,
            seed: 0,
            threads: 0,
        }
    }
}

/// A trained model: predictor + fitted label transform.
#[derive(Clone)]
pub struct TrainedModel {
    /// The predictor network.
    pub predictor: Predictor,
    /// Fitted label transform (applied to latencies in seconds).
    pub transform: FittedTransform,
    /// Fitted input-feature standardizer.
    pub scaler: FeatScaler,
    /// Whether PE was used at training time (must match at inference).
    pub use_pe: bool,
    /// The training configuration used.
    pub train_config: TrainConfig,
}

/// Evaluation metrics (the paper's reporting set).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalMetrics {
    /// Mean absolute percentage error (fraction, not %).
    pub mape: f64,
    /// RMSE in milliseconds (Table 5's unit).
    pub rmse_ms: f64,
    /// Fraction within 20% relative error.
    pub acc20: f64,
    /// Fraction within 10% relative error.
    pub acc10: f64,
    /// Fraction within 5% relative error.
    pub acc5: f64,
}

/// Training statistics (for the §7.2 throughput comparison).
#[derive(Debug, Clone, Copy)]
pub struct TrainStats {
    /// Samples processed per second during training.
    pub throughput: f64,
    /// Total samples processed.
    pub samples: usize,
    /// Final training loss.
    pub final_loss: f64,
}

/// Builds the (possibly clamped) training loss in transformed label space.
///
/// Relative terms (MAPE/MSPE) clamp the denominator at 0.1 because Box-Cox
/// output is standardized around zero — the paper trains MAPE on raw
/// labels, which are strictly positive; in transformed space the clamp
/// plays that role.
pub fn build_loss(
    g: &mut Graph,
    pred: Var,
    y_t: &[f32],
    kind: LossKind,
    lambda: f32,
) -> tensor::Result<Var> {
    let n = y_t.len();
    let target = Tensor::from_vec(y_t.to_vec(), &[n, 1])?;
    let t = g.constant(target.clone());
    let d = g.sub(pred, t)?;
    let weights = Tensor::from_vec(
        y_t.iter().map(|&y| 1.0 / y.abs().max(0.1)).collect(),
        &[n, 1],
    )?;
    match kind {
        LossKind::Mse => {
            let sq = g.square(d)?;
            g.mean(sq)
        }
        LossKind::Mape => {
            let a = g.abs(d)?;
            let w = g.mul_const(a, weights)?;
            g.mean(w)
        }
        LossKind::Mspe => {
            let r = g.mul_const(d, weights)?;
            let sq = g.square(r)?;
            g.mean(sq)
        }
        LossKind::Hybrid => {
            let sq = g.square(d)?;
            let mse = g.mean(sq)?;
            let a = g.abs(d)?;
            let w = g.mul_const(a, weights)?;
            let mape = g.mean(w)?;
            let scaled = g.scale(mape, lambda);
            g.add(mse, scaled)
        }
    }
}

fn make_optimizer(tcfg: &TrainConfig) -> Box<dyn Optimizer> {
    match tcfg.optimizer {
        OptKind::Adam => Box::new(Adam::with_weight_decay(tcfg.lr, tcfg.weight_decay)),
        OptKind::Sgd => Box::new(Sgd::with_momentum(tcfg.lr, 0.9, tcfg.weight_decay)),
    }
}

/// Runs one optimization step on a batch; returns the loss value.
pub fn train_step(
    predictor: &mut Predictor,
    opt: &mut dyn Optimizer,
    batch: &Batch,
    y_t: &[f32],
    loss_kind: LossKind,
    lambda: f32,
) -> f64 {
    predictor.store.zero_grad();
    let mut g = Graph::new();
    let Ok(out) = predictor.forward(&mut g, batch.x.clone(), batch.dev.clone()) else {
        return f64::NAN;
    };
    let Ok(loss) = build_loss(&mut g, out.pred, y_t, loss_kind, lambda) else {
        return f64::NAN;
    };
    let value = g.value(loss).item() as f64;
    if g.backward(loss).is_err() {
        return value;
    }
    let _ = g.write_param_grads(&mut predictor.store);
    predictor.store.clip_grad_norm(5.0);
    opt.step(&mut predictor.store);
    value
}

/// Rows per gradient shard of [`train_step_parallel`]. Fixed — never
/// derived from the thread count — so the shard partition, and therefore
/// every floating-point reduction, is a function of the batch alone.
const SHARD_ROWS: usize = 16;

/// One shard's contribution: its weighted loss and per-parameter weighted
/// gradients (indexed by `ParamId::index`).
struct ShardOut {
    loss: f64,
    grads: Vec<Option<Tensor>>,
    failed: bool,
}

/// Runs forward + backward for batch rows `[r0, r1)` on a private tape,
/// returning gradients scaled by the shard's weight `w = (r1-r0)/n` so the
/// reduced sum equals the full-batch gradient.
fn run_shard(
    predictor: &Predictor,
    batch: &Batch,
    y_t: &[f32],
    loss_kind: LossKind,
    lambda: f32,
    rows: std::ops::Range<usize>,
    w: f32,
) -> ShardOut {
    let failed = ShardOut {
        loss: f64::NAN,
        grads: Vec::new(),
        failed: true,
    };
    let (r0, r1) = (rows.start, rows.end);
    let ns = r1 - r0;
    let x_stride = batch.x.shape()[1] * batch.x.shape()[2];
    let d_stride = batch.dev.shape()[1];
    let Ok(x) = Tensor::from_vec(
        batch.x.data()[r0 * x_stride..r1 * x_stride].to_vec(),
        &[ns, batch.x.shape()[1], batch.x.shape()[2]],
    ) else {
        return failed;
    };
    let Ok(dev) = Tensor::from_vec(
        batch.dev.data()[r0 * d_stride..r1 * d_stride].to_vec(),
        &[ns, d_stride],
    ) else {
        return failed;
    };
    let mut g = Graph::new();
    let Ok(out) = predictor.forward(&mut g, x, dev) else {
        return failed;
    };
    let Ok(loss) = build_loss(&mut g, out.pred, &y_t[r0..r1], loss_kind, lambda) else {
        return failed;
    };
    let value = g.value(loss).item() as f64 * w as f64;
    // Weight the shard in-graph: backward from `w · loss` seeds the whole
    // tape with `w`, so every parameter gradient comes out pre-weighted and
    // no post-hoc per-tensor scaling pass is needed. When w == 1.0 (a batch
    // that fits one shard) the scale node is skipped entirely, keeping the
    // single-shard case bit-identical to `train_step`.
    let root = if w == 1.0 { loss } else { g.scale(loss, w) };
    if g.backward(root).is_err() {
        return failed;
    }
    // Zero copies for the common case: gradients move out of the tape; a
    // parameter read through several leaves folds duplicates in with `+=`.
    let mut grads: Vec<Option<Tensor>> = (0..predictor.store.len()).map(|_| None).collect();
    for (pid, gt) in g.take_param_grads() {
        match &mut grads[pid.index()] {
            Some(t) => {
                let _ = t.add_assign(&gt);
            }
            slot @ None => *slot = Some(gt),
        }
    }
    ShardOut {
        loss: value,
        grads,
        failed: false,
    }
}

/// Merges shard `b` into shard `a` (`a += b`), element-wise over losses and
/// gradients. Merge order is fixed by the reduction tree, not by threads.
fn merge_shards(a: &mut ShardOut, b: ShardOut) {
    a.loss += b.loss;
    a.failed |= b.failed;
    if a.grads.is_empty() {
        a.grads = b.grads;
        return;
    }
    for (ga, gb) in a.grads.iter_mut().zip(b.grads) {
        match (ga, gb) {
            (Some(x), Some(y)) => {
                let _ = x.add_assign(&y);
            }
            (slot @ None, Some(y)) => *slot = Some(y),
            (_, None) => {}
        }
    }
}

/// One optimization step with data-parallel gradient accumulation.
///
/// The batch is cut into [`SHARD_ROWS`]-row shards; each shard runs
/// forward + backward on its own tape across `pool`, and the shard
/// gradients are combined by a fixed-order binary tree reduction before
/// clipping and the optimizer step. Both the partition and the reduction
/// order depend only on the batch, so the updated weights are
/// **bit-identical for every pool size** (a 1-thread pool included, which
/// also matches [`train_step`] exactly when the batch fits in one shard).
///
/// Sharding is applied even on a 1-thread pool — a deliberate tradeoff:
/// it costs ~15% per step on one core (per-shard tapes and gradient
/// buffers), but an "unsharded when serial" fast path would give a
/// different floating-point trajectory per thread count and break the
/// determinism contract above. Callers that want the cheapest strictly
/// serial step (and don't need thread-count reproducibility) can use
/// [`train_step`] directly.
///
/// Returns the loss value, or NaN (without stepping) if any shard failed.
pub fn train_step_parallel(
    predictor: &mut Predictor,
    opt: &mut dyn Optimizer,
    batch: &Batch,
    y_t: &[f32],
    loss_kind: LossKind,
    lambda: f32,
    pool: &parallel::ThreadPool,
) -> f64 {
    let n = y_t.len();
    // Mirror train_step's graceful-NaN contract for malformed inputs: a
    // label/batch length mismatch would otherwise slice x out of bounds
    // inside a worker and panic through the scope.
    if n == 0 || n != batch.x.shape()[0] || n != batch.dev.shape()[0] {
        return f64::NAN;
    }
    predictor.store.zero_grad();
    let n_shards = n.div_ceil(SHARD_ROWS);
    let shards: Vec<ShardOut> = {
        let pred: &Predictor = predictor;
        pool.run_indexed(n_shards, |s| {
            let r0 = s * SHARD_ROWS;
            let r1 = (r0 + SHARD_ROWS).min(n);
            let w = (r1 - r0) as f32 / n as f32;
            run_shard(pred, batch, y_t, loss_kind, lambda, r0..r1, w)
        })
    };
    // Fixed-order binary tree: (0,1)(2,3)… then pairs of pairs, until one
    // accumulated shard remains.
    let mut level = shards;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                merge_shards(&mut a, b);
            }
            next.push(a);
        }
        level = next;
    }
    let total = level.pop().expect("at least one shard");
    if total.failed {
        return f64::NAN;
    }
    for (id, slot) in predictor.store.ids().zip(total.grads) {
        if let Some(g) = slot {
            let _ = predictor.store.add_to_grad(id, &g);
        }
    }
    predictor.store.clip_grad_norm(5.0);
    opt.step(&mut predictor.store);
    total.loss
}

/// Pre-trains a predictor on `train_idx`, early-validating on `valid_idx`.
pub fn pretrain(
    ds: &Dataset,
    train_idx: &[usize],
    valid_idx: &[usize],
    pcfg: PredictorConfig,
    tcfg: TrainConfig,
) -> (TrainedModel, TrainStats) {
    assert!(!train_idx.is_empty(), "empty training set");
    let theta = pcfg.theta;
    let mut train = encode_records(ds, train_idx, theta, tcfg.use_pe);
    let scaler = FeatScaler::fit(&train);
    scaler.apply_all(&mut train);
    let train_labels: Vec<f64> = train.iter().map(|s| s.y_raw).collect();
    let transform = tcfg.transform.fit(&train_labels);
    let mut predictor = Predictor::new(pcfg);
    let mut opt = make_optimizer(&tcfg);
    let schedule = CyclicLr {
        base_lr: tcfg.lr * 0.2,
        max_lr: tcfg.lr,
        step_size: ((train.len() / tcfg.batch_size.max(1)).max(1) * 2) as u64,
    };
    let mut rng = StdRng::seed_from_u64(tcfg.seed);
    let pool = parallel::ThreadPool::new(parallel::resolve_threads(tcfg.threads));
    let start = Instant::now();
    let mut samples = 0usize;
    let mut step = 0u64;
    let mut final_loss = f64::NAN;
    let mut best_val = f64::INFINITY;
    let mut best_params: Option<nn::ParamStore> = None;
    for epoch in 0..tcfg.epochs {
        let batches = make_batches(&train, tcfg.batch_size, &mut rng);
        for b in &batches {
            if tcfg.cyclic_lr {
                opt.set_lr(schedule.lr_at(step));
            }
            let y_t: Vec<f32> = b
                .y_raw
                .iter()
                .map(|&y| transform.forward(y) as f32)
                .collect();
            final_loss = train_step_parallel(
                &mut predictor,
                opt.as_mut(),
                b,
                &y_t,
                tcfg.loss,
                tcfg.lambda,
                &pool,
            );
            samples += b.record_idx.len();
            step += 1;
        }
        // Keep the best-on-validation parameters (cheap early stopping).
        if !valid_idx.is_empty() && (epoch + 1) % 2 == 0 {
            let model = TrainedModel {
                predictor: Predictor::new(predictor.config().clone()),
                transform: tcfg.transform.fit(&train_labels),
                scaler: scaler.clone(),
                use_pe: tcfg.use_pe,
                train_config: tcfg.clone(),
            };
            // Evaluate with the live parameters (swap stores temporarily).
            let mut probe = model;
            std::mem::swap(&mut probe.predictor.store, &mut predictor.store);
            let metrics = evaluate(&probe, ds, valid_idx);
            std::mem::swap(&mut probe.predictor.store, &mut predictor.store);
            if metrics.mape < best_val {
                best_val = metrics.mape;
                best_params = Some(predictor.store.clone());
            }
        }
    }
    if let Some(p) = best_params {
        predictor.store = p;
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let model = TrainedModel {
        predictor,
        transform,
        scaler,
        use_pe: tcfg.use_pe,
        train_config: tcfg,
    };
    let stats = TrainStats {
        throughput: samples as f64 / elapsed,
        samples,
        final_loss,
    };
    (model, stats)
}

impl TrainedModel {
    /// Predicts latencies (seconds) for dataset records.
    pub fn predict_records(&self, ds: &Dataset, idx: &[usize]) -> Vec<f64> {
        let theta = self.predictor.config().theta;
        let enc = encode_records(ds, idx, theta, self.use_pe);
        self.predict_samples(&enc)
    }

    /// Predicts latencies (seconds) for pre-encoded (unscaled) samples.
    /// Standardization happens during the batch-building copy, so samples
    /// are never cloned wholesale.
    pub fn predict_samples(&self, enc: &[EncodedSample]) -> Vec<f64> {
        self.predict_grouped(enc, |refs| {
            crate::batch::build_scaled_batch(refs, &self.scaler)
        })
    }

    /// Predicts latencies for samples already standardized by the model's
    /// scaler (the training loop's internal path).
    pub fn predict_scaled(&self, enc: &[EncodedSample]) -> Vec<f64> {
        self.predict_grouped(enc, crate::batch::build_batch)
    }

    /// Shared bucketing loop: group by leaf count, run each dense batch on
    /// the forward-only executor, scatter back to input order. Batches
    /// whose leaf count the predictor does not support come back as NaN
    /// (the serving engine in `runtime` surfaces the descriptive error
    /// instead).
    fn predict_grouped(
        &self,
        enc: &[EncodedSample],
        build: impl Fn(&[&EncodedSample]) -> Batch,
    ) -> Vec<f64> {
        let mut out = vec![0.0f64; enc.len()];
        for (_, idxs) in group_by_leaf(enc) {
            let refs: Vec<&EncodedSample> = idxs.iter().map(|&i| &enc[i]).collect();
            let batch = build(&refs);
            match self.predictor.predict_batch(batch.x, batch.dev) {
                Ok(preds) => {
                    for (&i, &p) in idxs.iter().zip(preds.iter()) {
                        out[i] = self.transform.inverse(p as f64).max(1e-12);
                    }
                }
                Err(_) => {
                    for &i in &idxs {
                        out[i] = f64::NAN;
                    }
                }
            }
        }
        out
    }

    /// Latent representations for dataset records.
    pub fn latents(&self, ds: &Dataset, idx: &[usize]) -> Vec<Vec<f64>> {
        let theta = self.predictor.config().theta;
        let mut enc = encode_records(ds, idx, theta, self.use_pe);
        self.scaler.apply_all(&mut enc);
        let mut out = vec![Vec::new(); enc.len()];
        for (_, idxs) in group_by_leaf(&enc) {
            let refs: Vec<&EncodedSample> = idxs.iter().map(|&i| &enc[i]).collect();
            let batch = crate::batch::build_batch(&refs);
            if let Ok(zs) = self.predictor.latent_batch(batch.x, batch.dev) {
                for (&i, z) in idxs.iter().zip(zs) {
                    out[i] = z;
                }
            }
        }
        out
    }

    /// Freezes the model for serving: weights behind an `Arc`, transform
    /// and scaler cloned. The result is cheap to clone and safe to share
    /// across any number of inference threads. Honors
    /// [`crate::forced_quant_mode`]; see [`TrainedModel::freeze_quantized`]
    /// to pick the weight storage format explicitly.
    pub fn freeze(&self) -> InferenceModel {
        InferenceModel {
            predictor: self.predictor.share(),
            transform: self.transform.clone(),
            scaler: self.scaler.clone(),
            use_pe: self.use_pe,
        }
    }

    /// [`TrainedModel::freeze`] with the weight storage format chosen
    /// explicitly: `Bf16` / `I8` quantize every weight matrix once at this
    /// freeze (~2× / ~4× smaller serving weights, dequantization fused
    /// into the prepacked GEMM kernels). The frozen copy's f32 values hold
    /// the dequantized numbers, so all of its executors remain
    /// bit-identical to each other; predictions differ from an f32 freeze
    /// by the quantization error (bounded by the bench accuracy gate). The
    /// training-side model is untouched.
    pub fn freeze_quantized(&self, mode: tensor::QuantMode) -> InferenceModel {
        InferenceModel {
            predictor: self.predictor.share_quantized(mode),
            transform: self.transform.clone(),
            scaler: self.scaler.clone(),
            use_pe: self.use_pe,
        }
    }

    /// [`TrainedModel::freeze`] by move: the weights are transferred into
    /// the served `Arc` without the copy `freeze` pays (only the gradient
    /// buffers are dropped). Use when the training-side model is done —
    /// the CLI's train-then-serve flow and snapshot loading both do.
    pub fn into_frozen(self) -> InferenceModel {
        InferenceModel {
            predictor: self.predictor.into_shared(),
            transform: self.transform,
            scaler: self.scaler,
            use_pe: self.use_pe,
        }
    }
}

/// A frozen, thread-shareable trained model: the serving counterpart of
/// [`TrainedModel`]. Built with [`TrainedModel::freeze`]; consumed by the
/// `runtime` crate's `InferenceEngine` (and usable directly for
/// single-threaded serving).
#[derive(Clone)]
pub struct InferenceModel {
    /// The predictor with `Arc`-shared read-only weights.
    pub predictor: SharedPredictor,
    /// Fitted label transform (applied to latencies in seconds).
    pub transform: FittedTransform,
    /// Fitted input-feature standardizer.
    pub scaler: FeatScaler,
    /// Whether PE was used at training time (must match at inference).
    pub use_pe: bool,
}

impl InferenceModel {
    /// Maps one transformed-space prediction back to seconds.
    pub fn inverse_transform(&self, p: f32) -> f64 {
        self.transform.inverse(p as f64).max(1e-12)
    }

    /// Predicts latencies (seconds) for pre-encoded, unscaled samples on
    /// the current thread, bucketing by leaf count. Unlike
    /// [`TrainedModel::predict_scaled`] this propagates errors (e.g.
    /// [`crate::predictor::PredictError::LeafCountOutOfRange`]) instead of
    /// yielding NaN.
    pub fn predict_samples(&self, enc: &[EncodedSample]) -> PredictResult<Vec<f64>> {
        let mut runner = crate::PlanRunner::new();
        self.predict_samples_with(&mut runner, enc)
    }

    /// [`InferenceModel::predict_samples`] through a caller-owned
    /// [`crate::PlanRunner`], so long-lived serving threads replay the
    /// cached compiled plans with zero per-batch allocation (this is what
    /// the `runtime` engine's workers call).
    pub fn predict_samples_with(
        &self,
        runner: &mut crate::PlanRunner,
        enc: &[EncodedSample],
    ) -> PredictResult<Vec<f64>> {
        let mut out = vec![0.0f64; enc.len()];
        for (_, idxs) in group_by_leaf(enc) {
            let refs: Vec<&EncodedSample> = idxs.iter().map(|&i| &enc[i]).collect();
            // Standardize during the batch copy — no wholesale clone.
            let batch = crate::batch::build_scaled_batch(&refs, &self.scaler);
            let preds = self
                .predictor
                .predict_planned(runner, &batch.x, &batch.dev)?;
            for (&i, &p) in idxs.iter().zip(preds.iter()) {
                out[i] = self.inverse_transform(p);
            }
        }
        Ok(out)
    }
}

/// Evaluates a trained model on record indices.
pub fn evaluate(model: &TrainedModel, ds: &Dataset, idx: &[usize]) -> EvalMetrics {
    let preds = model.predict_records(ds, idx);
    let truth = ds.latencies(idx);
    let pred_ms: Vec<f64> = preds.iter().map(|&p| p * 1e3).collect();
    let truth_ms: Vec<f64> = truth.iter().map(|&t| t * 1e3).collect();
    EvalMetrics {
        mape: mape(&preds, &truth),
        rmse_ms: rmse(&pred_ms, &truth_ms),
        acc20: accuracy_within(&preds, &truth, 0.2),
        acc10: accuracy_within(&preds, &truth, 0.1),
        acc5: accuracy_within(&preds, &truth, 0.05),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{GenConfig, SplitIndices};
    use tir::zoo;

    fn small_setup() -> (Dataset, SplitIndices) {
        let ds = Dataset::generate_with_networks(
            GenConfig {
                batch: 1,
                schedules_per_task: 4,
                devices: vec![devsim::t4()],
                seed: 5,
                noise_sigma: 0.0,
            },
            vec![zoo::bert_tiny(1), zoo::mlp_mixer(1)],
        );
        let split = SplitIndices::for_device(&ds, "T4", &[], 1);
        (ds, split)
    }

    fn quick_train(
        ds: &Dataset,
        split: &SplitIndices,
        tcfg: TrainConfig,
    ) -> (TrainedModel, TrainStats) {
        let pcfg = PredictorConfig {
            d_model: 16,
            n_layers: 1,
            d_ff: 32,
            d_emb: 12,
            ..Default::default()
        };
        pretrain(ds, &split.train, &split.valid, pcfg, tcfg)
    }

    #[test]
    fn training_beats_trivial_baseline() {
        let (ds, split) = small_setup();
        let tcfg = TrainConfig {
            epochs: 25,
            ..Default::default()
        };
        let (model, stats) = quick_train(&ds, &split, tcfg);
        let m = evaluate(&model, &ds, &split.test);
        // Trivial baseline: predict the training median for everything.
        let mut lat = ds.latencies(&split.train);
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = lat[lat.len() / 2];
        let truth = ds.latencies(&split.test);
        let trivial = mape(&vec![median; truth.len()], &truth);
        assert!(
            m.mape < 0.6 * trivial,
            "model MAPE {:.3} vs trivial {:.3}",
            m.mape,
            trivial
        );
        assert!(stats.throughput > 0.0);
    }

    #[test]
    fn predictions_are_positive_seconds() {
        let (ds, split) = small_setup();
        let (model, _) = quick_train(
            &ds,
            &split,
            TrainConfig {
                epochs: 4,
                ..Default::default()
            },
        );
        let preds = model.predict_records(&ds, &split.test);
        assert!(preds.iter().all(|&p| p > 0.0 && p.is_finite()));
    }

    #[test]
    fn loss_kinds_all_train() {
        let (ds, split) = small_setup();
        for kind in [
            LossKind::Mse,
            LossKind::Mape,
            LossKind::Mspe,
            LossKind::Hybrid,
        ] {
            let tcfg = TrainConfig {
                epochs: 2,
                loss: kind,
                ..Default::default()
            };
            let (_, stats) = quick_train(&ds, &split, tcfg);
            assert!(stats.final_loss.is_finite(), "{kind:?}");
        }
    }

    #[test]
    fn eval_metrics_consistent() {
        let (ds, split) = small_setup();
        let (model, _) = quick_train(
            &ds,
            &split,
            TrainConfig {
                epochs: 10,
                ..Default::default()
            },
        );
        let m = evaluate(&model, &ds, &split.test);
        assert!(m.acc5 <= m.acc10 && m.acc10 <= m.acc20);
        assert!(m.mape >= 0.0 && m.rmse_ms >= 0.0);
    }

    #[test]
    fn latents_have_expected_dims() {
        let (ds, split) = small_setup();
        let (model, _) = quick_train(
            &ds,
            &split,
            TrainConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        let zs = model.latents(&ds, &split.test[..4.min(split.test.len())]);
        let d = model.predictor.config().d_emb + model.predictor.config().d_dev;
        for z in zs {
            assert_eq!(z.len(), d);
            assert!(z.iter().all(|v| v.abs() <= 1.0));
        }
    }
}
