//! Leaf-count-homogeneous batching (§5.1).
//!
//! Compact ASTs have variable leaf counts; rather than padding, records are
//! grouped by leaf count so each minibatch is a dense `[B, L, N_ENTRY]`
//! tensor routed through the `L`-specific embedding layer.

use std::collections::{BTreeMap, HashMap};

use dataset::Dataset;
use devsim::device_by_name;
use features::{device_features, extract_compact_ast, N_DEVICE_FEATURES, N_ENTRY};
use rand::seq::SliceRandom;
use rand::Rng;
use tensor::Tensor;

/// One encoded sample: flattened leaf features + device features + label.
#[derive(Debug, Clone)]
pub struct EncodedSample {
    /// Index into `Dataset::records`.
    pub record_idx: usize,
    /// Leaf count `L`.
    pub leaf_count: usize,
    /// `[L × N_ENTRY]` features (PE added unless disabled).
    pub x: Vec<f32>,
    /// Device feature row.
    pub dev: [f32; N_DEVICE_FEATURES],
    /// Raw latency label (seconds).
    pub y_raw: f64,
}

/// Read access to one encoded sample, however it is stored.
///
/// [`EncodedSample`] owns its feature row; [`SampleRef`] borrows it from an
/// [`EncodeArena`](crate::e2e::EncodeArena) slab. Batch building and
/// leaf-count grouping are generic over this trait so the serving engine's
/// dispatch path works on either without copying features into owned
/// samples first.
pub trait SampleLike {
    /// Index identifying the sample to its producer (dataset record index,
    /// or position in an inference request).
    fn record_idx(&self) -> usize;
    /// Leaf count `L`.
    fn leaf_count(&self) -> usize;
    /// `[L × N_ENTRY]` features.
    fn x(&self) -> &[f32];
    /// Device feature row.
    fn dev(&self) -> &[f32; N_DEVICE_FEATURES];
    /// Raw latency label (seconds); 0 for pure-inference samples.
    fn y_raw(&self) -> f64;
}

impl SampleLike for EncodedSample {
    fn record_idx(&self) -> usize {
        self.record_idx
    }
    fn leaf_count(&self) -> usize {
        self.leaf_count
    }
    fn x(&self) -> &[f32] {
        &self.x
    }
    fn dev(&self) -> &[f32; N_DEVICE_FEATURES] {
        &self.dev
    }
    fn y_raw(&self) -> f64 {
        self.y_raw
    }
}

impl<T: SampleLike + ?Sized> SampleLike for &T {
    fn record_idx(&self) -> usize {
        (**self).record_idx()
    }
    fn leaf_count(&self) -> usize {
        (**self).leaf_count()
    }
    fn x(&self) -> &[f32] {
        (**self).x()
    }
    fn dev(&self) -> &[f32; N_DEVICE_FEATURES] {
        (**self).dev()
    }
    fn y_raw(&self) -> f64 {
        (**self).y_raw()
    }
}

/// A borrowed view of one encoded sample whose features live in an arena
/// slab — what [`EncodeArena`](crate::e2e::EncodeArena) hands out.
#[derive(Debug, Clone, Copy)]
pub struct SampleRef<'a> {
    /// Index of the sample within its producing request.
    pub record_idx: usize,
    /// Leaf count `L`.
    pub leaf_count: usize,
    /// `[L × N_ENTRY]` features, borrowed from the arena slab.
    pub x: &'a [f32],
    /// Device feature row.
    pub dev: &'a [f32; N_DEVICE_FEATURES],
    /// Raw latency label; 0 for inference-only samples.
    pub y_raw: f64,
}

impl SampleLike for SampleRef<'_> {
    fn record_idx(&self) -> usize {
        self.record_idx
    }
    fn leaf_count(&self) -> usize {
        self.leaf_count
    }
    fn x(&self) -> &[f32] {
        self.x
    }
    fn dev(&self) -> &[f32; N_DEVICE_FEATURES] {
        self.dev
    }
    fn y_raw(&self) -> f64 {
        self.y_raw
    }
}

/// Encodes dataset records into samples.
///
/// `use_pe` toggles positional encoding (the Fig 14a ablation).
pub fn encode_records(ds: &Dataset, idx: &[usize], theta: f32, use_pe: bool) -> Vec<EncodedSample> {
    let mut dev_cache: HashMap<String, [f32; N_DEVICE_FEATURES]> = HashMap::new();
    idx.iter()
        .map(|&i| {
            let rec = &ds.records[i];
            let ast = extract_compact_ast(&rec.program);
            let x = if use_pe {
                ast.encoded_flat(theta)
            } else {
                ast.flat()
            };
            let dev = *dev_cache.entry(rec.device.clone()).or_insert_with(|| {
                device_by_name(&rec.device)
                    .map(|d| device_features(&d))
                    .unwrap_or([0.0; N_DEVICE_FEATURES])
            });
            EncodedSample {
                record_idx: i,
                leaf_count: ast.n_leaves(),
                x,
                dev,
                y_raw: rec.latency_s,
            }
        })
        .collect()
}

/// Per-column feature standardizer fitted on the training set.
///
/// Compact-AST entries mix one-hots with log-scale magnitudes (iteration
/// counts up to e²⁰); standardizing each of the `N_ENTRY` columns over all
/// training leaves keeps the Transformer's optimization well-conditioned.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FeatScaler {
    /// Per-column mean.
    pub mean: Vec<f32>,
    /// Per-column standard deviation (floored at 1e-6).
    pub std: Vec<f32>,
}

impl FeatScaler {
    /// Identity scaler (no-op).
    pub fn identity() -> Self {
        FeatScaler {
            mean: vec![0.0; N_ENTRY],
            std: vec![1.0; N_ENTRY],
        }
    }

    /// Fits column statistics over every leaf row of the given samples.
    pub fn fit(samples: &[EncodedSample]) -> Self {
        let mut mean = vec![0.0f64; N_ENTRY];
        let mut m2 = vec![0.0f64; N_ENTRY];
        let mut n = 0f64;
        for s in samples {
            for row in s.x.chunks(N_ENTRY) {
                n += 1.0;
                for (j, &v) in row.iter().enumerate() {
                    let d = v as f64 - mean[j];
                    mean[j] += d / n;
                    m2[j] += d * (v as f64 - mean[j]);
                }
            }
        }
        let std = m2
            .iter()
            .map(|&v| ((v / n.max(1.0)).sqrt() as f32).max(1e-6))
            .collect();
        FeatScaler {
            mean: mean.into_iter().map(|v| v as f32).collect(),
            std,
        }
    }

    /// Standardizes a sample's leaf rows in place.
    pub fn apply(&self, s: &mut EncodedSample) {
        for row in s.x.chunks_mut(N_ENTRY) {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v - self.mean[j]) / self.std[j];
            }
        }
    }

    /// Standardizes a whole slice of samples in place.
    pub fn apply_all(&self, samples: &mut [EncodedSample]) {
        for s in samples {
            self.apply(s);
        }
    }
}

/// A dense minibatch of samples sharing one leaf count.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Leaf count `L` of every sample in the batch.
    pub leaf_count: usize,
    /// `[B, L, N_ENTRY]` input features.
    pub x: Tensor,
    /// `[B, N_DEVICE_FEATURES]` device features.
    pub dev: Tensor,
    /// Raw latency labels (seconds).
    pub y_raw: Vec<f64>,
    /// Record indices of the batch members.
    pub record_idx: Vec<usize>,
}

/// Builds a batch from a homogeneous slice of sample references.
pub fn build_batch(samples: &[&EncodedSample]) -> Batch {
    build_batch_impl(samples, None)
}

/// Builds a batch while standardizing features with `scaler` during the
/// copy. One pass instead of clone-all + `FeatScaler::apply_all` +
/// `build_batch` — the serving engine's hot path. Element-for-element the
/// math matches [`FeatScaler::apply`], so results are bit-identical.
pub fn build_scaled_batch(samples: &[&EncodedSample], scaler: &FeatScaler) -> Batch {
    build_batch_impl(samples, Some(scaler))
}

fn build_batch_impl(samples: &[&EncodedSample], scaler: Option<&FeatScaler>) -> Batch {
    let b = samples.len();
    let l = samples[0].leaf_count;
    debug_assert!(samples.iter().all(|s| s.leaf_count == l));
    let mut xs = Vec::with_capacity(b * l * N_ENTRY);
    let mut devs = Vec::with_capacity(b * N_DEVICE_FEATURES);
    for s in samples {
        match scaler {
            Some(sc) => xs.extend(s.x.iter().enumerate().map(|(j, &v)| {
                let col = j % N_ENTRY;
                (v - sc.mean[col]) / sc.std[col]
            })),
            None => xs.extend_from_slice(&s.x),
        }
        devs.extend_from_slice(&s.dev);
    }
    Batch {
        leaf_count: l,
        x: Tensor::from_vec(xs, &[b, l, N_ENTRY]).expect("sample widths"),
        dev: Tensor::from_vec(devs, &[b, N_DEVICE_FEATURES]).expect("device widths"),
        y_raw: samples.iter().map(|s| s.y_raw).collect(),
        record_idx: samples.iter().map(|s| s.record_idx).collect(),
    }
}

/// Groups sample indices by leaf count.
///
/// This is the single place leaf-count bucketing lives: training batching
/// ([`make_batches`]), the trained-model predict paths, fine-tuning's
/// per-domain grouping, and the `runtime` serving engine all route through
/// it, so the grouping policy cannot drift between call sites.
pub fn group_by_leaf(samples: &[EncodedSample]) -> BTreeMap<usize, Vec<usize>> {
    group_by_leaf_impl(samples)
}

/// [`group_by_leaf`] over borrowed samples — for callers (like the serving
/// engine's `CostModel` path) that filter a request stream and must not
/// clone the surviving samples wholesale just to regroup them.
pub fn group_by_leaf_refs(samples: &[&EncodedSample]) -> BTreeMap<usize, Vec<usize>> {
    group_by_leaf_impl(samples)
}

fn group_by_leaf_impl<T: std::borrow::Borrow<EncodedSample>>(
    samples: &[T],
) -> BTreeMap<usize, Vec<usize>> {
    // BTreeMap, deliberately: callers iterate the groups while drawing from
    // seeded RNGs (batch shuffling, fine-tuning's domain sampling), so the
    // iteration order must be deterministic for runs to be reproducible.
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, s) in samples.iter().enumerate() {
        groups.entry(s.borrow().leaf_count).or_default().push(i);
    }
    groups
}

/// Flat, reusable output of leaf-count grouping: the one allocation-free
/// representation the serving engine's dispatcher keeps as per-call
/// scratch (a `BTreeMap<usize, Vec<usize>>` costs one `Vec` per leaf
/// count per request).
#[derive(Debug, Default, Clone)]
pub struct LeafGroups {
    /// Sample indices, grouped by ascending leaf count, input order
    /// preserved within each group.
    pub order: Vec<usize>,
    /// One `(leaf_count, start, end)` half-open span per group, indexing
    /// [`LeafGroups::order`].
    pub spans: Vec<(usize, usize, usize)>,
}

/// [`group_by_leaf_refs`] into caller-owned scratch. Exactly the same
/// grouping policy (ascending leaf counts, stable input order within a
/// group — asserted against the map-based grouping in tests), but writing
/// into reusable buffers so a serving hot path allocates nothing per
/// request once warmed.
pub fn group_by_leaf_into<S: SampleLike>(samples: &[S], out: &mut LeafGroups) {
    out.order.clear();
    out.spans.clear();
    out.order.extend(0..samples.len());
    out.order
        .sort_unstable_by_key(|&i| (samples[i].leaf_count(), i));
    let mut start = 0usize;
    while start < out.order.len() {
        let leaf = samples[out.order[start]].leaf_count();
        let mut end = start + 1;
        while end < out.order.len() && samples[out.order[end]].leaf_count() == leaf {
            end += 1;
        }
        out.spans.push((leaf, start, end));
        start = end;
    }
}

/// Builds a standardized dense batch straight from `idxs` (indices into
/// `samples`) — the engine's dispatch path, which must not materialize a
/// fresh `Vec<&EncodedSample>` per chunk.
///
/// When `pad_to > idxs.len()`, the **last** sample's rows are replicated
/// until the batch holds `pad_to` samples (the plan-aware scheduler pads
/// a near-full tail chunk up to a stable batch class; callers discard the
/// padded tail of the predictions). Every kernel in the stack computes
/// rows independently, so the real rows' results are bit-identical with
/// or without padding. `pad_to <= idxs.len()` means no padding.
///
/// # Panics
///
/// Panics if `idxs` is empty.
pub fn build_scaled_batch_idx<S: SampleLike>(
    samples: &[S],
    idxs: &[usize],
    pad_to: usize,
    scaler: &FeatScaler,
) -> Batch {
    let b = idxs.len().max(pad_to);
    let l = samples[idxs[0]].leaf_count();
    debug_assert!(idxs.iter().all(|&i| samples[i].leaf_count() == l));
    let mut xs = Vec::with_capacity(b * l * N_ENTRY);
    let mut devs = Vec::with_capacity(b * N_DEVICE_FEATURES);
    let mut y_raw = Vec::with_capacity(b);
    let mut record_idx = Vec::with_capacity(b);
    let last = *idxs.last().expect("non-empty chunk");
    for k in 0..b {
        let s = &samples[*idxs.get(k).unwrap_or(&last)];
        xs.extend(s.x().iter().enumerate().map(|(j, &v)| {
            let col = j % N_ENTRY;
            (v - scaler.mean[col]) / scaler.std[col]
        }));
        devs.extend_from_slice(s.dev());
        y_raw.push(s.y_raw());
        record_idx.push(s.record_idx());
    }
    Batch {
        leaf_count: l,
        x: Tensor::from_vec(xs, &[b, l, N_ENTRY]).expect("sample widths"),
        dev: Tensor::from_vec(devs, &[b, N_DEVICE_FEATURES]).expect("device widths"),
        y_raw,
        record_idx,
    }
}

/// Splits samples into shuffled leaf-count-homogeneous minibatches.
pub fn make_batches<'a>(
    samples: &'a [EncodedSample],
    batch_size: usize,
    rng: &mut impl Rng,
) -> Vec<Batch> {
    let mut batches = Vec::new();
    for (_, mut idxs) in group_by_leaf(samples) {
        idxs.shuffle(rng);
        for chunk in idxs.chunks(batch_size) {
            let refs: Vec<&'a EncodedSample> = chunk.iter().map(|&i| &samples[i]).collect();
            batches.push(build_batch(&refs));
        }
    }
    batches.shuffle(rng);
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::GenConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tir::zoo;

    fn ds() -> Dataset {
        Dataset::generate_with_networks(
            GenConfig {
                batch: 1,
                schedules_per_task: 2,
                devices: vec![devsim::t4()],
                seed: 1,
                noise_sigma: 0.0,
            },
            vec![zoo::bert_tiny(1)],
        )
    }

    #[test]
    fn encoding_covers_all_records() {
        let d = ds();
        let idx = d.device_records("T4");
        let enc = encode_records(&d, &idx, features::DEFAULT_THETA, true);
        assert_eq!(enc.len(), idx.len());
        for s in &enc {
            assert_eq!(s.x.len(), s.leaf_count * N_ENTRY);
            assert!(s.y_raw > 0.0);
        }
    }

    #[test]
    fn pe_toggle_changes_features() {
        let d = ds();
        let idx = d.device_records("T4");
        let with = encode_records(&d, &idx[..4], features::DEFAULT_THETA, true);
        let without = encode_records(&d, &idx[..4], features::DEFAULT_THETA, false);
        assert!(with.iter().zip(&without).any(|(a, b)| a.x != b.x));
    }

    #[test]
    fn flat_grouping_matches_map_grouping_exactly() {
        // group_by_leaf_into is the serving engine's allocation-free twin
        // of the map-based grouping: same leaf order, same input order
        // within each group, same partition.
        let d = ds();
        let idx = d.device_records("T4");
        let enc = encode_records(&d, &idx, features::DEFAULT_THETA, true);
        let refs: Vec<&EncodedSample> = enc.iter().collect();
        let map = group_by_leaf_refs(&refs);
        let mut flat = LeafGroups::default();
        group_by_leaf_into(&refs, &mut flat);
        assert_eq!(flat.spans.len(), map.len());
        for ((leaf, start, end), (map_leaf, map_idxs)) in flat.spans.iter().zip(&map) {
            assert_eq!(leaf, map_leaf);
            assert_eq!(&flat.order[*start..*end], map_idxs.as_slice());
        }
        // Reusing the scratch for a different request produces the same
        // result as a fresh grouping (buffers fully overwritten).
        let subset: Vec<&EncodedSample> = enc.iter().rev().take(7).collect();
        group_by_leaf_into(&subset, &mut flat);
        let mut fresh = LeafGroups::default();
        group_by_leaf_into(&subset, &mut fresh);
        assert_eq!(flat.order, fresh.order);
        assert_eq!(flat.spans, fresh.spans);
    }

    #[test]
    fn indexed_batch_building_matches_ref_building_and_pads() {
        let d = ds();
        let idx = d.device_records("T4");
        let enc = encode_records(&d, &idx, features::DEFAULT_THETA, true);
        let scaler = FeatScaler::fit(&enc);
        let all: Vec<&EncodedSample> = enc.iter().collect();
        let (leaf, idxs) = group_by_leaf_refs(&all)
            .into_iter()
            .max_by_key(|(_, v)| v.len())
            .expect("non-empty dataset");
        let refs: Vec<&EncodedSample> = idxs.iter().map(|&i| all[i]).collect();
        // Unpadded: bit-identical to the ref-slice builder.
        let via_refs = build_scaled_batch(&refs, &scaler);
        let via_idx = build_scaled_batch_idx(&all, &idxs, 0, &scaler);
        assert_eq!(via_idx.leaf_count, leaf);
        assert_eq!(via_idx.x.data(), via_refs.x.data());
        assert_eq!(via_idx.dev.data(), via_refs.dev.data());
        assert_eq!(via_idx.record_idx, via_refs.record_idx);
        // Padded: the real rows are untouched, the tail replicates the
        // last sample's rows.
        let pad_to = idxs.len() + 3;
        let padded = build_scaled_batch_idx(&all, &idxs, pad_to, &scaler);
        assert_eq!(padded.x.shape()[0], pad_to);
        let row = leaf * N_ENTRY;
        assert_eq!(
            &padded.x.data()[..idxs.len() * row],
            via_refs.x.data(),
            "real rows must be bit-identical under padding"
        );
        let last = &via_refs.x.data()[(idxs.len() - 1) * row..];
        for k in idxs.len()..pad_to {
            assert_eq!(&padded.x.data()[k * row..(k + 1) * row], last);
        }
    }

    #[test]
    fn batches_are_homogeneous_and_cover_everything() {
        let d = ds();
        let idx = d.device_records("T4");
        let enc = encode_records(&d, &idx, features::DEFAULT_THETA, true);
        let mut rng = StdRng::seed_from_u64(3);
        let batches = make_batches(&enc, 8, &mut rng);
        let covered: usize = batches.iter().map(|b| b.record_idx.len()).sum();
        assert_eq!(covered, enc.len());
        for b in &batches {
            assert_eq!(b.x.shape(), &[b.record_idx.len(), b.leaf_count, N_ENTRY]);
            assert!(b.record_idx.len() <= 8);
        }
    }
}
