//! Leaf-count-homogeneous batching (§5.1).
//!
//! Compact ASTs have variable leaf counts; rather than padding, records are
//! grouped by leaf count so each minibatch is a dense `[B, L, N_ENTRY]`
//! tensor routed through the `L`-specific embedding layer.

use std::collections::{BTreeMap, HashMap};

use dataset::Dataset;
use devsim::device_by_name;
use features::{device_features, extract_compact_ast, N_DEVICE_FEATURES, N_ENTRY};
use rand::seq::SliceRandom;
use rand::Rng;
use tensor::Tensor;

/// One encoded sample: flattened leaf features + device features + label.
#[derive(Debug, Clone)]
pub struct EncodedSample {
    /// Index into `Dataset::records`.
    pub record_idx: usize,
    /// Leaf count `L`.
    pub leaf_count: usize,
    /// `[L × N_ENTRY]` features (PE added unless disabled).
    pub x: Vec<f32>,
    /// Device feature row.
    pub dev: [f32; N_DEVICE_FEATURES],
    /// Raw latency label (seconds).
    pub y_raw: f64,
}

/// Encodes dataset records into samples.
///
/// `use_pe` toggles positional encoding (the Fig 14a ablation).
pub fn encode_records(ds: &Dataset, idx: &[usize], theta: f32, use_pe: bool) -> Vec<EncodedSample> {
    let mut dev_cache: HashMap<String, [f32; N_DEVICE_FEATURES]> = HashMap::new();
    idx.iter()
        .map(|&i| {
            let rec = &ds.records[i];
            let ast = extract_compact_ast(&rec.program);
            let x = if use_pe {
                ast.encoded_flat(theta)
            } else {
                ast.flat()
            };
            let dev = *dev_cache.entry(rec.device.clone()).or_insert_with(|| {
                device_by_name(&rec.device)
                    .map(|d| device_features(&d))
                    .unwrap_or([0.0; N_DEVICE_FEATURES])
            });
            EncodedSample {
                record_idx: i,
                leaf_count: ast.n_leaves(),
                x,
                dev,
                y_raw: rec.latency_s,
            }
        })
        .collect()
}

/// Per-column feature standardizer fitted on the training set.
///
/// Compact-AST entries mix one-hots with log-scale magnitudes (iteration
/// counts up to e²⁰); standardizing each of the `N_ENTRY` columns over all
/// training leaves keeps the Transformer's optimization well-conditioned.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FeatScaler {
    /// Per-column mean.
    pub mean: Vec<f32>,
    /// Per-column standard deviation (floored at 1e-6).
    pub std: Vec<f32>,
}

impl FeatScaler {
    /// Identity scaler (no-op).
    pub fn identity() -> Self {
        FeatScaler {
            mean: vec![0.0; N_ENTRY],
            std: vec![1.0; N_ENTRY],
        }
    }

    /// Fits column statistics over every leaf row of the given samples.
    pub fn fit(samples: &[EncodedSample]) -> Self {
        let mut mean = vec![0.0f64; N_ENTRY];
        let mut m2 = vec![0.0f64; N_ENTRY];
        let mut n = 0f64;
        for s in samples {
            for row in s.x.chunks(N_ENTRY) {
                n += 1.0;
                for (j, &v) in row.iter().enumerate() {
                    let d = v as f64 - mean[j];
                    mean[j] += d / n;
                    m2[j] += d * (v as f64 - mean[j]);
                }
            }
        }
        let std = m2
            .iter()
            .map(|&v| ((v / n.max(1.0)).sqrt() as f32).max(1e-6))
            .collect();
        FeatScaler {
            mean: mean.into_iter().map(|v| v as f32).collect(),
            std,
        }
    }

    /// Standardizes a sample's leaf rows in place.
    pub fn apply(&self, s: &mut EncodedSample) {
        for row in s.x.chunks_mut(N_ENTRY) {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v - self.mean[j]) / self.std[j];
            }
        }
    }

    /// Standardizes a whole slice of samples in place.
    pub fn apply_all(&self, samples: &mut [EncodedSample]) {
        for s in samples {
            self.apply(s);
        }
    }
}

/// A dense minibatch of samples sharing one leaf count.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Leaf count `L` of every sample in the batch.
    pub leaf_count: usize,
    /// `[B, L, N_ENTRY]` input features.
    pub x: Tensor,
    /// `[B, N_DEVICE_FEATURES]` device features.
    pub dev: Tensor,
    /// Raw latency labels (seconds).
    pub y_raw: Vec<f64>,
    /// Record indices of the batch members.
    pub record_idx: Vec<usize>,
}

/// Builds a batch from a homogeneous slice of sample references.
pub fn build_batch(samples: &[&EncodedSample]) -> Batch {
    build_batch_impl(samples, None)
}

/// Builds a batch while standardizing features with `scaler` during the
/// copy. One pass instead of clone-all + `FeatScaler::apply_all` +
/// `build_batch` — the serving engine's hot path. Element-for-element the
/// math matches [`FeatScaler::apply`], so results are bit-identical.
pub fn build_scaled_batch(samples: &[&EncodedSample], scaler: &FeatScaler) -> Batch {
    build_batch_impl(samples, Some(scaler))
}

fn build_batch_impl(samples: &[&EncodedSample], scaler: Option<&FeatScaler>) -> Batch {
    let b = samples.len();
    let l = samples[0].leaf_count;
    debug_assert!(samples.iter().all(|s| s.leaf_count == l));
    let mut xs = Vec::with_capacity(b * l * N_ENTRY);
    let mut devs = Vec::with_capacity(b * N_DEVICE_FEATURES);
    for s in samples {
        match scaler {
            Some(sc) => xs.extend(s.x.iter().enumerate().map(|(j, &v)| {
                let col = j % N_ENTRY;
                (v - sc.mean[col]) / sc.std[col]
            })),
            None => xs.extend_from_slice(&s.x),
        }
        devs.extend_from_slice(&s.dev);
    }
    Batch {
        leaf_count: l,
        x: Tensor::from_vec(xs, &[b, l, N_ENTRY]).expect("sample widths"),
        dev: Tensor::from_vec(devs, &[b, N_DEVICE_FEATURES]).expect("device widths"),
        y_raw: samples.iter().map(|s| s.y_raw).collect(),
        record_idx: samples.iter().map(|s| s.record_idx).collect(),
    }
}

/// Groups sample indices by leaf count.
///
/// This is the single place leaf-count bucketing lives: training batching
/// ([`make_batches`]), the trained-model predict paths, fine-tuning's
/// per-domain grouping, and the `runtime` serving engine all route through
/// it, so the grouping policy cannot drift between call sites.
pub fn group_by_leaf(samples: &[EncodedSample]) -> BTreeMap<usize, Vec<usize>> {
    group_by_leaf_impl(samples)
}

/// [`group_by_leaf`] over borrowed samples — for callers (like the serving
/// engine's `CostModel` path) that filter a request stream and must not
/// clone the surviving samples wholesale just to regroup them.
pub fn group_by_leaf_refs(samples: &[&EncodedSample]) -> BTreeMap<usize, Vec<usize>> {
    group_by_leaf_impl(samples)
}

fn group_by_leaf_impl<T: std::borrow::Borrow<EncodedSample>>(
    samples: &[T],
) -> BTreeMap<usize, Vec<usize>> {
    // BTreeMap, deliberately: callers iterate the groups while drawing from
    // seeded RNGs (batch shuffling, fine-tuning's domain sampling), so the
    // iteration order must be deterministic for runs to be reproducible.
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, s) in samples.iter().enumerate() {
        groups.entry(s.borrow().leaf_count).or_default().push(i);
    }
    groups
}

/// Splits samples into shuffled leaf-count-homogeneous minibatches.
pub fn make_batches<'a>(
    samples: &'a [EncodedSample],
    batch_size: usize,
    rng: &mut impl Rng,
) -> Vec<Batch> {
    let mut batches = Vec::new();
    for (_, mut idxs) in group_by_leaf(samples) {
        idxs.shuffle(rng);
        for chunk in idxs.chunks(batch_size) {
            let refs: Vec<&'a EncodedSample> = chunk.iter().map(|&i| &samples[i]).collect();
            batches.push(build_batch(&refs));
        }
    }
    batches.shuffle(rng);
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::GenConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tir::zoo;

    fn ds() -> Dataset {
        Dataset::generate_with_networks(
            GenConfig {
                batch: 1,
                schedules_per_task: 2,
                devices: vec![devsim::t4()],
                seed: 1,
                noise_sigma: 0.0,
            },
            vec![zoo::bert_tiny(1)],
        )
    }

    #[test]
    fn encoding_covers_all_records() {
        let d = ds();
        let idx = d.device_records("T4");
        let enc = encode_records(&d, &idx, features::DEFAULT_THETA, true);
        assert_eq!(enc.len(), idx.len());
        for s in &enc {
            assert_eq!(s.x.len(), s.leaf_count * N_ENTRY);
            assert!(s.y_raw > 0.0);
        }
    }

    #[test]
    fn pe_toggle_changes_features() {
        let d = ds();
        let idx = d.device_records("T4");
        let with = encode_records(&d, &idx[..4], features::DEFAULT_THETA, true);
        let without = encode_records(&d, &idx[..4], features::DEFAULT_THETA, false);
        assert!(with.iter().zip(&without).any(|(a, b)| a.x != b.x));
    }

    #[test]
    fn batches_are_homogeneous_and_cover_everything() {
        let d = ds();
        let idx = d.device_records("T4");
        let enc = encode_records(&d, &idx, features::DEFAULT_THETA, true);
        let mut rng = StdRng::seed_from_u64(3);
        let batches = make_batches(&enc, 8, &mut rng);
        let covered: usize = batches.iter().map(|b| b.record_idx.len()).sum();
        assert_eq!(covered, enc.len());
        for b in &batches {
            assert_eq!(b.x.shape(), &[b.record_idx.len(), b.leaf_count, N_ENTRY]);
            assert!(b.record_idx.len() <= 8);
        }
    }
}
