//! Model + plan snapshots: one file that cold-starts a serving model.
//!
//! The paper serves predictions from a pre-trained checkpoint; this module
//! is that checkpoint format. A snapshot persists everything inference
//! needs — architecture hyper-parameters, the fitted label transform and
//! feature scaler, every named weight tensor, and (optionally) the
//! compiled per-leaf-count inference plans — so a runner restores a warm
//! [`InferenceModel`] with a single file load: **no training, no plan
//! recording** (counter-asserted by [`SharedPredictor::plan_compile_count`]
//! staying at zero).
//!
//! ## File layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"CDMPSNAP"
//! 8       4     format version, u32 little-endian
//! 12      8     header length H, u64 little-endian
//! 20      H     JSON header (UTF-8): config, use_pe, transform, scaler,
//!               parameter names + shapes, serialized plans, and the
//!               optional trailing sections `spec_plans` and `quant`
//! 20+H    4·Σ   weight blob: each *non-quantized* parameter's f32 data,
//!               little-endian, concatenated in header order
//! …       Σq    quantized blobs (only when `quant` is present): each
//!               entry's raw i8 / bf16 elements, row-major, concatenated
//!               in `quant` order; lengths implied by kind × param shape
//! ```
//!
//! The `quant` section is additive: files without it load exactly as
//! before and reserialize byte-identically (optional sections are emitted
//! only when non-empty, in a fixed canonical order). When present, each
//! entry carries a parameter's canonical quantized encoding (i8 with
//! per-column-group scales, or bf16), which **replaces** that parameter's
//! f32 data in the weight blob — the f32 numbers are reconstructed as the
//! blob's exact dequantization on decode, which is both the file-size win
//! and what keeps every executor bitwise consistent. On load the encoding
//! is installed into the store so serving packs GEMM panels straight from
//! the quantized bytes.
//!
//! Weights travel as raw little-endian f32 bits (not JSON), so a
//! save → load round trip is bit-exact and `save(load(x))` reproduces
//! `x`'s bytes. Plans are pure data (steps + symbolic shapes + slot
//! table) and ride in the JSON header as [`nn::PlanDesc`]; on load each
//! descriptor is re-validated by [`nn::Plan::from_desc`] — indices, slot
//! capacities, per-step geometry, write-once ordering, and in-place
//! aliasing discipline — so a hostile file can never alias the replay
//! arena out of bounds or trigger a panic.
//!
//! ## Versioning policy
//!
//! The version is bumped whenever the header schema, the weight encoding,
//! or the plan descriptor layout changes shape. Loaders accept exactly the
//! versions they know ([`SNAPSHOT_VERSION`]); anything newer is a typed
//! [`SnapshotError::UnsupportedVersion`], never a garbled model. A golden
//! fixture committed under `tests/fixtures/` pins the format in CI so
//! accidental drift breaks the build instead of silently orphaning old
//! snapshot files.
//!
//! Every declared length is capped *before* any allocation happens
//! (header bytes, parameter count, tensor ranks and dims, plan tables), so
//! decoding a malicious file cannot balloon memory either.

use std::sync::Arc;

use learn::FittedTransform;
use nn::{Plan, PlanDesc};
use serde::{Deserialize, Serialize};
use tensor::{QuantKind, QuantMode, QuantizedMatrix, Tensor};

use crate::batch::FeatScaler;
use crate::predictor::{PredictResult, Predictor, PredictorConfig};
use crate::trainer::{InferenceModel, TrainedModel};
use features::{N_DEVICE_FEATURES, N_ENTRY};

/// Magic bytes at offset 0 of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CDMPSNAP";
/// The (only) format version this build reads and writes.
///
/// v2: plan descriptors gained `Bmm.scale` (fused attention scaling) and
/// the required `fused_bmm_scales` stats field; numerics moved to fused
/// multiply-add accumulation, so v1 weights would no longer reproduce the
/// predictions they were snapshotted with.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Byte cap on the JSON header.
const MAX_HEADER_BYTES: usize = 1 << 26;
/// Cap on the number of parameters.
const MAX_PARAMS: usize = 1 << 16;
/// Cap on a tensor rank.
const MAX_RANK: usize = 8;
/// Cap on one tensor dimension.
const MAX_TENSOR_DIM: usize = 1 << 24;
/// Cap on one tensor's element count.
const MAX_TENSOR_NUMEL: usize = 1 << 26;
/// Cap on the total element count across all parameters.
const MAX_TOTAL_NUMEL: usize = 1 << 28;
/// Cap on the number of serialized plans.
const MAX_PLANS: usize = 1 << 10;
/// Cap on the number of specialization requests a file may carry.
const MAX_SPEC_PLANS: usize = 1 << 12;
/// Cap on a specialization request's batch class.
const MAX_SPEC_BATCH: usize = 1 << 12;
/// Cap on a loaded specialized plan's concrete arena (elements): bounds
/// what serving a file-declared batch class can make a worker allocate.
const MAX_SPEC_ARENA: usize = 1 << 28;
/// Caps on architecture hyper-parameters a snapshot may declare, so a
/// hostile config cannot make [`Predictor::new`] allocate absurd weights
/// before the parameter tables are even compared.
const MAX_CFG_WIDTH: usize = 1 << 14;
const MAX_CFG_LAYERS: usize = 256;
const MAX_CFG_LEAVES: usize = 1 << 10;

/// Typed failure reading, validating, or restoring a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// Filesystem failure (path carried in the message).
    Io(String),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Latest version this build reads.
        supported: u32,
    },
    /// The file ends before a declared section does.
    Truncated {
        /// Which section was being read.
        what: &'static str,
        /// Bytes the section needs.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// Bytes remain after the last declared section.
    TrailingBytes {
        /// How many extra bytes.
        extra: usize,
    },
    /// A declared length or constant exceeds its decode cap (checked
    /// before allocating).
    Limit {
        /// What was being counted.
        what: &'static str,
        /// The declared value.
        value: usize,
        /// The cap.
        max: usize,
    },
    /// The JSON header failed to parse or violates the schema.
    Header(String),
    /// A weight tensor is inconsistent with its declaration or with the
    /// architecture being restored.
    Param {
        /// The parameter's name.
        name: String,
        /// What is wrong with it.
        reason: String,
    },
    /// A weight value is NaN or infinite.
    NonFinite {
        /// The parameter's name.
        name: String,
        /// Index of the offending element.
        index: usize,
    },
    /// A serialized plan failed re-validation.
    Plan {
        /// The plan's leaf count.
        leaves: usize,
        /// What is wrong with it.
        reason: String,
    },
    /// The snapshot as a whole cannot restore a model (bad config, plan
    /// compilation failure while capturing, ...).
    Model(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(m) => write!(f, "snapshot I/O failed: {m}"),
            SnapshotError::BadMagic => write!(f, "not a cdmpp snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than the supported {supported}"
            ),
            SnapshotError::Truncated { what, needed, have } => {
                write!(
                    f,
                    "snapshot truncated in {what}: need {needed} bytes, have {have}"
                )
            }
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the weight section")
            }
            SnapshotError::Limit { what, value, max } => {
                write!(f, "declared {what} {value} exceeds the cap {max}")
            }
            SnapshotError::Header(m) => write!(f, "snapshot header invalid: {m}"),
            SnapshotError::Param { name, reason } => {
                write!(f, "parameter '{name}': {reason}")
            }
            SnapshotError::NonFinite { name, index } => {
                write!(
                    f,
                    "parameter '{name}' has a non-finite weight at index {index}"
                )
            }
            SnapshotError::Plan { leaves, reason } => {
                write!(f, "serialized plan for leaf count {leaves}: {reason}")
            }
            SnapshotError::Model(m) => write!(f, "snapshot cannot restore a model: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One parameter's declaration in the JSON header (its data lives in the
/// binary weight section).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ParamMeta {
    name: String,
    shape: Vec<usize>,
}

/// One serialized plan with the leaf count it serves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanEntry {
    /// The leaf count this plan's embedding layer serves.
    pub leaves: usize,
    /// The validated-on-load plan descriptor.
    pub plan: PlanDesc,
}

/// One quantized weight declaration in the JSON header: which parameter,
/// which storage kind, and its dequantization scales. The quantized
/// element blob itself rides in the binary section, appended after the
/// f32 weight data in header order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct QuantMeta {
    /// Index into the header's `params`, strictly ascending.
    param: usize,
    /// Storage kind name ([`QuantKind::name`]).
    kind: String,
    /// Per-column-group dequantization scales (i8; empty for bf16).
    scales: Vec<f32>,
}

/// One parameter's canonical quantized encoding, as carried by a
/// [`Snapshot`]. The matrix is the source of truth: its blob is written
/// verbatim on save and re-installed verbatim on load (never
/// re-quantized — i8 re-quantization of dequantized values would drift),
/// and the parameter's f32 [`ParamTensor`] data must equal its
/// dequantization exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    /// Index of the parameter this encoding belongs to, strictly
    /// ascending across the snapshot's `quants`.
    pub param: usize,
    /// The canonical quantized values + scales.
    pub matrix: QuantizedMatrix,
}

/// One batch-specialization request: fold the generic plan for `leaves`
/// at batch size `batch` on load.
///
/// Specialized plans bake in parameter *values* (prepacked weight
/// panels), so the snapshot does **not** ship their bytes — it records
/// the `(leaf count, batch class)` pairs and the loader re-folds each
/// one from the (already validated) generic plan against the restored
/// weights. Folding is pure constant propagation: no recording happens
/// and the result is bit-identical to specializing a live model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecPlanEntry {
    /// The leaf count of the generic plan to specialize.
    pub leaves: usize,
    /// The batch class to fold it for.
    pub batch: usize,
}

/// The JSON header (everything but the weight data).
///
/// Serde impls are hand-written because `spec_plans` was added after
/// format version 1 shipped: it decodes as an **optional trailing
/// section** (absent in older files) and is emitted only when non-empty,
/// so pre-specialization snapshot bytes still load and re-serialize
/// byte-identically.
#[derive(Debug, Clone)]
struct Header {
    config: PredictorConfig,
    use_pe: bool,
    transform: FittedTransform,
    scaler: FeatScaler,
    params: Vec<ParamMeta>,
    plans: Vec<PlanEntry>,
    spec_plans: Vec<SpecPlanEntry>,
    quants: Vec<QuantMeta>,
}

impl Serialize for Header {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"config\":");
        self.config.serialize_json(out);
        out.push_str(",\"use_pe\":");
        self.use_pe.serialize_json(out);
        out.push_str(",\"transform\":");
        self.transform.serialize_json(out);
        out.push_str(",\"scaler\":");
        self.scaler.serialize_json(out);
        out.push_str(",\"params\":");
        self.params.serialize_json(out);
        out.push_str(",\"plans\":");
        self.plans.serialize_json(out);
        if !self.spec_plans.is_empty() {
            out.push_str(",\"spec_plans\":");
            self.spec_plans.serialize_json(out);
        }
        if !self.quants.is_empty() {
            out.push_str(",\"quant\":");
            self.quants.serialize_json(out);
        }
        out.push('}');
    }
}

impl serde::Deserialize for Header {
    fn deserialize_json(p: &mut serde::de::Parser<'_>) -> Result<Self, serde::de::Error> {
        p.expect_byte(b'{')?;
        p.expect_key("config")?;
        let config = serde::Deserialize::deserialize_json(p)?;
        p.expect_byte(b',')?;
        p.expect_key("use_pe")?;
        let use_pe = serde::Deserialize::deserialize_json(p)?;
        p.expect_byte(b',')?;
        p.expect_key("transform")?;
        let transform = serde::Deserialize::deserialize_json(p)?;
        p.expect_byte(b',')?;
        p.expect_key("scaler")?;
        let scaler = serde::Deserialize::deserialize_json(p)?;
        p.expect_byte(b',')?;
        p.expect_key("params")?;
        let params = serde::Deserialize::deserialize_json(p)?;
        p.expect_byte(b',')?;
        p.expect_key("plans")?;
        let plans = serde::Deserialize::deserialize_json(p)?;
        // Optional trailing sections, added after v1 shipped. Canonical
        // order is `spec_plans` then `quant`, each at most once and each
        // emitted only when non-empty — the dispatch below enforces the
        // order, so equal headers always have equal bytes.
        let mut spec_plans: Vec<SpecPlanEntry> = Vec::new();
        let mut quants: Vec<QuantMeta> = Vec::new();
        let mut seen_quant = false;
        let mut seen_spec = false;
        while p.peek() == Some(b',') {
            p.expect_byte(b',')?;
            let key = p.parse_string()?;
            p.expect_byte(b':')?;
            match key.as_str() {
                "spec_plans" if !seen_spec && !seen_quant => {
                    spec_plans = serde::Deserialize::deserialize_json(p)?;
                    seen_spec = true;
                }
                "quant" if !seen_quant => {
                    quants = serde::Deserialize::deserialize_json(p)?;
                    seen_quant = true;
                }
                other => {
                    return Err(p.error(format!("unexpected header field '{other}'")));
                }
            }
        }
        p.expect_byte(b'}')?;
        Ok(Header {
            config,
            use_pe,
            transform,
            scaler,
            params,
            plans,
            spec_plans,
            quants,
        })
    }
}

/// One named weight tensor of a decoded snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamTensor {
    /// The parameter's name (must match the rebuilt architecture's).
    pub name: String,
    /// The tensor's shape.
    pub shape: Vec<usize>,
    /// Row-major f32 data, `shape.iter().product()` elements.
    pub data: Vec<f32>,
}

/// A decoded (or about-to-be-written) snapshot: the paper's "pre-trained
/// checkpoint" as plain data.
///
/// Produced by [`Snapshot::capture`] / [`Snapshot::from_inference`] on the
/// save side and [`Snapshot::from_bytes`] on the load side; consumed by
/// [`InferenceModel::from_snapshot`]. Serialization is canonical: the same
/// snapshot always produces the same bytes, and `from_bytes` requires
/// plans in strictly ascending leaf order, so
/// `Snapshot::from_inference(&load(x)).to_bytes() == x`.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Architecture hyper-parameters.
    pub config: PredictorConfig,
    /// Whether positional encoding was used at training time.
    pub use_pe: bool,
    /// The fitted label transform.
    pub transform: FittedTransform,
    /// The fitted input-feature standardizer.
    pub scaler: FeatScaler,
    /// Named weight tensors, in parameter-store order.
    pub params: Vec<ParamTensor>,
    /// Serialized inference plans, ascending by leaf count. May be empty
    /// (weights-only snapshot): missing plans are recorded lazily on first
    /// use after load, exactly like a freshly trained model.
    pub plans: Vec<PlanEntry>,
    /// Batch-specialization requests, ascending by `(leaves, batch)`.
    /// Optional (older files have none): each entry re-folds a shipped
    /// generic plan for one batch class on load, so the restored model
    /// serves class-size batches through shape-final plans immediately.
    pub spec_plans: Vec<SpecPlanEntry>,
    /// Canonical quantized encodings for a subset of the parameters,
    /// ascending by param index. Optional (pre-quantization files have
    /// none). Each entry's parameter must be rank-2 and its f32 data in
    /// `params` must equal the matrix's dequantization bit-for-bit; on
    /// disk the quantized blob **replaces** the parameter's f32 data (the
    /// f32 numbers are reconstructed by dequantizing on decode), which is
    /// where the file-size reduction comes from.
    pub quants: Vec<QuantTensor>,
}

impl Snapshot {
    /// Captures a trained model plus compiled plans for the given leaf
    /// counts (compiling any that are not cached yet, so the snapshot ships
    /// pre-fused plans to runners that never see the recorder).
    ///
    /// Honors the `CDMPP_QUANT` override ([`crate::forced_quant_mode`]),
    /// exactly like [`TrainedModel::freeze`] — capture and freeze are both
    /// freeze boundaries, so a forced mode yields a frozen model and a
    /// saved file with identical serving weights.
    pub fn capture(model: &TrainedModel, plan_leaves: &[usize]) -> PredictResult<Snapshot> {
        Snapshot::capture_quantized(model, plan_leaves, crate::predictor::forced_quant_mode())
    }

    /// [`Snapshot::capture`] with an explicit weight-storage mode. With
    /// [`QuantMode::F32`] the snapshot is the classic full-precision
    /// checkpoint; with `Bf16`/`I8` every rank-2 parameter is quantized
    /// once here and the snapshot carries both the canonical quantized
    /// blob and its exact dequantization as the f32 weights — so loading
    /// the file and freezing the model in-process produce bitwise
    /// identical serving weights, and the file round-trips canonically.
    pub fn capture_quantized(
        model: &TrainedModel,
        plan_leaves: &[usize],
        mode: QuantMode,
    ) -> PredictResult<Snapshot> {
        let p = &model.predictor;
        let mut plans = Vec::with_capacity(plan_leaves.len());
        let mut leaves: Vec<usize> = plan_leaves.to_vec();
        leaves.sort_unstable();
        leaves.dedup();
        for l in leaves {
            plans.push(PlanEntry {
                leaves: l,
                plan: p.plan_for(l)?.to_desc(),
            });
        }
        let mut params = store_params(&p.store);
        let mut quants = Vec::new();
        if let Some(kind) = mode.kind() {
            // Quantize rank-2 parameters exactly like
            // `ParamStore::quantize_weights` does at freeze time, and
            // overwrite the captured f32 data with the dequantization so
            // the two sections agree bit-for-bit.
            for (idx, pt) in params.iter_mut().enumerate() {
                if pt.shape.len() != 2 {
                    continue;
                }
                let q = QuantizedMatrix::quantize(&pt.data, pt.shape[0], pt.shape[1], kind);
                pt.data = q.dequantize();
                quants.push(QuantTensor {
                    param: idx,
                    matrix: q,
                });
            }
        }
        Ok(Snapshot {
            config: p.config().clone(),
            use_pe: model.use_pe,
            transform: model.transform.clone(),
            scaler: model.scaler.clone(),
            params,
            plans,
            spec_plans: Vec::new(),
            quants,
        })
    }

    /// Adds specialization requests for every captured plan × every given
    /// batch class (deduplicated, canonical order), so loading the
    /// snapshot cold-starts with shape-final plans for those classes. The
    /// serving default is [`crate::DEFAULT_MAX_BATCH`] plus single-sample
    /// batches.
    ///
    /// The loader's constraints are enforced here too — classes must be
    /// in `1..=4096` and at most [`crate::predictor::MAX_BATCH_CLASSES`]
    /// distinct — so a snapshot that saves is a snapshot that loads.
    pub fn with_batch_classes(mut self, classes: &[usize]) -> Result<Snapshot, SnapshotError> {
        let mut distinct: Vec<usize> = classes.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        for &batch in &distinct {
            if batch == 0 || batch > MAX_SPEC_BATCH {
                return Err(SnapshotError::Limit {
                    what: "batch class",
                    value: batch,
                    max: MAX_SPEC_BATCH,
                });
            }
        }
        if distinct.len() > crate::predictor::MAX_BATCH_CLASSES {
            return Err(SnapshotError::Limit {
                what: "distinct batch classes",
                value: distinct.len(),
                max: crate::predictor::MAX_BATCH_CLASSES,
            });
        }
        // The loader also caps the total entry count; enforce it here so
        // a snapshot that saves is a snapshot that loads (reachable with
        // many-leaf models × several classes).
        let total = self.plans.len().saturating_mul(distinct.len());
        if total > MAX_SPEC_PLANS {
            return Err(SnapshotError::Limit {
                what: "specialized-plan count",
                value: total,
                max: MAX_SPEC_PLANS,
            });
        }
        let mut entries: Vec<SpecPlanEntry> = self
            .plans
            .iter()
            .flat_map(|p| {
                distinct.iter().map(move |&batch| SpecPlanEntry {
                    leaves: p.leaves,
                    batch,
                })
            })
            .collect();
        entries.sort_unstable_by_key(|e| (e.leaves, e.batch));
        self.spec_plans = entries;
        Ok(self)
    }

    /// [`Snapshot::capture`] with plans for **every** supported leaf count
    /// — the full "one-file cold start" checkpoint.
    pub fn capture_all(model: &TrainedModel) -> PredictResult<Snapshot> {
        let all: Vec<usize> = (1..=model.predictor.config().max_leaves).collect();
        Snapshot::capture(model, &all)
    }

    /// Captures a frozen model, including whichever plans its shared cache
    /// holds (for a snapshot-loaded model: exactly the plans of the file
    /// it came from).
    pub fn from_inference(model: &InferenceModel) -> Snapshot {
        // Re-emit the store's quantized encodings verbatim — never
        // re-quantize (i8 quantization of already-dequantized values is
        // not idempotent), so a loaded file reserializes byte-identically.
        let store = model.predictor.params();
        let quants = store
            .ids()
            .enumerate()
            .filter_map(|(idx, id)| {
                store.quant(id).map(|q| QuantTensor {
                    param: idx,
                    matrix: (**q).clone(),
                })
            })
            .collect();
        Snapshot {
            config: model.predictor.config().clone(),
            use_pe: model.use_pe,
            transform: model.transform.clone(),
            scaler: model.scaler.clone(),
            params: store_params(store),
            plans: model
                .predictor
                .compiled_plans()
                .into_iter()
                .map(|(leaves, plan)| PlanEntry {
                    leaves,
                    plan: plan.to_desc(),
                })
                .collect(),
            spec_plans: model
                .predictor
                .specialized_plans()
                .into_iter()
                .map(|(leaves, batch)| SpecPlanEntry { leaves, batch })
                .collect(),
            quants,
        }
    }

    /// Serializes to the versioned byte format (deterministic: equal
    /// snapshots produce equal bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let header = Header {
            config: self.config.clone(),
            use_pe: self.use_pe,
            transform: self.transform.clone(),
            scaler: self.scaler.clone(),
            params: self
                .params
                .iter()
                .map(|p| ParamMeta {
                    name: p.name.clone(),
                    shape: p.shape.clone(),
                })
                .collect(),
            plans: self.plans.clone(),
            spec_plans: self.spec_plans.clone(),
            quants: self
                .quants
                .iter()
                .map(|q| QuantMeta {
                    param: q.param,
                    kind: q.matrix.kind().name().to_string(),
                    scales: q.matrix.scales().to_vec(),
                })
                .collect(),
        };
        let json = serde_json::to_string(&header).expect("header serialization is infallible");
        let weight_bytes: usize = self.params.iter().map(|p| p.data.len() * 4).sum();
        let mut out = Vec::with_capacity(20 + json.len() + weight_bytes);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(json.len() as u64).to_le_bytes());
        out.extend_from_slice(json.as_bytes());
        // A quantized parameter's f32 data is *replaced* on disk by its
        // quantized blob (the f32 numbers are its exact dequantization,
        // reconstructed on decode) — that substitution is the file-size
        // win. Non-quantized parameters write f32 as always.
        let quantized: std::collections::HashSet<usize> =
            self.quants.iter().map(|q| q.param).collect();
        for (idx, p) in self.params.iter().enumerate() {
            if quantized.contains(&idx) {
                continue;
            }
            for v in &p.data {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        // Quantized element blobs ride after the f32 weights, in header
        // order; lengths are implied by each entry's (kind, shape).
        for q in &self.quants {
            out.extend_from_slice(q.matrix.data());
        }
        out
    }

    /// Decodes the byte format, validating structure and every declared
    /// length **before** allocating for it. Plan descriptors are carried
    /// through as data here; they are validated against the rebuilt
    /// architecture by [`InferenceModel::from_snapshot`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let need = |what, needed, have| {
            if needed > have {
                Err(SnapshotError::Truncated { what, needed, have })
            } else {
                Ok(())
            }
        };
        need("fixed prelude", 20, bytes.len())?;
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let header_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        if header_len > MAX_HEADER_BYTES as u64 {
            return Err(SnapshotError::Limit {
                what: "header length",
                value: header_len.min(usize::MAX as u64) as usize,
                max: MAX_HEADER_BYTES,
            });
        }
        let header_len = header_len as usize;
        need("header", 20 + header_len, bytes.len())?;
        let json = std::str::from_utf8(&bytes[20..20 + header_len])
            .map_err(|e| SnapshotError::Header(format!("header is not UTF-8: {e}")))?;
        let header: Header =
            serde_json::from_str(json).map_err(|e| SnapshotError::Header(e.to_string()))?;

        // Parameter declarations: cap everything before touching the blob.
        if header.params.len() > MAX_PARAMS {
            return Err(SnapshotError::Limit {
                what: "parameter count",
                value: header.params.len(),
                max: MAX_PARAMS,
            });
        }
        let mut total_numel = 0usize;
        for p in &header.params {
            if p.shape.len() > MAX_RANK {
                return Err(SnapshotError::Limit {
                    what: "tensor rank",
                    value: p.shape.len(),
                    max: MAX_RANK,
                });
            }
            let mut numel = 1usize;
            for &d in &p.shape {
                if d == 0 || d > MAX_TENSOR_DIM {
                    return Err(SnapshotError::Limit {
                        what: "tensor dim",
                        value: d,
                        max: MAX_TENSOR_DIM,
                    });
                }
                numel = numel.saturating_mul(d);
            }
            if numel > MAX_TENSOR_NUMEL {
                return Err(SnapshotError::Limit {
                    what: "tensor elements",
                    value: numel,
                    max: MAX_TENSOR_NUMEL,
                });
            }
            total_numel += numel;
        }
        if total_numel > MAX_TOTAL_NUMEL {
            return Err(SnapshotError::Limit {
                what: "total weight elements",
                value: total_numel,
                max: MAX_TOTAL_NUMEL,
            });
        }
        if header.plans.len() > MAX_PLANS {
            return Err(SnapshotError::Limit {
                what: "plan count",
                value: header.plans.len(),
                max: MAX_PLANS,
            });
        }
        if header.plans.windows(2).any(|w| w[0].leaves >= w[1].leaves) {
            return Err(SnapshotError::Header(
                "plans must be in strictly ascending leaf order".into(),
            ));
        }
        if header.spec_plans.len() > MAX_SPEC_PLANS {
            return Err(SnapshotError::Limit {
                what: "specialized-plan count",
                value: header.spec_plans.len(),
                max: MAX_SPEC_PLANS,
            });
        }
        if header
            .spec_plans
            .windows(2)
            .any(|w| (w[0].leaves, w[0].batch) >= (w[1].leaves, w[1].batch))
        {
            return Err(SnapshotError::Header(
                "specialized plans must be in strictly ascending (leaves, batch) order".into(),
            ));
        }

        // Quantization declarations: every blob length is derived from an
        // already-capped parameter shape and checked here, before any
        // allocation sized by the file.
        if header.quants.len() > header.params.len() {
            return Err(SnapshotError::Limit {
                what: "quantized-parameter count",
                value: header.quants.len(),
                max: header.params.len(),
            });
        }
        if header.quants.windows(2).any(|w| w[0].param >= w[1].param) {
            return Err(SnapshotError::Header(
                "quantized parameters must be in strictly ascending index order".into(),
            ));
        }
        let mut quant_blob_bytes = 0usize;
        let mut quant_numel = 0usize;
        let mut quant_dims = Vec::with_capacity(header.quants.len());
        for q in &header.quants {
            let param_err = |name: &str, reason: String| SnapshotError::Param {
                name: name.to_string(),
                reason,
            };
            let meta = header.params.get(q.param).ok_or_else(|| {
                SnapshotError::Header(format!(
                    "quant entry references parameter {} of {}",
                    q.param,
                    header.params.len()
                ))
            })?;
            if meta.shape.len() != 2 {
                return Err(param_err(
                    &meta.name,
                    format!(
                        "quantized but rank {} (only rank-2 supported)",
                        meta.shape.len()
                    ),
                ));
            }
            let kind = QuantKind::parse(&q.kind)
                .ok_or_else(|| param_err(&meta.name, format!("unknown quant kind '{}'", q.kind)))?;
            let (k, n) = (meta.shape[0], meta.shape[1]);
            if q.scales.len() != kind.scale_count(n) {
                return Err(param_err(
                    &meta.name,
                    format!(
                        "{} scales declared, {} kind needs {} for n = {n}",
                        q.scales.len(),
                        kind.name(),
                        kind.scale_count(n)
                    ),
                ));
            }
            let blob_len = k
                .checked_mul(n)
                .and_then(|e| e.checked_mul(kind.bytes_per_elem()))
                .ok_or(SnapshotError::Limit {
                    what: "quantized blob bytes",
                    value: usize::MAX,
                    max: MAX_TENSOR_NUMEL * 4,
                })?;
            quant_blob_bytes += blob_len;
            quant_numel += k * n;
            quant_dims.push((kind, k, n, blob_len));
        }

        // The binary section must match the declarations exactly: the f32
        // data of every *non-quantized* parameter first (a quantized
        // parameter's f32 data lives only as its blob's dequantization),
        // then each quantized blob in header order.
        let quantized: std::collections::HashSet<usize> =
            header.quants.iter().map(|q| q.param).collect();
        let blob = &bytes[20 + header_len..];
        let needed = (total_numel - quant_numel) * 4 + quant_blob_bytes;
        need("weight data", needed, blob.len())?;
        if blob.len() > needed {
            return Err(SnapshotError::TrailingBytes {
                extra: blob.len() - needed,
            });
        }
        let mut params = Vec::with_capacity(header.params.len());
        let mut at = 0usize;
        for (idx, meta) in header.params.into_iter().enumerate() {
            if quantized.contains(&idx) {
                // Filled in below, from the dequantized blob.
                params.push(ParamTensor {
                    name: meta.name,
                    shape: meta.shape,
                    data: Vec::new(),
                });
                continue;
            }
            let numel: usize = meta.shape.iter().product();
            let mut data = Vec::with_capacity(numel);
            for i in 0..numel {
                let off = at + i * 4;
                let v = f32::from_le_bytes(blob[off..off + 4].try_into().expect("4 bytes"));
                if !v.is_finite() {
                    return Err(SnapshotError::NonFinite {
                        name: meta.name,
                        index: i,
                    });
                }
                data.push(v);
            }
            at += numel * 4;
            params.push(ParamTensor {
                name: meta.name,
                shape: meta.shape,
                data,
            });
        }
        let mut quants = Vec::with_capacity(header.quants.len());
        for (q, (kind, k, n, blob_len)) in header.quants.into_iter().zip(quant_dims) {
            let data = blob[at..at + blob_len].to_vec();
            at += blob_len;
            // `from_parts` bounds every scale and rejects non-finite bf16
            // bits, so the dequantization below is always finite — the
            // quantized path has no NaN smuggling lane.
            let matrix =
                QuantizedMatrix::from_parts(kind, k, n, data, q.scales).map_err(|reason| {
                    SnapshotError::Param {
                        name: params[q.param].name.clone(),
                        reason,
                    }
                })?;
            params[q.param].data = matrix.dequantize();
            quants.push(QuantTensor {
                param: q.param,
                matrix,
            });
        }
        Ok(Snapshot {
            config: header.config,
            use_pe: header.use_pe,
            transform: header.transform,
            scaler: header.scaler,
            params,
            plans: header.plans,
            spec_plans: header.spec_plans,
            quants,
        })
    }

    /// Writes the snapshot to a file, atomically: the bytes go to a
    /// temporary sibling first and are renamed over the destination, so a
    /// crash or full disk mid-write can never destroy an existing good
    /// checkpoint or leave a truncated file at the path.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), SnapshotError> {
        let path = path.as_ref();
        let io_err =
            |e: std::io::Error| SnapshotError::Io(format!("writing {}: {e}", path.display()));
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_bytes()).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            io_err(e)
        })
    }

    /// Reads and decodes a snapshot file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Snapshot, SnapshotError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| SnapshotError::Io(format!("reading {}: {e}", path.display())))?;
        Snapshot::from_bytes(&bytes)
    }
}

fn store_params(store: &nn::ParamStore) -> Vec<ParamTensor> {
    store
        .ids()
        .map(|id| ParamTensor {
            name: store.name(id).to_string(),
            shape: store.value(id).shape().to_vec(),
            data: store.value(id).data().to_vec(),
        })
        .collect()
}

/// Sanity caps on a deserialized config so `Predictor::new` cannot be made
/// to allocate attacker-sized weight tensors.
fn validate_config(cfg: &PredictorConfig) -> Result<(), SnapshotError> {
    let widths = [
        ("d_model", cfg.d_model),
        ("d_ff", cfg.d_ff),
        ("d_emb", cfg.d_emb),
        ("d_dev", cfg.d_dev),
        ("dec_hidden", cfg.dec_hidden),
        ("heads", cfg.heads),
    ];
    for (name, v) in widths {
        if v == 0 || v > MAX_CFG_WIDTH {
            return Err(SnapshotError::Model(format!(
                "config {name} = {v} outside 1..={MAX_CFG_WIDTH}"
            )));
        }
    }
    for (name, v) in [("n_layers", cfg.n_layers), ("dec_layers", cfg.dec_layers)] {
        if v == 0 || v > MAX_CFG_LAYERS {
            return Err(SnapshotError::Model(format!(
                "config {name} = {v} outside 1..={MAX_CFG_LAYERS}"
            )));
        }
    }
    if cfg.max_leaves == 0 || cfg.max_leaves > MAX_CFG_LEAVES {
        return Err(SnapshotError::Model(format!(
            "config max_leaves = {} outside 1..={MAX_CFG_LEAVES}",
            cfg.max_leaves
        )));
    }
    // The attention layers assert this; a hostile config must become a
    // typed error here, not a panic inside `Predictor::new`.
    if !cfg.d_model.is_multiple_of(cfg.heads) {
        return Err(SnapshotError::Model(format!(
            "config d_model = {} is not divisible by heads = {}",
            cfg.d_model, cfg.heads
        )));
    }
    if !cfg.theta.is_finite() {
        return Err(SnapshotError::Model("config theta is not finite".into()));
    }
    // Per-field caps still compose into terabyte-scale architectures
    // (d_model and n_layers maxed together); bound the *total* scalar
    // count the config implies before `Predictor::new` allocates it. The
    // estimate overshoots slightly, which is fine: any architecture it
    // rejects could never match a weight section that fits
    // `MAX_TOTAL_NUMEL` anyway.
    let scalars = approx_arch_scalars(cfg);
    if scalars > MAX_TOTAL_NUMEL {
        return Err(SnapshotError::Limit {
            what: "config-implied weight elements",
            value: scalars,
            max: MAX_TOTAL_NUMEL,
        });
    }
    Ok(())
}

/// Upper bound on the scalar parameter count the architecture in `cfg`
/// would allocate (saturating, so hostile configs cannot overflow it).
fn approx_arch_scalars(cfg: &PredictorConfig) -> usize {
    let m = usize::saturating_mul;
    let (d, ff) = (cfg.d_model, cfg.d_ff);
    // Attention (4 d² + 4d) + feed-forward (2 d·ff + ff + d) + layer
    // norms (4d), rounded up.
    let enc_layer = m(4, m(d, d)) + m(2, m(d, ff)) + m(16, d) + m(2, ff);
    let leaf_embed = m(m(cfg.max_leaves, cfg.max_leaves + 1), m(d, cfg.d_emb + 1));
    let dev_mlp = m(N_DEVICE_FEATURES + cfg.d_dev + 4, m(2, cfg.d_dev));
    let dec_in = cfg.d_emb + cfg.d_dev + cfg.dec_hidden;
    let decoder = m(cfg.dec_layers + 1, m(dec_in, cfg.dec_hidden + 1));
    m(N_ENTRY + 2, d)
        .saturating_add(m(cfg.n_layers, enc_layer))
        .saturating_add(leaf_embed)
        .saturating_add(dev_mlp)
        .saturating_add(decoder)
}

impl TrainedModel {
    /// Saves this model as a snapshot with pre-compiled plans for every
    /// supported leaf count, plus specialization requests for the default
    /// serving batch classes (`1` and [`crate::DEFAULT_MAX_BATCH`]) — the
    /// paper's checkpoint workflow. Loading it back
    /// ([`InferenceModel::from_snapshot_file`]) restores a serving model
    /// with zero training and zero plan recording, already specialized
    /// for the engine's stable chunk sizes.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<(), SnapshotError> {
        Snapshot::capture_all(self)
            .map_err(|e| SnapshotError::Model(format!("capturing plans failed: {e}")))?
            .with_batch_classes(&[1, crate::DEFAULT_MAX_BATCH])?
            .save(path)
    }
}

impl InferenceModel {
    /// Restores a serving model from a decoded snapshot.
    ///
    /// Rebuilds the architecture from the snapshot's config, checks every
    /// declared weight tensor against it (name, shape, element count,
    /// finiteness — the snapshot may be hand-built rather than decoded, so
    /// weights are re-checked here; mismatches are typed
    /// [`SnapshotError::Param`]s), copies each tensor into the store
    /// exactly once, and hands the store to the served `Arc` by move
    /// ([`Predictor::into_shared`] — no `freeze()`-style second weight
    /// copy). It also seeds the shared plan cache from the file's
    /// validated plan descriptors; leaf counts without a serialized plan
    /// fall back to lazy recording on first use, exactly like a freshly
    /// trained model.
    pub fn from_snapshot(snap: &Snapshot) -> Result<InferenceModel, SnapshotError> {
        validate_config(&snap.config)?;
        snap.transform
            .validate()
            .map_err(|e| SnapshotError::Header(format!("label transform: {e}")))?;
        if snap.scaler.mean.len() != N_ENTRY || snap.scaler.std.len() != N_ENTRY {
            return Err(SnapshotError::Header(format!(
                "feature scaler has {} / {} columns, expected {N_ENTRY}",
                snap.scaler.mean.len(),
                snap.scaler.std.len()
            )));
        }
        let has_bad = |v: &[f32]| v.iter().any(|x| !x.is_finite());
        if has_bad(&snap.scaler.mean) || has_bad(&snap.scaler.std) {
            return Err(SnapshotError::Header(
                "feature scaler has non-finite statistics".into(),
            ));
        }
        // `FeatScaler::fit` floors std at 1e-6, so a zero or negative
        // column can only come from a corrupt file — and would divide
        // every feature into NaN/inf.
        if snap.scaler.std.iter().any(|&s| s <= 0.0) {
            return Err(SnapshotError::Header(
                "feature scaler has a non-positive std column".into(),
            ));
        }

        // Rebuild the architecture, then overwrite its (seed-initialized)
        // weights with the snapshot's tensors.
        let mut predictor = Predictor::new(snap.config.clone());
        if predictor.store.len() != snap.params.len() {
            return Err(SnapshotError::Model(format!(
                "architecture has {} parameters, snapshot declares {}",
                predictor.store.len(),
                snap.params.len()
            )));
        }
        let ids: Vec<nn::ParamId> = predictor.store.ids().collect();
        for (&id, pt) in ids.iter().zip(&snap.params) {
            let mismatch = |reason: String| SnapshotError::Param {
                name: pt.name.clone(),
                reason,
            };
            let expect = predictor.store.value(id);
            if predictor.store.name(id) != pt.name {
                return Err(mismatch(format!(
                    "expected parameter '{}' at this position",
                    predictor.store.name(id)
                )));
            }
            if expect.shape() != pt.shape.as_slice() {
                return Err(mismatch(format!(
                    "shape {:?} does not match the architecture's {:?}",
                    pt.shape,
                    expect.shape()
                )));
            }
            if let Some(i) = pt.data.iter().position(|v| !v.is_finite()) {
                return Err(SnapshotError::NonFinite {
                    name: pt.name.clone(),
                    index: i,
                });
            }
            let tensor = Tensor::from_vec(pt.data.clone(), &pt.shape)
                .map_err(|e| mismatch(format!("data length does not match shape: {e}")))?;
            *predictor.store.value_mut(id) = tensor;
        }

        // Install the file's canonical quantized encodings. The snapshot
        // may be hand-built rather than decoded, so each entry is
        // re-checked here; the f32 section must be the blob's exact
        // dequantization — that is what keeps reserialization
        // byte-canonical and every executor (fused quant kernels and the
        // generic f32 fallbacks alike) bitwise consistent.
        let mut last_q: Option<usize> = None;
        for q in &snap.quants {
            if last_q.is_some_and(|prev| prev >= q.param) {
                return Err(SnapshotError::Header(
                    "quantized parameters must be in strictly ascending index order".into(),
                ));
            }
            last_q = Some(q.param);
            let (&id, pt) = ids
                .get(q.param)
                .zip(snap.params.get(q.param))
                .ok_or_else(|| {
                    SnapshotError::Header(format!(
                        "quant entry references parameter {} of {}",
                        q.param,
                        ids.len()
                    ))
                })?;
            let qerr = |reason: String| SnapshotError::Param {
                name: pt.name.clone(),
                reason,
            };
            if pt.shape != [q.matrix.k(), q.matrix.n()] {
                return Err(qerr(format!(
                    "quantized as {}x{} but the parameter is {:?}",
                    q.matrix.k(),
                    q.matrix.n(),
                    pt.shape
                )));
            }
            if q.matrix.dequantize() != pt.data {
                return Err(qerr(format!(
                    "{} blob does not dequantize to the stored f32 weights",
                    q.matrix.kind().name()
                )));
            }
            predictor.store.set_quant(id, Arc::new(q.matrix.clone()));
        }

        // Seed the plan cache from the file's descriptors: each one is
        // re-validated against the freshly rebuilt parameter store, then
        // checked to actually be a plan *of this model* (ports + shapes).
        let latent = snap.config.d_emb + snap.config.d_dev;
        for entry in &snap.plans {
            let plan_err = |reason: String| SnapshotError::Plan {
                leaves: entry.leaves,
                reason,
            };
            if entry.leaves == 0 || entry.leaves > snap.config.max_leaves {
                return Err(plan_err(format!(
                    "leaf count outside the model's 1..={}",
                    snap.config.max_leaves
                )));
            }
            let plan = Plan::from_desc(&entry.plan, &predictor.store)
                .map_err(|e| plan_err(e.to_string()))?;
            if plan.num_inputs() != 2 || plan.num_outputs() != 2 {
                return Err(plan_err(format!(
                    "expected 2 inputs / 2 outputs, found {} / {}",
                    plan.num_inputs(),
                    plan.num_outputs()
                )));
            }
            for b in [1usize, 3] {
                let checks = [
                    (
                        "input x",
                        plan.input_shape(0, b),
                        vec![b, entry.leaves, N_ENTRY],
                    ),
                    (
                        "input dev",
                        plan.input_shape(1, b),
                        vec![b, N_DEVICE_FEATURES],
                    ),
                    ("latent output", plan.output_shape(0, b), vec![b, latent]),
                    ("prediction output", plan.output_shape(1, b), vec![b, 1]),
                ];
                for (what, got, want) in checks {
                    if got != want {
                        return Err(plan_err(format!(
                            "{what} has shape {got:?} at B={b}, this model needs {want:?}"
                        )));
                    }
                }
            }
            if !predictor.seed_plan(entry.leaves, Arc::new(plan)) {
                return Err(plan_err("duplicate plan for this leaf count".into()));
            }
        }

        // Hand the store to the served `Arc`, then honor the file's
        // specialization requests: each folds a seeded generic plan for
        // one batch class — pure constant propagation against the
        // restored weights, so the zero-recording property holds.
        //
        // Explicit `F32` mode: the file alone decides quantization.
        // Honoring `CDMPP_QUANT` here would re-quantize loaded weights
        // (not idempotent for i8) and break byte-canonical reserialization
        // of pre-quantization files.
        let shared = predictor.into_shared_quantized(QuantMode::F32);
        for entry in &snap.spec_plans {
            let spec_err = |reason: String| SnapshotError::Plan {
                leaves: entry.leaves,
                reason: format!("specialization for batch {}: {reason}", entry.batch),
            };
            if entry.leaves == 0 || entry.leaves > snap.config.max_leaves {
                return Err(spec_err(format!(
                    "leaf count outside the model's 1..={}",
                    snap.config.max_leaves
                )));
            }
            if entry.batch == 0 || entry.batch > MAX_SPEC_BATCH {
                return Err(spec_err(format!(
                    "batch class outside 1..={MAX_SPEC_BATCH}"
                )));
            }
            // Folding needs the generic plan; without it in the file the
            // lookup would fall back to recording, which cold starts must
            // never do.
            if !snap.plans.iter().any(|p| p.leaves == entry.leaves) {
                return Err(spec_err(
                    "no generic plan for this leaf count in the snapshot".into(),
                ));
            }
            if !shared.register_batch_class(entry.batch) {
                return Err(spec_err(format!(
                    "more than {} distinct batch classes",
                    crate::predictor::MAX_BATCH_CLASSES
                )));
            }
            let folded = shared
                .spec_plan_for(entry.leaves, entry.batch)
                .map_err(|e| spec_err(e.to_string()))?
                .expect("class registered above");
            if folded.arena_len() > MAX_SPEC_ARENA {
                return Err(spec_err(format!(
                    "specialized arena {} exceeds the cap {MAX_SPEC_ARENA}",
                    folded.arena_len()
                )));
            }
        }

        Ok(InferenceModel {
            predictor: shared,
            transform: snap.transform.clone(),
            scaler: snap.scaler.clone(),
            use_pe: snap.use_pe,
        })
    }

    /// Decodes snapshot bytes and restores a serving model (the one-call
    /// cold-start path for in-memory bytes).
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<InferenceModel, SnapshotError> {
        InferenceModel::from_snapshot(&Snapshot::from_bytes(bytes)?)
    }

    /// Loads a snapshot file and restores a serving model (the one-call
    /// cold-start path).
    pub fn from_snapshot_file(
        path: impl AsRef<std::path::Path>,
    ) -> Result<InferenceModel, SnapshotError> {
        InferenceModel::from_snapshot(&Snapshot::load(path)?)
    }
}
