//! The replayer (§5.5, Appendix C, Algorithm 2): end-to-end DNN latency
//! from per-tensor-program predictions.
//!
//! The network's layer DAG becomes a tensor-program data-flow graph; each
//! node carries its predicted duration; Algorithm 2 topologically simulates
//! execution over one or more device queues (engines) and reports the
//! completion time of the last node. On the HL-100, GEMM-class nodes are
//! split into three parallel sub-operators, one per GEMM engine (§5.5).

use std::collections::HashMap;

use devsim::DeviceSpec;
use tir::{Network, OpSpec};

/// One node of the replayable DFG.
#[derive(Debug, Clone)]
pub struct DfgNode {
    /// Duration in seconds (predicted or measured).
    pub duration_s: f64,
    /// Indices of producer nodes.
    pub deps: Vec<usize>,
    /// Queue (engine) this node executes on.
    pub engine: usize,
    /// Inter-op dispatch gap in seconds.
    pub gap_s: f64,
}

/// One scheduled node in a replay timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEntry {
    /// Node index in the input DFG.
    pub node: usize,
    /// Engine the node ran on.
    pub engine: usize,
    /// Start timestamp (seconds).
    pub start_s: f64,
    /// End timestamp (seconds, includes the dispatch gap).
    pub end_s: f64,
}

/// Algorithm 2: simulates the DFG over `n_engines` device queues and
/// returns the iteration time (completion of the last node).
pub fn replay(nodes: &[DfgNode], n_engines: usize) -> f64 {
    replay_timeline(nodes, n_engines).1
}

/// Algorithm 2 with a full execution trace: returns the per-node timeline
/// (in execution order) and the iteration time. Useful for debugging DFG
/// schedules, in the spirit of dPRO's timeline output.
pub fn replay_timeline(nodes: &[DfgNode], n_engines: usize) -> (Vec<TimelineEntry>, f64) {
    assert!(n_engines >= 1, "need at least one engine");
    let n = nodes.len();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    let mut timeline = Vec::with_capacity(n);
    // Lines 3-6: device times and per-device ready queues.
    let mut device_time = vec![0.0f64; n_engines];
    let mut refcount: Vec<usize> = nodes.iter().map(|u| u.deps.len()).collect();
    let mut ready_time = vec![0.0f64; n];
    // Per-engine queues of ready nodes ordered by readyTime.
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); n_engines];
    for (i, u) in nodes.iter().enumerate() {
        if refcount[i] == 0 {
            queues[u.engine.min(n_engines - 1)].push(i);
        }
    }
    let mut finished = 0usize;
    let mut iteration_time = 0.0f64;
    while finished < n {
        // Line 14: select the first device with a non-empty queue,
        // preferring the one with the smallest deviceTime.
        let d = match (0..n_engines)
            .filter(|&d| !queues[d].is_empty())
            .min_by(|&a, &b| device_time[a].partial_cmp(&device_time[b]).expect("finite"))
        {
            Some(d) => d,
            None => break, // Cycle in the graph: stop simulation.
        };
        // Line 18: pop the op with the smallest readyTime.
        let (pos, _) = queues[d]
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| ready_time[a].partial_cmp(&ready_time[b]).expect("finite"))
            .expect("non-empty queue");
        let u = queues[d].remove(pos);
        // Lines 19-20: start and completion times.
        let start = device_time[d].max(ready_time[u]);
        let end = start + nodes[u].duration_s + nodes[u].gap_s;
        device_time[d] = end;
        iteration_time = iteration_time.max(end);
        timeline.push(TimelineEntry {
            node: u,
            engine: d,
            start_s: start,
            end_s: end,
        });
        finished += 1;
        // Lines 22-28: release successors.
        for (v, node) in nodes.iter().enumerate() {
            if node.deps.contains(&u) {
                refcount[v] -= 1;
                ready_time[v] = ready_time[v].max(end);
                if refcount[v] == 0 {
                    queues[node.engine.min(n_engines - 1)].push(v);
                }
            }
        }
    }
    (timeline, iteration_time)
}

/// How many engines a device exposes to the replayer.
pub fn engine_count(dev: &DeviceSpec) -> usize {
    if dev.gemm_engines > 0 {
        // GEMM engines + one vector-core queue (the TPC pool).
        dev.gemm_engines as usize + 1
    } else {
        1
    }
}

fn is_gemm_class(spec: &OpSpec) -> bool {
    matches!(
        spec,
        OpSpec::Dense { .. } | OpSpec::BatchMatmul { .. } | OpSpec::Conv2d { .. }
    )
}

/// Builds the replayable DFG for a network on a device.
///
/// `layer_durations` gives the predicted latency of each layer (seconds).
/// On accelerators with GEMM engines, GEMM-class layers are split into
/// `gemm_engines` parallel sub-operators of `ŷ/engines` each (§5.5).
pub fn build_dfg(net: &Network, layer_durations: &[f64], dev: &DeviceSpec) -> Vec<DfgNode> {
    assert_eq!(net.layers.len(), layer_durations.len());
    let engines = engine_count(dev);
    let gap = dev.launch_overhead_us * 1e-6 * 0.1;
    if engines == 1 {
        return net
            .layers
            .iter()
            .zip(layer_durations.iter())
            .map(|(l, &d)| DfgNode {
                duration_s: d,
                deps: l.deps.clone(),
                engine: 0,
                gap_s: gap,
            })
            .collect();
    }
    // HL-100 style: map layer index -> sub-node indices.
    let mut nodes: Vec<DfgNode> = Vec::new();
    let mut sub_nodes: HashMap<usize, Vec<usize>> = HashMap::new();
    let n_gemm = dev.gemm_engines as usize;
    for (li, (layer, &d)) in net.layers.iter().zip(layer_durations.iter()).enumerate() {
        let deps: Vec<usize> = layer
            .deps
            .iter()
            .flat_map(|dep| sub_nodes[dep].iter().copied())
            .collect();
        let ids = if is_gemm_class(&layer.spec) {
            (0..n_gemm)
                .map(|e| {
                    nodes.push(DfgNode {
                        duration_s: d / n_gemm as f64,
                        deps: deps.clone(),
                        engine: e,
                        gap_s: gap,
                    });
                    nodes.len() - 1
                })
                .collect()
        } else {
            nodes.push(DfgNode {
                duration_s: d,
                deps,
                engine: n_gemm,
                gap_s: gap,
            });
            vec![nodes.len() - 1]
        };
        sub_nodes.insert(li, ids);
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::zoo;

    fn chain(durations: &[f64]) -> Vec<DfgNode> {
        durations
            .iter()
            .enumerate()
            .map(|(i, &d)| DfgNode {
                duration_s: d,
                deps: if i == 0 { vec![] } else { vec![i - 1] },
                engine: 0,
                gap_s: 0.0,
            })
            .collect()
    }

    #[test]
    fn serial_chain_sums() {
        let t = replay(&chain(&[1.0, 2.0, 3.0]), 1);
        assert!((t - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_zero() {
        assert_eq!(replay(&[], 1), 0.0);
    }

    #[test]
    fn parallel_branches_on_one_engine_serialize() {
        // Diamond: 0 -> {1, 2} -> 3, all on one engine.
        let nodes = vec![
            DfgNode {
                duration_s: 1.0,
                deps: vec![],
                engine: 0,
                gap_s: 0.0,
            },
            DfgNode {
                duration_s: 2.0,
                deps: vec![0],
                engine: 0,
                gap_s: 0.0,
            },
            DfgNode {
                duration_s: 3.0,
                deps: vec![0],
                engine: 0,
                gap_s: 0.0,
            },
            DfgNode {
                duration_s: 1.0,
                deps: vec![1, 2],
                engine: 0,
                gap_s: 0.0,
            },
        ];
        assert!((replay(&nodes, 1) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_branches_on_two_engines_overlap() {
        let nodes = vec![
            DfgNode {
                duration_s: 1.0,
                deps: vec![],
                engine: 0,
                gap_s: 0.0,
            },
            DfgNode {
                duration_s: 2.0,
                deps: vec![0],
                engine: 0,
                gap_s: 0.0,
            },
            DfgNode {
                duration_s: 3.0,
                deps: vec![0],
                engine: 1,
                gap_s: 0.0,
            },
            DfgNode {
                duration_s: 1.0,
                deps: vec![1, 2],
                engine: 0,
                gap_s: 0.0,
            },
        ];
        // 0 (1s) then branches overlap (max 3s) then 3 (1s) = 5s.
        assert!((replay(&nodes, 2) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dependencies_respected_regardless_of_queue_order() {
        // Node 1 is much shorter but depends on node 0.
        let nodes = vec![
            DfgNode {
                duration_s: 5.0,
                deps: vec![],
                engine: 0,
                gap_s: 0.0,
            },
            DfgNode {
                duration_s: 0.1,
                deps: vec![0],
                engine: 1,
                gap_s: 0.0,
            },
        ];
        let t = replay(&nodes, 2);
        assert!((t - 5.1).abs() < 1e-12);
    }

    #[test]
    fn gaps_accumulate() {
        let mut nodes = chain(&[1.0, 1.0]);
        nodes[0].gap_s = 0.5;
        nodes[1].gap_s = 0.5;
        assert!((replay(&nodes, 1) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gpu_dfg_is_one_node_per_layer() {
        let net = zoo::bert_tiny(1);
        let durations = vec![1e-4; net.layers.len()];
        let dfg = build_dfg(&net, &durations, &devsim::v100());
        assert_eq!(dfg.len(), net.layers.len());
    }

    #[test]
    fn hl100_splits_gemm_layers() {
        let net = zoo::bert_tiny(1);
        let durations = vec![1e-4; net.layers.len()];
        let dev = devsim::hl100();
        let dfg = build_dfg(&net, &durations, &dev);
        let gemm_layers = net.layers.iter().filter(|l| is_gemm_class(&l.spec)).count();
        let expected = gemm_layers * 3 + (net.layers.len() - gemm_layers);
        assert_eq!(dfg.len(), expected);
        // Splitting across 3 engines beats the single-engine replay of the
        // same graph.
        let t_split = replay(&dfg, engine_count(&dev));
        let single: Vec<DfgNode> = net
            .layers
            .iter()
            .zip(durations.iter())
            .map(|(l, &d)| DfgNode {
                duration_s: d,
                deps: l.deps.clone(),
                engine: 0,
                gap_s: 0.0,
            })
            .collect();
        let t_single = replay(&single, 1);
        assert!(t_split < t_single, "{t_split} vs {t_single}");
    }

    #[test]
    fn timeline_covers_every_node_without_overlap_per_engine() {
        let nodes = vec![
            DfgNode {
                duration_s: 1.0,
                deps: vec![],
                engine: 0,
                gap_s: 0.0,
            },
            DfgNode {
                duration_s: 2.0,
                deps: vec![0],
                engine: 0,
                gap_s: 0.0,
            },
            DfgNode {
                duration_s: 3.0,
                deps: vec![0],
                engine: 1,
                gap_s: 0.0,
            },
            DfgNode {
                duration_s: 1.0,
                deps: vec![1, 2],
                engine: 0,
                gap_s: 0.0,
            },
        ];
        let (timeline, t) = replay_timeline(&nodes, 2);
        assert_eq!(timeline.len(), 4);
        assert!((t - 5.0).abs() < 1e-12);
        // Every node appears exactly once.
        let mut seen: Vec<usize> = timeline.iter().map(|e| e.node).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        // Per engine, intervals do not overlap.
        for engine in 0..2 {
            let mut intervals: Vec<(f64, f64)> = timeline
                .iter()
                .filter(|e| e.engine == engine)
                .map(|e| (e.start_s, e.end_s))
                .collect();
            intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in intervals.windows(2) {
                assert!(w[1].0 >= w[0].1 - 1e-12);
            }
        }
        // Dependencies respected in the trace.
        for e in &timeline {
            for &d in &nodes[e.node].deps {
                let dep_end = timeline.iter().find(|x| x.node == d).unwrap().end_s;
                assert!(e.start_s >= dep_end - 1e-12);
            }
        }
    }

    #[test]
    fn inception_branches_benefit_from_engines() {
        let net = zoo::inception_v3(1);
        let durations: Vec<f64> = net
            .layers
            .iter()
            .map(|l| l.spec.flops() * 1e-12 + 1e-5)
            .collect();
        let dfg1: Vec<DfgNode> = net
            .layers
            .iter()
            .zip(durations.iter())
            .map(|(l, &d)| DfgNode {
                duration_s: d,
                deps: l.deps.clone(),
                engine: 0,
                gap_s: 0.0,
            })
            .collect();
        let t1 = replay(&dfg1, 1);
        // Same graph, branches spread round-robin over 4 engines.
        let dfg4: Vec<DfgNode> = dfg1
            .iter()
            .enumerate()
            .map(|(i, n)| DfgNode {
                engine: i % 4,
                ..n.clone()
            })
            .collect();
        let t4 = replay(&dfg4, 4);
        assert!(t4 < t1);
    }
}
