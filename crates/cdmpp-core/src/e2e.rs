//! End-to-end model latency prediction: network → tensor programs →
//! per-program cost-model predictions → Algorithm-2 replay.

use std::collections::HashMap;

use devsim::{DeviceSpec, Simulator};
use features::{device_features, extract_compact_ast, N_DEVICE_FEATURES};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tir::{build_tasks, lower, sample_schedule, Network, TensorProgram};

use crate::batch::EncodedSample;
use crate::replayer::{build_dfg, engine_count, replay};
use crate::trainer::TrainedModel;

/// Outcome of an end-to-end prediction against the simulated ground truth.
#[derive(Debug, Clone, Copy)]
pub struct E2eResult {
    /// Replayed latency using cost-model predictions (seconds).
    pub predicted_s: f64,
    /// Replayed latency using simulator-measured durations (seconds).
    pub measured_s: f64,
}

impl E2eResult {
    /// Relative prediction error `|pred − meas| / meas`.
    pub fn error(&self) -> f64 {
        (self.predicted_s - self.measured_s).abs() / self.measured_s.max(1e-12)
    }
}

/// Encodes standalone tensor programs (not dataset records) for inference.
pub fn encode_programs(
    programs: &[&TensorProgram],
    dev: &DeviceSpec,
    theta: f32,
    use_pe: bool,
) -> Vec<EncodedSample> {
    let dev_feats: [f32; N_DEVICE_FEATURES] = device_features(dev);
    programs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let ast = extract_compact_ast(p);
            let x = if use_pe {
                ast.encoded_flat(theta)
            } else {
                ast.flat()
            };
            EncodedSample {
                record_idx: i,
                leaf_count: ast.n_leaves(),
                x,
                dev: dev_feats,
                y_raw: 0.0,
            }
        })
        .collect()
}

/// Per-task program selection for a network: one randomly sampled schedule
/// per task (§7.2's end-to-end protocol), seeded deterministically.
pub fn sample_network_programs(net: &Network, seed: u64) -> (Vec<u32>, Vec<TensorProgram>) {
    let tasks = build_tasks(std::slice::from_ref(net));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut programs = Vec::with_capacity(tasks.len());
    for t in &tasks {
        let nest = t.spec.canonical_nest();
        let mut prog = None;
        for _ in 0..10 {
            let s = sample_schedule(&nest, &mut rng);
            if let Ok(p) = lower(&nest, &s) {
                prog = Some(p);
                break;
            }
        }
        programs.push(
            prog.unwrap_or_else(|| {
                lower(&nest, &tir::Schedule::default()).expect("canonical lowers")
            }),
        );
    }
    (tasks.iter().map(|t| t.id).collect(), programs)
}

/// Predicts the end-to-end latency of `net` on `dev` with the cost model,
/// and replays the same programs with simulator durations as ground truth.
///
/// Note: cost-model inference is done **once per distinct task** and the
/// result shared across layers using the same kernel — the de-duplication
/// optimization §5.5 describes.
pub fn end_to_end(model: &TrainedModel, net: &Network, dev: &DeviceSpec, seed: u64) -> E2eResult {
    let (task_ids, programs) = sample_network_programs(net, seed);
    // Cost-model predictions, one per task.
    let refs: Vec<&TensorProgram> = programs.iter().collect();
    let enc = encode_programs(&refs, dev, model.predictor.config().theta, model.use_pe);
    let predicted = model.predict_samples(&enc);
    replay_predictions(net, dev, &task_ids, &programs, &predicted)
}

/// [`end_to_end`] for a frozen / snapshot-restored model: predictions run
/// through the compiled-plan replay path and errors propagate instead of
/// NaN-ing (a snapshot that cannot serve the network should be loud).
pub fn end_to_end_frozen(
    model: &crate::trainer::InferenceModel,
    net: &Network,
    dev: &DeviceSpec,
    seed: u64,
) -> crate::predictor::PredictResult<E2eResult> {
    let (task_ids, programs) = sample_network_programs(net, seed);
    let refs: Vec<&TensorProgram> = programs.iter().collect();
    let enc = encode_programs(&refs, dev, model.predictor.config().theta, model.use_pe);
    let predicted = model.predict_samples(&enc)?;
    Ok(replay_predictions(
        net, dev, &task_ids, &programs, &predicted,
    ))
}

/// Replays per-task predictions (and the simulator ground truth of the
/// same programs) through Algorithm 2 — the shared back half of
/// [`end_to_end`] and the `runtime` crate's engine-served variant.
///
/// `task_ids[i]` identifies the task whose sampled program is
/// `programs[i]` with predicted latency `predicted[i]` (seconds).
pub fn replay_predictions(
    net: &Network,
    dev: &DeviceSpec,
    task_ids: &[u32],
    programs: &[TensorProgram],
    predicted: &[f64],
) -> E2eResult {
    // Ground truth durations from the simulator (deterministic).
    let sim = Simulator::new(dev.clone());
    let measured: Vec<f64> = programs.iter().map(|p| sim.latency_seconds(p)).collect();
    // Map layer -> task duration.
    let tasks = build_tasks(std::slice::from_ref(net));
    let layer_ids = tir::layer_task_ids(net, &tasks);
    let dur_of = |durs: &[f64]| -> Vec<f64> {
        let by_task: HashMap<u32, f64> =
            task_ids.iter().copied().zip(durs.iter().copied()).collect();
        layer_ids.iter().map(|id| by_task[id]).collect()
    };
    let engines = engine_count(dev);
    let pred_dfg = build_dfg(net, &dur_of(predicted), dev);
    let meas_dfg = build_dfg(net, &dur_of(&measured), dev);
    E2eResult {
        predicted_s: replay(&pred_dfg, engines),
        measured_s: replay(&meas_dfg, engines),
    }
}

/// Ground-truth end-to-end latency only (no cost model) — used for
/// device-selection examples.
pub fn measured_end_to_end(net: &Network, dev: &DeviceSpec, seed: u64) -> f64 {
    let (task_ids, programs) = sample_network_programs(net, seed);
    let sim = Simulator::new(dev.clone());
    let measured: Vec<f64> = programs.iter().map(|p| sim.latency_seconds(p)).collect();
    let tasks = build_tasks(std::slice::from_ref(net));
    let layer_ids = tir::layer_task_ids(net, &tasks);
    let by_task: HashMap<u32, f64> = task_ids
        .iter()
        .copied()
        .zip(measured.iter().copied())
        .collect();
    let durations: Vec<f64> = layer_ids.iter().map(|id| by_task[id]).collect();
    let dfg = build_dfg(net, &durations, dev);
    replay(&dfg, engine_count(dev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorConfig;
    use crate::trainer::{pretrain, TrainConfig};
    use dataset::{Dataset, GenConfig, SplitIndices};
    use tir::zoo;

    fn quick_model(devices: Vec<DeviceSpec>) -> (Dataset, TrainedModel) {
        let ds = Dataset::generate_with_networks(
            GenConfig {
                batch: 1,
                schedules_per_task: 4,
                devices,
                seed: 13,
                noise_sigma: 0.0,
            },
            vec![zoo::bert_tiny(1), zoo::mlp_mixer(1)],
        );
        let split = SplitIndices::from_indices(&ds, (0..ds.records.len()).collect(), &[], 1);
        let pcfg = PredictorConfig {
            d_model: 16,
            n_layers: 1,
            d_ff: 32,
            d_emb: 12,
            ..Default::default()
        };
        let (model, _) = pretrain(
            &ds,
            &split.train,
            &split.valid,
            pcfg,
            TrainConfig {
                epochs: 12,
                ..Default::default()
            },
        );
        (ds, model)
    }

    #[test]
    fn e2e_prediction_in_same_ballpark_as_ground_truth() {
        let (_, model) = quick_model(vec![devsim::t4()]);
        let net = zoo::bert_tiny(1);
        let r = end_to_end(&model, &net, &devsim::t4(), 3);
        assert!(r.predicted_s > 0.0 && r.measured_s > 0.0);
        assert!(r.error() < 1.0, "e2e error {:.2} too large", r.error());
    }

    #[test]
    fn sampled_programs_cover_all_tasks() {
        let net = zoo::bert_tiny(1);
        let (ids, programs) = sample_network_programs(&net, 1);
        assert_eq!(ids.len(), programs.len());
        let tasks = build_tasks(std::slice::from_ref(&net));
        assert_eq!(ids.len(), tasks.len());
    }

    #[test]
    fn sampling_is_deterministic() {
        let net = zoo::mlp_mixer(1);
        let (_, a) = sample_network_programs(&net, 9);
        let (_, b) = sample_network_programs(&net, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn measured_e2e_orders_devices_sensibly() {
        // One schedule sample can be unluckily GPU-hostile, and at batch 1
        // launch overhead dominates every device equally; compare at batch
        // 4 over several independent samples so compute differences show.
        let net = zoo::bert_tiny(4);
        let fast: f64 = (0..5)
            .map(|s| measured_end_to_end(&net, &devsim::a100(), s))
            .sum();
        let slow: f64 = (0..5)
            .map(|s| measured_end_to_end(&net, &devsim::graviton2(), s))
            .sum();
        assert!(fast < slow, "A100 {fast} vs Graviton2 {slow}");
    }
}
