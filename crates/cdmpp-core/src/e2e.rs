//! End-to-end model latency prediction: network → tensor programs →
//! per-program cost-model predictions → Algorithm-2 replay.

use std::collections::HashMap;

use devsim::{DeviceSpec, Simulator};
use features::{
    device_features, extract_compact_ast, extract_compact_ast_into_cached, CompactAst, Log1pTable,
    PeTable, N_DEVICE_FEATURES, N_ENTRY,
};
use parallel::ThreadPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tir::{build_tasks, lower, sample_schedule, Network, TensorProgram};

use crate::batch::{EncodedSample, SampleRef};
use crate::replayer::{build_dfg, engine_count, replay};
use crate::trainer::TrainedModel;

/// Outcome of an end-to-end prediction against the simulated ground truth.
#[derive(Debug, Clone, Copy)]
pub struct E2eResult {
    /// Replayed latency using cost-model predictions (seconds).
    pub predicted_s: f64,
    /// Replayed latency using simulator-measured durations (seconds).
    pub measured_s: f64,
}

impl E2eResult {
    /// Relative prediction error `|pred − meas| / meas`.
    pub fn error(&self) -> f64 {
        (self.predicted_s - self.measured_s).abs() / self.measured_s.max(1e-12)
    }
}

/// Encodes standalone tensor programs (not dataset records) for inference.
pub fn encode_programs(
    programs: &[&TensorProgram],
    dev: &DeviceSpec,
    theta: f32,
    use_pe: bool,
) -> Vec<EncodedSample> {
    let dev_feats: [f32; N_DEVICE_FEATURES] = device_features(dev);
    programs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let ast = extract_compact_ast(p);
            let x = if use_pe {
                ast.encoded_flat(theta)
            } else {
                ast.flat()
            };
            EncodedSample {
                record_idx: i,
                leaf_count: ast.n_leaves(),
                x,
                dev: dev_feats,
                y_raw: 0.0,
            }
        })
        .collect()
}

/// Pooled output of batch feature encoding: one flat `f32` slab holding
/// every sample's `[L × N_ENTRY]` row block plus a span table, instead of
/// one owned `Vec<f32>` per sample.
///
/// Like the plan replayer's arena, growth is observable: every buffer
/// expansion bumps [`growth_count`](Self::growth_count), and the search
/// tests assert the counter stays flat once the arena has been warmed at a
/// workload's high-water mark — the encode hot path is
/// zero-steady-state-alloc.
#[derive(Debug, Default)]
pub struct EncodeArena {
    /// Concatenated feature rows of all samples.
    xs: Vec<f32>,
    /// Per-sample `(float offset into xs, leaf count)`.
    spans: Vec<(usize, usize)>,
    /// Device feature row shared by every sample of the request.
    dev: [f32; N_DEVICE_FEATURES],
    /// Per-worker `CompactAst` scratch, reused across calls.
    scratch: Vec<CompactAst>,
    /// High-water capacities of each scratch entry's inner buffers.
    scratch_caps: Vec<(usize, usize)>,
    /// Per-worker memoized positional-encoding rows (one Θ each).
    pe: Vec<PeTable>,
    /// High-water row capacity of each PE table.
    pe_caps: Vec<usize>,
    /// Per-worker memoized `log1p` over extents/strides.
    logs: Vec<Log1pTable>,
    /// High-water entry capacity of each `log1p` table.
    log_caps: Vec<usize>,
    /// Buffer-growth events since construction.
    growth: usize,
}

impl EncodeArena {
    /// Creates an empty arena (all buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of encoded samples held.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the arena holds no samples.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Leaf count of sample `i`.
    pub fn leaf_count(&self, i: usize) -> usize {
        self.spans[i].1
    }

    /// Feature row block of sample `i` (`[leaf_count * N_ENTRY]`).
    pub fn x(&self, i: usize) -> &[f32] {
        let (off, lc) = self.spans[i];
        &self.xs[off..off + lc * N_ENTRY]
    }

    /// Borrowed sample view `i`, usable anywhere a
    /// [`SampleLike`](crate::batch::SampleLike) is accepted.
    pub fn sample(&self, i: usize) -> SampleRef<'_> {
        SampleRef {
            record_idx: i,
            leaf_count: self.leaf_count(i),
            x: self.x(i),
            dev: &self.dev,
            y_raw: 0.0,
        }
    }

    /// Iterates all held samples in request order.
    pub fn samples(&self) -> impl Iterator<Item = SampleRef<'_>> {
        (0..self.len()).map(|i| self.sample(i))
    }

    /// Buffer-growth events since the arena was created. Flat across two
    /// identical workloads ⇒ the second one allocated nothing here.
    pub fn growth_count(&self) -> usize {
        self.growth
    }
}

/// Encodes standalone tensor programs into a pooled [`EncodeArena`],
/// in parallel over `pool` — the schedule search's encode hot path.
///
/// Bit-identical to [`encode_programs`] for every program, any `use_pe`,
/// and **any thread count**: each worker writes a disjoint, pre-computed
/// byte range of the slab, so the partition never influences the values
/// (the PR 2 determinism contract). A warmed arena performs no allocation;
/// see [`EncodeArena::growth_count`].
pub fn encode_programs_into(
    programs: &[&TensorProgram],
    dev: &DeviceSpec,
    theta: f32,
    use_pe: bool,
    pool: &ThreadPool,
    arena: &mut EncodeArena,
) {
    arena.dev = device_features(dev);
    let n = programs.len();
    // Serial pre-pass: leaf counts fix every sample's slab offset up front.
    let spans_cap = arena.spans.capacity();
    arena.spans.clear();
    let mut offset = 0usize;
    for p in programs {
        let lc = p.leaf_count();
        arena.spans.push((offset, lc));
        offset += lc * N_ENTRY;
    }
    if arena.spans.capacity() > spans_cap {
        arena.growth += 1;
    }
    let xs_cap = arena.xs.capacity();
    arena.xs.clear();
    arena.xs.resize(offset, 0.0);
    if arena.xs.capacity() > xs_cap {
        arena.growth += 1;
    }
    if n == 0 {
        return;
    }
    let jobs = pool.threads().min(n).max(1);
    while arena.scratch.len() < jobs {
        arena.scratch.push(CompactAst::default());
        arena.scratch_caps.push((0, 0));
        arena.pe.push(PeTable::new());
        arena.pe_caps.push(0);
        arena.logs.push(Log1pTable::new());
        arena.log_caps.push(0);
        arena.growth += 1;
    }
    let per = n.div_ceil(jobs);
    let spans = &arena.spans;
    let mut rest: &mut [f32] = &mut arena.xs;
    let mut scratch_iter = arena.scratch.iter_mut();
    let mut pe_iter = arena.pe.iter_mut();
    let mut log_iter = arena.logs.iter_mut();
    pool.scope(|s| {
        for j in 0..jobs {
            let lo = j * per;
            let hi = ((j + 1) * per).min(n);
            if lo >= hi {
                break;
            }
            let floats: usize = spans[lo..hi].iter().map(|&(_, lc)| lc * N_ENTRY).sum();
            let (mine, tail) = std::mem::take(&mut rest).split_at_mut(floats);
            rest = tail;
            let ast = scratch_iter.next().expect("scratch sized to jobs");
            let pe = pe_iter.next().expect("pe tables sized to jobs");
            let logs = log_iter.next().expect("log tables sized to jobs");
            s.spawn(move || {
                let mut cur = 0usize;
                for &p in &programs[lo..hi] {
                    extract_compact_ast_into_cached(p, ast, logs);
                    let row = ast.n_leaves() * N_ENTRY;
                    let dst = &mut mine[cur..cur + row];
                    if use_pe {
                        ast.encoded_flat_into_cached(theta, pe, dst);
                    } else {
                        ast.flat_into(dst);
                    }
                    cur += row;
                }
                debug_assert_eq!(cur, mine.len());
            });
        }
    });
    // Scratch `CompactAst`s and PE tables grow lazily inside the workers;
    // surface that as arena growth so the zero-alloc assertion covers them.
    for (ast, caps) in arena.scratch.iter().zip(arena.scratch_caps.iter_mut()) {
        let now = (ast.leaf_vectors.capacity(), ast.ordering.capacity());
        if now.0 > caps.0 || now.1 > caps.1 {
            arena.growth += 1;
            caps.0 = caps.0.max(now.0);
            caps.1 = caps.1.max(now.1);
        }
    }
    for (pe, cap) in arena.pe.iter().zip(arena.pe_caps.iter_mut()) {
        let now = pe.capacity_rows();
        if now > *cap {
            arena.growth += 1;
            *cap = now;
        }
    }
    for (logs, cap) in arena.logs.iter().zip(arena.log_caps.iter_mut()) {
        let now = logs.capacity();
        if now > *cap {
            arena.growth += 1;
            *cap = now;
        }
    }
}

/// Per-task program selection for a network: one randomly sampled schedule
/// per task (§7.2's end-to-end protocol), seeded deterministically.
pub fn sample_network_programs(net: &Network, seed: u64) -> (Vec<u32>, Vec<TensorProgram>) {
    let tasks = build_tasks(std::slice::from_ref(net));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut programs = Vec::with_capacity(tasks.len());
    for t in &tasks {
        let nest = t.spec.canonical_nest();
        let mut prog = None;
        for _ in 0..10 {
            let s = sample_schedule(&nest, &mut rng);
            if let Ok(p) = lower(&nest, &s) {
                prog = Some(p);
                break;
            }
        }
        programs.push(
            prog.unwrap_or_else(|| {
                lower(&nest, &tir::Schedule::default()).expect("canonical lowers")
            }),
        );
    }
    (tasks.iter().map(|t| t.id).collect(), programs)
}

/// Predicts the end-to-end latency of `net` on `dev` with the cost model,
/// and replays the same programs with simulator durations as ground truth.
///
/// Note: cost-model inference is done **once per distinct task** and the
/// result shared across layers using the same kernel — the de-duplication
/// optimization §5.5 describes.
pub fn end_to_end(model: &TrainedModel, net: &Network, dev: &DeviceSpec, seed: u64) -> E2eResult {
    let (task_ids, programs) = sample_network_programs(net, seed);
    // Cost-model predictions, one per task.
    let refs: Vec<&TensorProgram> = programs.iter().collect();
    let enc = encode_programs(&refs, dev, model.predictor.config().theta, model.use_pe);
    let predicted = model.predict_samples(&enc);
    replay_predictions(net, dev, &task_ids, &programs, &predicted)
}

/// [`end_to_end`] for a frozen / snapshot-restored model: predictions run
/// through the compiled-plan replay path and errors propagate instead of
/// NaN-ing (a snapshot that cannot serve the network should be loud).
pub fn end_to_end_frozen(
    model: &crate::trainer::InferenceModel,
    net: &Network,
    dev: &DeviceSpec,
    seed: u64,
) -> crate::predictor::PredictResult<E2eResult> {
    let (task_ids, programs) = sample_network_programs(net, seed);
    let refs: Vec<&TensorProgram> = programs.iter().collect();
    let enc = encode_programs(&refs, dev, model.predictor.config().theta, model.use_pe);
    let predicted = model.predict_samples(&enc)?;
    Ok(replay_predictions(
        net, dev, &task_ids, &programs, &predicted,
    ))
}

/// Replays per-task predictions (and the simulator ground truth of the
/// same programs) through Algorithm 2 — the shared back half of
/// [`end_to_end`] and the `runtime` crate's engine-served variant.
///
/// `task_ids[i]` identifies the task whose sampled program is
/// `programs[i]` with predicted latency `predicted[i]` (seconds).
pub fn replay_predictions(
    net: &Network,
    dev: &DeviceSpec,
    task_ids: &[u32],
    programs: &[TensorProgram],
    predicted: &[f64],
) -> E2eResult {
    // Ground truth durations from the simulator (deterministic).
    let sim = Simulator::new(dev.clone());
    let measured: Vec<f64> = programs.iter().map(|p| sim.latency_seconds(p)).collect();
    // Map layer -> task duration.
    let tasks = build_tasks(std::slice::from_ref(net));
    let layer_ids = tir::layer_task_ids(net, &tasks);
    let dur_of = |durs: &[f64]| -> Vec<f64> {
        let by_task: HashMap<u32, f64> =
            task_ids.iter().copied().zip(durs.iter().copied()).collect();
        layer_ids.iter().map(|id| by_task[id]).collect()
    };
    let engines = engine_count(dev);
    let pred_dfg = build_dfg(net, &dur_of(predicted), dev);
    let meas_dfg = build_dfg(net, &dur_of(&measured), dev);
    E2eResult {
        predicted_s: replay(&pred_dfg, engines),
        measured_s: replay(&meas_dfg, engines),
    }
}

/// Ground-truth end-to-end latency only (no cost model) — used for
/// device-selection examples.
pub fn measured_end_to_end(net: &Network, dev: &DeviceSpec, seed: u64) -> f64 {
    let (task_ids, programs) = sample_network_programs(net, seed);
    let sim = Simulator::new(dev.clone());
    let measured: Vec<f64> = programs.iter().map(|p| sim.latency_seconds(p)).collect();
    let tasks = build_tasks(std::slice::from_ref(net));
    let layer_ids = tir::layer_task_ids(net, &tasks);
    let by_task: HashMap<u32, f64> = task_ids
        .iter()
        .copied()
        .zip(measured.iter().copied())
        .collect();
    let durations: Vec<f64> = layer_ids.iter().map(|id| by_task[id]).collect();
    let dfg = build_dfg(net, &durations, dev);
    replay(&dfg, engine_count(dev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorConfig;
    use crate::trainer::{pretrain, TrainConfig};
    use dataset::{Dataset, GenConfig, SplitIndices};
    use tir::zoo;

    fn quick_model(devices: Vec<DeviceSpec>) -> (Dataset, TrainedModel) {
        let ds = Dataset::generate_with_networks(
            GenConfig {
                batch: 1,
                schedules_per_task: 4,
                devices,
                seed: 13,
                noise_sigma: 0.0,
            },
            vec![zoo::bert_tiny(1), zoo::mlp_mixer(1)],
        );
        let split = SplitIndices::from_indices(&ds, (0..ds.records.len()).collect(), &[], 1);
        let pcfg = PredictorConfig {
            d_model: 16,
            n_layers: 1,
            d_ff: 32,
            d_emb: 12,
            ..Default::default()
        };
        let (model, _) = pretrain(
            &ds,
            &split.train,
            &split.valid,
            pcfg,
            TrainConfig {
                epochs: 12,
                ..Default::default()
            },
        );
        (ds, model)
    }

    #[test]
    fn e2e_prediction_in_same_ballpark_as_ground_truth() {
        let (_, model) = quick_model(vec![devsim::t4()]);
        let net = zoo::bert_tiny(1);
        let r = end_to_end(&model, &net, &devsim::t4(), 3);
        assert!(r.predicted_s > 0.0 && r.measured_s > 0.0);
        assert!(r.error() < 1.0, "e2e error {:.2} too large", r.error());
    }

    #[test]
    fn sampled_programs_cover_all_tasks() {
        let net = zoo::bert_tiny(1);
        let (ids, programs) = sample_network_programs(&net, 1);
        assert_eq!(ids.len(), programs.len());
        let tasks = build_tasks(std::slice::from_ref(&net));
        assert_eq!(ids.len(), tasks.len());
    }

    #[test]
    fn sampling_is_deterministic() {
        let net = zoo::mlp_mixer(1);
        let (_, a) = sample_network_programs(&net, 9);
        let (_, b) = sample_network_programs(&net, 9);
        assert_eq!(a, b);
    }

    fn candidate_programs(seed: u64, count: usize) -> Vec<TensorProgram> {
        let mut rng = StdRng::seed_from_u64(seed);
        let specs = [
            tir::OpSpec::Dense {
                m: 32,
                n: 32,
                k: 32,
            },
            tir::OpSpec::Softmax { rows: 32, cols: 64 },
            tir::OpSpec::BatchMatmul {
                b: 2,
                m: 16,
                n: 16,
                k: 16,
            },
        ];
        let mut out = Vec::new();
        'outer: loop {
            for spec in specs {
                let nest = spec.canonical_nest();
                let s = sample_schedule(&nest, &mut rng);
                out.push(lower(&nest, &s).unwrap());
                if out.len() == count {
                    break 'outer;
                }
            }
        }
        out
    }

    #[test]
    fn arena_encoding_matches_owned_encoding_across_threads_and_pe() {
        let programs = candidate_programs(17, 31);
        let refs: Vec<&TensorProgram> = programs.iter().collect();
        let dev = devsim::t4();
        for use_pe in [true, false] {
            let expect = encode_programs(&refs, &dev, features::DEFAULT_THETA, use_pe);
            for threads in [1, 2, 3, 8] {
                let pool = ThreadPool::new(threads);
                let mut arena = EncodeArena::new();
                encode_programs_into(
                    &refs,
                    &dev,
                    features::DEFAULT_THETA,
                    use_pe,
                    &pool,
                    &mut arena,
                );
                assert_eq!(arena.len(), expect.len());
                for (i, e) in expect.iter().enumerate() {
                    let s = arena.sample(i);
                    assert_eq!(s.record_idx, e.record_idx);
                    assert_eq!(s.leaf_count, e.leaf_count);
                    assert_eq!(s.x, e.x.as_slice(), "use_pe={use_pe} threads={threads}");
                    assert_eq!(s.dev, &e.dev);
                }
            }
        }
    }

    #[test]
    fn arena_encoding_handles_empty_request() {
        let pool = ThreadPool::new(2);
        let mut arena = EncodeArena::new();
        encode_programs_into(
            &[],
            &devsim::t4(),
            features::DEFAULT_THETA,
            true,
            &pool,
            &mut arena,
        );
        assert!(arena.is_empty());
        assert_eq!(arena.samples().count(), 0);
    }

    #[test]
    fn warmed_arena_does_not_grow() {
        let programs = candidate_programs(5, 48);
        let refs: Vec<&TensorProgram> = programs.iter().collect();
        let dev = devsim::t4();
        let pool = ThreadPool::new(4);
        let mut arena = EncodeArena::new();
        // Warmup establishes the high-water mark.
        encode_programs_into(
            &refs,
            &dev,
            features::DEFAULT_THETA,
            true,
            &pool,
            &mut arena,
        );
        let warmed = arena.growth_count();
        assert!(warmed > 0, "cold arena must have grown");
        // Steady state: same-or-smaller workloads reuse every buffer.
        for round in 0..10 {
            let take = refs.len() - round % 3;
            encode_programs_into(
                &refs[..take],
                &dev,
                features::DEFAULT_THETA,
                true,
                &pool,
                &mut arena,
            );
            assert_eq!(
                arena.growth_count(),
                warmed,
                "steady-state encode must not allocate (round {round})"
            );
        }
    }

    #[test]
    fn measured_e2e_orders_devices_sensibly() {
        // One schedule sample can be unluckily GPU-hostile, and at batch 1
        // launch overhead dominates every device equally; compare at batch
        // 4 over several independent samples so compute differences show.
        let net = zoo::bert_tiny(4);
        let fast: f64 = (0..5)
            .map(|s| measured_end_to_end(&net, &devsim::a100(), s))
            .sum();
        let slow: f64 = (0..5)
            .map(|s| measured_end_to_end(&net, &devsim::graviton2(), s))
            .sum();
        assert!(fast < slow, "A100 {fast} vs Graviton2 {slow}");
    }
}
