//! Algorithm 1: the clustering-based task-sampling strategy for
//! fine-tuning on a new device.
//!
//! Given the latent features of every tensor program grouped by task,
//! KMeans partitions the feature space into κ clusters; clusters are
//! visited largest-first and each contributes the not-yet-chosen task
//! whose features lie closest (on average) to the cluster centroid.

use std::collections::HashMap;

use learn::kmeans;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Selects `kappa` representative tasks (Algorithm 1).
///
/// `task_features` maps task id → that task's tensor-program feature rows
/// (typically latents from the source-device model). Returns at most
/// `kappa` distinct task ids, cluster-representatives first.
pub fn select_tasks(
    task_features: &HashMap<u32, Vec<Vec<f64>>>,
    kappa: usize,
    seed: u64,
) -> Vec<u32> {
    let mut task_ids: Vec<u32> = task_features.keys().copied().collect();
    task_ids.sort_unstable();
    if task_ids.is_empty() || kappa == 0 {
        return Vec::new();
    }
    // Line 1: X = all tensor program features.
    let all: Vec<Vec<f64>> = task_ids
        .iter()
        .flat_map(|t| task_features[t].iter().cloned())
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let k = kappa.min(all.len());
    let result = kmeans(&all, k, 50, &mut rng);
    // Line 2: sort clusters by size, descending.
    let mut cluster_order: Vec<usize> = (0..result.centroids.len()).collect();
    cluster_order.sort_by_key(|&c| std::cmp::Reverse(result.sizes[c]));
    // Lines 4-14: per cluster, pick the unused task with the smallest
    // average distance Ψ[e, τ] to the centroid.
    let mut selected = Vec::new();
    let mut remaining: Vec<u32> = task_ids.clone();
    for &e in &cluster_order {
        if selected.len() >= kappa || remaining.is_empty() {
            break;
        }
        let centroid = &result.centroids[e];
        // Ψ[e, τ] = mean distance of task τ's features to centroid e.
        let mut best: Option<(f64, u32)> = None;
        for &tau in &remaining {
            let feats = &task_features[&tau];
            if feats.is_empty() {
                continue;
            }
            let psi: f64 = feats
                .iter()
                .map(|f| {
                    f.iter()
                        .zip(centroid.iter())
                        .map(|(&a, &b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
                .sum::<f64>()
                / feats.len() as f64;
            if best.is_none_or(|(b, _)| psi < b) {
                best = Some((psi, tau));
            }
        }
        if let Some((_, tau)) = best {
            selected.push(tau);
            remaining.retain(|&t| t != tau);
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three "task families" at distinct locations in feature space.
    fn clustered_tasks() -> HashMap<u32, Vec<Vec<f64>>> {
        let mut m = HashMap::new();
        // Family A around (0,0): tasks 0..3. Family B around (10,10):
        // tasks 10..13. Family C around (-10, 5): tasks 20..21.
        for t in 0..4u32 {
            m.insert(
                t,
                (0..5)
                    .map(|i| vec![0.1 * i as f64, 0.1 * t as f64])
                    .collect(),
            );
        }
        for t in 10..14u32 {
            m.insert(
                t,
                (0..5)
                    .map(|i| vec![10.0 + 0.1 * i as f64, 10.0 + 0.1 * t as f64 % 1.0])
                    .collect(),
            );
        }
        for t in 20..22u32 {
            m.insert(
                t,
                (0..5).map(|i| vec![-10.0 + 0.1 * i as f64, 5.0]).collect(),
            );
        }
        m
    }

    #[test]
    fn selects_kappa_distinct_tasks() {
        let feats = clustered_tasks();
        let sel = select_tasks(&feats, 3, 1);
        assert_eq!(sel.len(), 3);
        let mut dedup = sel.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
    }

    #[test]
    fn covers_all_families() {
        // With κ = 3 and 3 well-separated families, one task per family
        // should be selected.
        let feats = clustered_tasks();
        let sel = select_tasks(&feats, 3, 2);
        let fam = |t: u32| {
            if t < 4 {
                0
            } else if t < 14 {
                1
            } else {
                2
            }
        };
        let mut fams: Vec<usize> = sel.iter().map(|&t| fam(t)).collect();
        fams.sort_unstable();
        fams.dedup();
        assert_eq!(fams.len(), 3, "selected {sel:?}");
    }

    #[test]
    fn kappa_larger_than_tasks_clamps() {
        let feats = clustered_tasks();
        let sel = select_tasks(&feats, 100, 3);
        assert!(sel.len() <= feats.len());
    }

    #[test]
    fn empty_input_returns_empty() {
        assert!(select_tasks(&HashMap::new(), 5, 0).is_empty());
        let feats = clustered_tasks();
        assert!(select_tasks(&feats, 0, 0).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let feats = clustered_tasks();
        assert_eq!(select_tasks(&feats, 4, 7), select_tasks(&feats, 4, 7));
    }

    #[test]
    fn representative_not_outlier() {
        // Within a family, the task closest to the family centroid wins.
        let mut m = HashMap::new();
        m.insert(0u32, vec![vec![0.0, 0.0]]); // dead center
        m.insert(1u32, vec![vec![3.0, 3.0]]); // off-center
        m.insert(2u32, vec![vec![-0.5, 0.2]]);
        let sel = select_tasks(&m, 1, 1);
        assert_ne!(sel[0], 1, "outlier task must not represent the cluster");
    }
}
