//! The auto-tuner (§5.3 "NAS and automatic hyper-parameter tuning",
//! Appendix B): random search over predictor architecture and training
//! hyper-parameters, keeping the configuration with the best validation
//! MAPE. The paper uses Optuna with ~1000 trials; this implementation uses
//! seeded random sampling with a trial budget and a short training budget
//! per trial (successive-halving style: survivors can be retrained longer
//! by the caller).

use dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use crate::predictor::PredictorConfig;
use crate::trainer::{evaluate, pretrain, OptKind, TrainConfig};

/// One auto-tuner trial's outcome.
#[derive(Debug, Clone)]
pub struct Trial {
    /// Sampled architecture.
    pub pcfg: PredictorConfig,
    /// Sampled training setup.
    pub tcfg: TrainConfig,
    /// Validation MAPE achieved.
    pub val_mape: f64,
}

/// Auto-tuning result.
#[derive(Debug, Clone)]
pub struct AutoTuneResult {
    /// The best trial.
    pub best: Trial,
    /// All trials, in execution order.
    pub trials: Vec<Trial>,
}

/// Samples one configuration from the search space of Appendix B
/// (widths/depths scaled to CPU training).
pub fn sample_config(
    rng: &mut impl Rng,
    trial_epochs: usize,
    seed: u64,
) -> (PredictorConfig, TrainConfig) {
    let d_model = *[16usize, 32, 48].choose(rng).expect("non-empty");
    let heads = *[2usize, 4].choose(rng).expect("non-empty");
    let pcfg = PredictorConfig {
        d_model,
        n_layers: rng.random_range(1..=3),
        heads,
        d_ff: d_model * *[2usize, 4].choose(rng).expect("non-empty"),
        d_emb: *[16usize, 24, 32].choose(rng).expect("non-empty"),
        d_dev: 8,
        dec_hidden: *[16usize, 32, 64].choose(rng).expect("non-empty"),
        dec_layers: rng.random_range(1..=3),
        max_leaves: 8,
        theta: features::DEFAULT_THETA,
        seed,
    };
    let lr = 10f32.powf(rng.random_range(-3.5..-2.3));
    let tcfg = TrainConfig {
        epochs: trial_epochs,
        batch_size: *[32usize, 64, 128].choose(rng).expect("non-empty"),
        lr,
        weight_decay: 10f32.powf(rng.random_range(-4.0..-2.0)),
        lambda: 1e-3,
        optimizer: if rng.random_bool(0.8) {
            OptKind::Adam
        } else {
            OptKind::Sgd
        },
        cyclic_lr: rng.random_bool(0.7),
        seed,
        ..TrainConfig::default()
    };
    (pcfg, tcfg)
}

/// Runs `n_trials` random-search trials with `trial_epochs` training each.
pub fn autotune(
    ds: &Dataset,
    train_idx: &[usize],
    valid_idx: &[usize],
    n_trials: usize,
    trial_epochs: usize,
    seed: u64,
) -> AutoTuneResult {
    assert!(n_trials >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trials = Vec::with_capacity(n_trials);
    for t in 0..n_trials {
        let (pcfg, tcfg) = sample_config(&mut rng, trial_epochs, seed ^ t as u64);
        let (model, _) = pretrain(ds, train_idx, valid_idx, pcfg.clone(), tcfg.clone());
        let val = evaluate(&model, ds, valid_idx);
        trials.push(Trial {
            pcfg,
            tcfg,
            val_mape: val.mape,
        });
    }
    let best = trials
        .iter()
        .min_by(|a, b| a.val_mape.partial_cmp(&b.val_mape).expect("finite MAPE"))
        .expect("n_trials >= 1")
        .clone();
    AutoTuneResult { best, trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{GenConfig, SplitIndices};
    use tir::zoo;

    #[test]
    fn sampled_configs_are_in_space() {
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..50 {
            let (pcfg, tcfg) = sample_config(&mut rng, 3, i);
            assert_eq!(pcfg.d_model % pcfg.heads, 0, "d_model divisible by heads");
            assert!(pcfg.n_layers >= 1 && pcfg.n_layers <= 3);
            assert!(tcfg.lr > 0.0 && tcfg.lr < 0.01);
        }
    }

    #[test]
    fn autotune_returns_best_of_trials() {
        let ds = Dataset::generate_with_networks(
            GenConfig {
                batch: 1,
                schedules_per_task: 3,
                devices: vec![devsim::t4()],
                seed: 2,
                noise_sigma: 0.0,
            },
            vec![zoo::mlp_mixer(1)],
        );
        let split = SplitIndices::for_device(&ds, "T4", &[], 1);
        let res = autotune(&ds, &split.train, &split.valid, 3, 2, 7);
        assert_eq!(res.trials.len(), 3);
        let min = res
            .trials
            .iter()
            .map(|t| t.val_mape)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(res.best.val_mape, min);
    }
}
