//! The CDMPP predictor (Fig 4).
//!
//! Input: compact-AST leaf vectors with positional encoding `[B, L, N_ENTRY]`
//! plus device feature rows `[B, N_DEV]`. Pipeline:
//!
//! 1. linear input projection to `d_model`,
//! 2. Transformer encoder over the leaf sequence,
//! 3. a **leaf-count-specific** linear embedding layer mapping the flattened
//!    `[L × d_model]` encoder output to a fixed `d_emb` (one linear layer per
//!    leaf count — the paper's alternative to padding),
//! 4. a device MLP producing `z_v`,
//! 5. `z = tanh(z_x ⊕ z_v)` — the latent representation used for CMD
//!    regularization and the Algorithm-1 sampler (tanh bounds the support
//!    so the CMD normalization constant is well-defined),
//! 6. an MLP decoder producing the (Box-Cox-space) latency prediction.

use nn::{Graph, Linear, Mlp, ParamStore, TransformerEncoder, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{Result, Tensor};

use features::{N_DEVICE_FEATURES, N_ENTRY};

/// Architecture hyper-parameters (the auto-tuner's search space, Table 6
/// scaled to CPU training).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorConfig {
    /// Transformer model width.
    pub d_model: usize,
    /// Number of Transformer encoder layers.
    pub n_layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Device-independent embedding width (`z_x`).
    pub d_emb: usize,
    /// Device embedding width (`z_v`).
    pub d_dev: usize,
    /// Decoder hidden width.
    pub dec_hidden: usize,
    /// Number of decoder hidden layers.
    pub dec_layers: usize,
    /// Maximum leaf count supported (one embedding layer per count).
    pub max_leaves: usize,
    /// Positional-encoding Θ.
    pub theta: f32,
    /// Parameter-init seed.
    pub seed: u64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            d_model: 32,
            n_layers: 2,
            heads: 2,
            d_ff: 64,
            d_emb: 24,
            d_dev: 8,
            dec_hidden: 32,
            dec_layers: 2,
            max_leaves: 8,
            theta: features::DEFAULT_THETA,
            seed: 0,
        }
    }
}

/// Output handles of one forward pass.
pub struct ForwardOut {
    /// The latent representation `z` (`[B, d_emb + d_dev]`, tanh-bounded).
    pub latent: Var,
    /// The prediction `[B, 1]` in transformed label space.
    pub pred: Var,
}

/// The CDMPP cost model.
#[derive(Clone)]
pub struct Predictor {
    /// Parameter storage (exposed for optimizers).
    pub store: ParamStore,
    input_proj: Linear,
    encoder: TransformerEncoder,
    leaf_embed: Vec<Linear>,
    dev_mlp: Mlp,
    decoder: Mlp,
    cfg: PredictorConfig,
}

impl Predictor {
    /// Creates an untrained predictor.
    pub fn new(cfg: PredictorConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let input_proj = Linear::new(&mut store, &mut rng, "input_proj", N_ENTRY, cfg.d_model);
        let encoder = TransformerEncoder::new(
            &mut store,
            &mut rng,
            "encoder",
            cfg.n_layers,
            cfg.d_model,
            cfg.heads,
            cfg.d_ff,
        );
        let leaf_embed = (1..=cfg.max_leaves)
            .map(|l| {
                Linear::new(&mut store, &mut rng, &format!("leaf_embed.{l}"), l * cfg.d_model, cfg.d_emb)
            })
            .collect();
        let dev_mlp = Mlp::new(
            &mut store,
            &mut rng,
            "dev_mlp",
            &[N_DEVICE_FEATURES, cfg.d_dev * 2, cfg.d_dev],
        );
        let mut dec_widths = vec![cfg.d_emb + cfg.d_dev];
        dec_widths.extend(std::iter::repeat(cfg.dec_hidden).take(cfg.dec_layers));
        dec_widths.push(1);
        let decoder = Mlp::new(&mut store, &mut rng, "decoder", &dec_widths);
        Predictor { store, input_proj, encoder, leaf_embed, dev_mlp, decoder, cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.cfg
    }

    /// Number of scalar parameters (the paper's model has 13.8M; this one
    /// is ~100k for CPU-scale training).
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// One forward pass over a leaf-count-homogeneous batch.
    ///
    /// `x` is `[B, L, N_ENTRY]` (PE already added by the feature layer),
    /// `dev` is `[B, N_DEVICE_FEATURES]`. `L` must be in
    /// `1..=cfg.max_leaves`.
    pub fn forward(&self, g: &mut Graph, x: Tensor, dev: Tensor) -> Result<ForwardOut> {
        let shape = x.shape().to_vec();
        debug_assert_eq!(shape.len(), 3);
        let (b, l) = (shape[0], shape[1]);
        let xv = g.constant(x);
        let h = self.input_proj.forward(g, &self.store, xv)?;
        let h = self.encoder.forward(g, &self.store, h)?;
        // Leaf-count-specific embedding: flatten [B, L, d] -> [B, L*d].
        let flat = g.reshape(h, &[b, l * self.cfg.d_model])?;
        let layer = self
            .leaf_embed
            .get(l.saturating_sub(1))
            .unwrap_or_else(|| self.leaf_embed.last().expect("max_leaves >= 1"));
        let zx = layer.forward(g, &self.store, flat)?;
        // Device branch.
        let dv = g.constant(dev);
        let zv = self.dev_mlp.forward(g, &self.store, dv)?;
        let z = g.concat_last(&[zx, zv])?;
        let z = g.tanh(z)?;
        let pred = self.decoder.forward(g, &self.store, z)?;
        Ok(ForwardOut { latent: z, pred })
    }

    /// Inference: predictions (transformed space) for a batch.
    pub fn predict_batch(&self, x: Tensor, dev: Tensor) -> Result<Vec<f32>> {
        let mut g = Graph::new();
        let out = self.forward(&mut g, x, dev)?;
        Ok(g.value(out.pred).data().to_vec())
    }

    /// Inference: latent representations for a batch (for CMD / t-SNE /
    /// Algorithm 1).
    pub fn latent_batch(&self, x: Tensor, dev: Tensor) -> Result<Vec<Vec<f64>>> {
        let mut g = Graph::new();
        let out = self.forward(&mut g, x, dev)?;
        let z = g.value(out.latent);
        let d = z.shape()[1];
        Ok(z.data().chunks(d).map(|row| row.iter().map(|&v| v as f64).collect()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(b: usize, l: usize) -> (Tensor, Tensor) {
        let x = Tensor::from_fn(&[b, l, N_ENTRY], |i| ((i as f32) * 0.137).sin() * 0.5);
        let dev = Tensor::from_fn(&[b, N_DEVICE_FEATURES], |i| ((i as f32) * 0.311).cos());
        (x, dev)
    }

    #[test]
    fn forward_shapes() {
        let p = Predictor::new(PredictorConfig::default());
        for l in [1usize, 3, 4, 8] {
            let (x, dev) = batch(5, l);
            let mut g = Graph::new();
            let out = p.forward(&mut g, x, dev).unwrap();
            assert_eq!(g.value(out.pred).shape(), &[5, 1]);
            assert_eq!(g.value(out.latent).shape(), &[5, 24 + 8]);
        }
    }

    #[test]
    fn latent_is_tanh_bounded() {
        let p = Predictor::new(PredictorConfig::default());
        let (x, dev) = batch(4, 3);
        let zs = p.latent_batch(x, dev).unwrap();
        for row in zs {
            assert!(row.iter().all(|v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn different_leaf_counts_use_different_embedding_layers() {
        // The same content reshaped to different leaf counts must go
        // through different layers and give different outputs.
        let p = Predictor::new(PredictorConfig::default());
        let x2 = Tensor::from_fn(&[1, 2, N_ENTRY], |i| (i as f32 * 0.1).sin());
        let dev = Tensor::zeros(&[1, N_DEVICE_FEATURES]);
        let y2 = p.predict_batch(x2, dev.clone()).unwrap();
        let x4 = Tensor::from_fn(&[1, 4, N_ENTRY], |i| (i as f32 * 0.1).sin());
        let y4 = p.predict_batch(x4, dev).unwrap();
        assert_ne!(y2[0], y4[0]);
    }

    #[test]
    fn device_features_change_prediction() {
        let p = Predictor::new(PredictorConfig::default());
        let x = Tensor::from_fn(&[1, 3, N_ENTRY], |i| (i as f32 * 0.05).sin());
        let d1 = Tensor::zeros(&[1, N_DEVICE_FEATURES]);
        let d2 = Tensor::full(&[1, N_DEVICE_FEATURES], 1.0);
        let y1 = p.predict_batch(x.clone(), d1).unwrap();
        let y2 = p.predict_batch(x, d2).unwrap();
        assert_ne!(y1[0], y2[0]);
    }

    #[test]
    fn gradients_flow_to_all_components() {
        let p = Predictor::new(PredictorConfig::default());
        let (x, dev) = batch(6, 3);
        let mut g = Graph::new();
        let out = p.forward(&mut g, x, dev).unwrap();
        let sq = g.square(out.pred).unwrap();
        let loss = g.mean(sq).unwrap();
        g.backward(loss).unwrap();
        let mut store = p.store.clone();
        store.zero_grad();
        g.write_param_grads(&mut store).unwrap();
        // Input projection, encoder, the L=3 embedding layer, device MLP
        // and decoder must all receive gradient; other leaf-embed layers
        // must not.
        let mut with_grad = 0;
        let mut without = 0;
        for id in store.ids() {
            let n = store.name(id);
            let has = store.grad(id).norm2() > 0.0;
            if n.starts_with("leaf_embed.") && !n.starts_with("leaf_embed.3") {
                assert!(!has, "{n} should be untouched");
                without += 1;
            } else if has {
                with_grad += 1;
            }
        }
        assert!(with_grad > 10);
        assert!(without > 0);
    }

    #[test]
    fn param_count_scales_with_config() {
        let small = Predictor::new(PredictorConfig::default());
        let big = Predictor::new(PredictorConfig {
            d_model: 64,
            n_layers: 4,
            ..PredictorConfig::default()
        });
        assert!(big.num_params() > 2 * small.num_params());
    }
}
