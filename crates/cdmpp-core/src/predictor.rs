//! The CDMPP predictor (Fig 4).
//!
//! Input: compact-AST leaf vectors with positional encoding `[B, L, N_ENTRY]`
//! plus device feature rows `[B, N_DEV]`. Pipeline:
//!
//! 1. linear input projection to `d_model`,
//! 2. Transformer encoder over the leaf sequence,
//! 3. a **leaf-count-specific** linear embedding layer mapping the flattened
//!    `[L × d_model]` encoder output to a fixed `d_emb` (one linear layer per
//!    leaf count — the paper's alternative to padding),
//! 4. a device MLP producing `z_v`,
//! 5. `z = tanh(z_x ⊕ z_v)` — the latent representation used for CMD
//!    regularization and the Algorithm-1 sampler (tanh bounds the support
//!    so the CMD normalization constant is well-defined),
//! 6. an MLP decoder producing the (Box-Cox-space) latency prediction.
//!
//! ## Execution model
//!
//! The model *definition* ([`Arch`], internal) is decoupled from
//! *execution*: [`Predictor::forward`] is generic over [`nn::Exec`], so the
//! same definition runs on the autodiff tape for training and on the
//! forward-only [`nn::InferCtx`] for inference. Inference entry points
//! ([`Predictor::predict_batch`], [`Predictor::latent_batch`]) take the
//! forward-only path: no tape, no gradient bookkeeping, parameters borrowed
//! rather than cloned. For serving across threads, [`Predictor::share`]
//! produces a cheap-clone [`SharedPredictor`] holding the weights behind an
//! `Arc`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use nn::plan::{Plan, PlanError, PlanExec, Recorder, SpecExec, SpecializedPlan, WeightPackCache};
use nn::{Exec, Graph, InferCtx, Linear, Mlp, ParamStore, TransformerEncoder, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{QuantMode, Tensor, TensorError};

use features::{N_DEVICE_FEATURES, N_ENTRY};

/// The quantization mode forced on every freeze boundary of this process
/// via `CDMPP_QUANT=i8|bf16` (the CI `test-quantized` job and ad-hoc A/B
/// runs). Read once and cached: a process serves consistently-quantized
/// frozen artifacts or consistently-f32 ones, never a mix. Unset or
/// unrecognized values mean [`QuantMode::F32`] (no forcing). Snapshot
/// *loading* never consults this — a file's quantization is whatever the
/// file declares, so pre-quantization snapshots stay byte-canonical even
/// in a forced process.
pub fn forced_quant_mode() -> QuantMode {
    static MODE: OnceLock<QuantMode> = OnceLock::new();
    *MODE.get_or_init(|| {
        std::env::var("CDMPP_QUANT")
            .ok()
            .and_then(|v| QuantMode::parse(&v))
            .unwrap_or(QuantMode::F32)
    })
}

/// Errors from predictor execution.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictError {
    /// A batch's leaf count has no dedicated embedding layer. The predictor
    /// owns one linear layer per leaf count in `1..=max_leaves`; routing a
    /// larger (or zero) count through a neighbouring layer would silently
    /// produce garbage, so it is rejected up front.
    LeafCountOutOfRange {
        /// The offending leaf count `L` of the batch.
        leaves: usize,
        /// The configured maximum (`PredictorConfig::max_leaves`).
        max_leaves: usize,
    },
    /// An underlying tensor operation failed (shape/rank mismatch).
    Tensor(TensorError),
    /// Compiling or replaying an inference plan failed.
    Plan(PlanError),
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::LeafCountOutOfRange { leaves, max_leaves } => write!(
                f,
                "no embedding layer for leaf count {leaves}: this predictor was built with \
                 max_leaves = {max_leaves} (valid range 1..={max_leaves}); rebuild with a larger \
                 `PredictorConfig::max_leaves` or filter the offending programs"
            ),
            PredictError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            PredictError::Plan(e) => write!(f, "inference plan failed: {e}"),
        }
    }
}

impl std::error::Error for PredictError {}

impl From<TensorError> for PredictError {
    fn from(e: TensorError) -> Self {
        PredictError::Tensor(e)
    }
}

impl From<PlanError> for PredictError {
    fn from(e: PlanError) -> Self {
        PredictError::Plan(e)
    }
}

/// Result alias for predictor execution.
pub type PredictResult<T> = std::result::Result<T, PredictError>;

/// Architecture hyper-parameters (the auto-tuner's search space, Table 6
/// scaled to CPU training). Serializable: snapshots persist the config so
/// a loaded model rebuilds the exact same architecture.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PredictorConfig {
    /// Transformer model width.
    pub d_model: usize,
    /// Number of Transformer encoder layers.
    pub n_layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Device-independent embedding width (`z_x`).
    pub d_emb: usize,
    /// Device embedding width (`z_v`).
    pub d_dev: usize,
    /// Decoder hidden width.
    pub dec_hidden: usize,
    /// Number of decoder hidden layers.
    pub dec_layers: usize,
    /// Maximum leaf count supported (one embedding layer per count).
    pub max_leaves: usize,
    /// Positional-encoding Θ.
    pub theta: f32,
    /// Parameter-init seed.
    pub seed: u64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            d_model: 32,
            n_layers: 2,
            heads: 2,
            d_ff: 64,
            d_emb: 24,
            d_dev: 8,
            dec_hidden: 32,
            dec_layers: 2,
            max_leaves: 8,
            theta: features::DEFAULT_THETA,
            seed: 0,
        }
    }
}

/// Output handles of one forward pass.
pub struct ForwardOut {
    /// The latent representation `z` (`[B, d_emb + d_dev]`, tanh-bounded).
    pub latent: Var,
    /// The prediction `[B, 1]` in transformed label space.
    pub pred: Var,
}

/// The model definition: layer handles into a parameter store. Cloning is
/// cheap (ids only); the weights live in whichever store executes it.
#[derive(Clone)]
struct Arch {
    input_proj: Linear,
    encoder: TransformerEncoder,
    leaf_embed: Vec<Linear>,
    dev_mlp: Mlp,
    decoder: Mlp,
}

impl Arch {
    fn new(store: &mut ParamStore, cfg: &PredictorConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let input_proj = Linear::new(store, &mut rng, "input_proj", N_ENTRY, cfg.d_model);
        let encoder = TransformerEncoder::new(
            store,
            &mut rng,
            "encoder",
            cfg.n_layers,
            cfg.d_model,
            cfg.heads,
            cfg.d_ff,
        );
        let leaf_embed = (1..=cfg.max_leaves)
            .map(|l| {
                Linear::new(
                    store,
                    &mut rng,
                    &format!("leaf_embed.{l}"),
                    l * cfg.d_model,
                    cfg.d_emb,
                )
            })
            .collect();
        let dev_mlp = Mlp::new(
            store,
            &mut rng,
            "dev_mlp",
            &[N_DEVICE_FEATURES, cfg.d_dev * 2, cfg.d_dev],
        );
        let mut dec_widths = vec![cfg.d_emb + cfg.d_dev];
        dec_widths.extend(std::iter::repeat_n(cfg.dec_hidden, cfg.dec_layers));
        dec_widths.push(1);
        let decoder = Mlp::new(store, &mut rng, "decoder", &dec_widths);
        Arch {
            input_proj,
            encoder,
            leaf_embed,
            dev_mlp,
            decoder,
        }
    }

    /// Compiles the batch-size-generic inference plan for one leaf count:
    /// records this architecture's `forward` (the same generic code the
    /// other executors run), fuses bias/activation into GEMM epilogues and
    /// element-wise chains into single passes, and lays every intermediate
    /// out in a liveness-aliased arena. The plan reads parameter *values*
    /// at replay time, so training the store further never invalidates it —
    /// only parameter shapes are baked in.
    fn compile_plan(
        &self,
        cfg: &PredictorConfig,
        store: &ParamStore,
        leaves: usize,
    ) -> PredictResult<Plan> {
        if leaves == 0 || leaves > cfg.max_leaves {
            return Err(PredictError::LeafCountOutOfRange {
                leaves,
                max_leaves: cfg.max_leaves,
            });
        }
        let plan = Plan::compile(store, |rec: &mut Recorder<'_>, b| {
            let x = Tensor::zeros(&[b, leaves, N_ENTRY]);
            let dev = Tensor::zeros(&[b, N_DEVICE_FEATURES]);
            let out = self.forward(cfg, rec, store, x, dev).map_err(|e| match e {
                PredictError::Tensor(t) => PlanError::from(t),
                other => PlanError::Build(other.to_string()),
            })?;
            // Output order is a plan-wide contract: latent first, then the
            // prediction (see `PLAN_OUT_LATENT` / `PLAN_OUT_PRED`).
            Ok(vec![out.latent, out.pred])
        })?;
        Ok(plan)
    }

    /// One forward pass on any executor. See [`Predictor::forward`].
    fn forward<E: Exec>(
        &self,
        cfg: &PredictorConfig,
        g: &mut E,
        store: &ParamStore,
        x: Tensor,
        dev: Tensor,
    ) -> PredictResult<ForwardOut> {
        let shape = x.shape().to_vec();
        debug_assert_eq!(shape.len(), 3);
        let (b, l) = (shape[0], shape[1]);
        let layer = match l.checked_sub(1).and_then(|i| self.leaf_embed.get(i)) {
            Some(layer) => layer,
            None => {
                return Err(PredictError::LeafCountOutOfRange {
                    leaves: l,
                    max_leaves: cfg.max_leaves,
                })
            }
        };
        let xv = g.constant(x);
        let h = self.input_proj.forward(g, store, xv)?;
        let h = self.encoder.forward(g, store, h)?;
        // Leaf-count-specific embedding: flatten [B, L, d] -> [B, L*d].
        let flat = g.reshape(h, &[b, l * cfg.d_model])?;
        let zx = layer.forward(g, store, flat)?;
        // Device branch.
        let dv = g.constant(dev);
        let zv = self.dev_mlp.forward(g, store, dv)?;
        let z = g.concat_last(&[zx, zv])?;
        let z = g.tanh(z)?;
        let pred = self.decoder.forward(g, store, z)?;
        Ok(ForwardOut { latent: z, pred })
    }
}

/// Index of the latent (`z`) output in a compiled predictor plan.
const PLAN_OUT_LATENT: usize = 0;
/// Index of the prediction output in a compiled predictor plan.
const PLAN_OUT_PRED: usize = 1;

/// Lazily compiled plans, one per supported leaf count (index `L - 1`),
/// plus a counter of recordings actually performed.
///
/// Shared by [`Predictor`], every [`SharedPredictor`] derived from it, and
/// every clone of either — a leaf count's plan is compiled at most once
/// per model. Snapshot loading seeds the slots with deserialized plans, so
/// a model restored from disk serves with **zero** recordings (the counter
/// lets tests assert exactly that).
struct PlanCacheInner {
    slots: Vec<OnceLock<Arc<Plan>>>,
    compiles: std::sync::atomic::AtomicUsize,
}

type PlanCache = Arc<PlanCacheInner>;

fn new_plan_cache(max_leaves: usize) -> PlanCache {
    Arc::new(PlanCacheInner {
        slots: (0..max_leaves).map(|_| OnceLock::new()).collect(),
        compiles: std::sync::atomic::AtomicUsize::new(0),
    })
}

/// The second cache tier: **batch-specialized** plans for one frozen
/// weight set, keyed by `(leaf count, batch class)`.
///
/// The first tier (the per-leaf [`PlanCache`]) holds batch-size-generic
/// plans that read parameter values at replay time — safe to share across
/// training-side clones and every frozen handle. Specialized plans are
/// different: [`SpecializedPlan`] prepacks weight GEMM panels, baking in
/// parameter **values**, so this cache hangs off each freeze
/// ([`Predictor::share`] / [`Predictor::into_shared`]) and is never shared
/// with the mutable training-side predictor. Clones of one
/// [`SharedPredictor`] share it (same frozen weights); re-freezing after
/// further training gets a fresh, empty cache.
///
/// Only **registered batch classes** are specialized — routing an
/// arbitrary request stream through here must not grow an unbounded plan
/// set, so odd batch sizes fall back to the generic plan.
struct SpecCacheInner {
    /// Registered batch classes (small: typically `{1, max_batch}`).
    classes: RwLock<Vec<usize>>,
    /// `(leaves, batch)` → folded plan.
    plans: RwLock<HashMap<(usize, usize), Arc<SpecializedPlan>>>,
    /// Prepacked weight panels shared across every fold of this frozen
    /// weight set (plans overlap in the parameters they read, so each
    /// distinct `[k, n]` weight matrix is packed exactly once).
    packs: Mutex<WeightPackCache>,
}

type SpecCache = Arc<SpecCacheInner>;

fn new_spec_cache() -> SpecCache {
    Arc::new(SpecCacheInner {
        classes: RwLock::new(Vec::new()),
        plans: RwLock::new(HashMap::new()),
        packs: Mutex::new(WeightPackCache::new()),
    })
}

/// Hard cap on registered batch classes: the specialized tier is meant for
/// a handful of stable serving shapes, not one plan per request size.
pub const MAX_BATCH_CLASSES: usize = 8;

/// The serving engine's default dense chunk size — and therefore the
/// default non-trivial batch class. Defined here (not in `runtime`) so
/// checkpoints can pre-specialize for the same class the engine dispatches
/// by default.
pub const DEFAULT_MAX_BATCH: usize = 64;

/// Looks up (compiling on first use) the plan for `leaves`.
fn plan_for(
    cache: &PlanCache,
    arch: &Arch,
    cfg: &PredictorConfig,
    store: &ParamStore,
    leaves: usize,
) -> PredictResult<Arc<Plan>> {
    let slot = leaves
        .checked_sub(1)
        .and_then(|i| cache.slots.get(i))
        .ok_or(PredictError::LeafCountOutOfRange {
            leaves,
            max_leaves: cfg.max_leaves,
        })?;
    if let Some(plan) = slot.get() {
        return Ok(Arc::clone(plan));
    }
    // Competing threads may compile concurrently; the first wins and the
    // duplicates are dropped (compilation is pure, so either is correct).
    let plan = Arc::new(arch.compile_plan(cfg, store, leaves)?);
    cache
        .compiles
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    Ok(Arc::clone(slot.get_or_init(|| plan)))
}

/// Per-thread replay state for compiled plans: one [`PlanExec`] (arena +
/// offsets) per leaf count actually served, plus one fixed-size
/// [`SpecExec`] arena per `(leaf count, batch class)` replayed through a
/// specialized plan. Keep one `PlanRunner` per serving thread and feed it
/// every batch; steady-state replay allocates nothing, and class-size
/// batches never re-offset an arena (each class owns its own).
#[derive(Default)]
pub struct PlanRunner {
    execs: Vec<Option<PlanExec>>,
    spec: Vec<((usize, usize), SpecExec)>,
}

impl PlanRunner {
    /// Creates an empty runner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total arena-growth events across all leaf counts on the generic
    /// path (flat once every served shape has warmed up — the "plan path
    /// allocates nothing per batch" counter). Specialized arenas are
    /// allocated exactly once per `(leaf count, class)` and are excluded.
    pub fn alloc_count(&self) -> usize {
        self.execs.iter().flatten().map(|e| e.alloc_count()).sum()
    }

    /// Number of specialized `(leaf count, batch class)` arenas this
    /// runner holds (bounded by leaf counts × registered classes).
    pub fn spec_exec_count(&self) -> usize {
        self.spec.len()
    }

    fn exec_for(&mut self, leaves: usize, plan: Arc<Plan>) -> &mut PlanExec {
        if self.execs.len() < leaves {
            self.execs.resize_with(leaves, || None);
        }
        let slot = &mut self.execs[leaves - 1];
        // A runner may be handed batches from different models (A/B
        // serving, a re-frozen fine-tune): a cached exec is only valid for
        // the plan it was built from, so replace it when the plan differs.
        match slot {
            Some(exec) if Arc::ptr_eq(exec.plan(), &plan) => {}
            _ => *slot = Some(PlanExec::new(plan)),
        }
        slot.as_mut().expect("just ensured")
    }

    fn spec_exec_for(
        &mut self,
        leaves: usize,
        batch: usize,
        plan: Arc<SpecializedPlan>,
    ) -> &mut SpecExec {
        let key = (leaves, batch);
        match self.spec.iter().position(|(k, _)| *k == key) {
            Some(i) if Arc::ptr_eq(self.spec[i].1.plan(), &plan) => &mut self.spec[i].1,
            Some(i) => {
                // Same key, different model (A/B serving): rebind.
                self.spec[i].1 = SpecExec::new(plan);
                &mut self.spec[i].1
            }
            None => {
                self.spec.push((key, SpecExec::new(plan)));
                &mut self.spec.last_mut().expect("just pushed").1
            }
        }
    }
}

fn read_predictions<E: Exec>(e: &E, out: &ForwardOut) -> Vec<f32> {
    e.value(out.pred).data().to_vec()
}

fn read_latents<E: Exec>(e: &E, out: &ForwardOut) -> Vec<Vec<f64>> {
    let z = e.value(out.latent);
    let d = z.shape()[1];
    z.data()
        .chunks(d)
        .map(|row| row.iter().map(|&v| v as f64).collect())
        .collect()
}

/// The CDMPP cost model (training-capable: owns a mutable [`ParamStore`]).
#[derive(Clone)]
pub struct Predictor {
    /// Parameter storage (exposed for optimizers).
    pub store: ParamStore,
    arch: Arch,
    cfg: PredictorConfig,
    plans: PlanCache,
}

impl Predictor {
    /// Creates an untrained predictor.
    pub fn new(cfg: PredictorConfig) -> Self {
        let mut store = ParamStore::new();
        let arch = Arch::new(&mut store, &cfg);
        let plans = new_plan_cache(cfg.max_leaves);
        Predictor {
            store,
            arch,
            cfg,
            plans,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.cfg
    }

    /// Number of scalar parameters (the paper's model has 13.8M; this one
    /// is ~100k for CPU-scale training).
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// Freezes the current weights into a thread-shareable handle.
    ///
    /// The parameters are copied **once** into an `Arc`; clones of the
    /// returned handle are cheap and all read the same weights. This is the
    /// serving path — worker threads no longer deep-clone the store.
    /// Honors [`forced_quant_mode`]; use
    /// [`Predictor::share_quantized`] to pick the mode explicitly.
    pub fn share(&self) -> SharedPredictor {
        self.share_quantized(forced_quant_mode())
    }

    /// [`Predictor::share`] with the weight storage format chosen
    /// explicitly: `Bf16` / `I8` quantize every rank-2 weight matrix once,
    /// here, and replace the frozen copy's f32 values with the dequantized
    /// numbers — so every executor of this frozen handle (fused quantized
    /// GEMMs, generic plans, `InferCtx`) computes from identical weights
    /// and stays bit-identical to the others. The training-side store is
    /// untouched.
    pub fn share_quantized(&self, mode: QuantMode) -> SharedPredictor {
        // Values only: freezing must not drag the training-side
        // gradient buffers (as large as the weights) along.
        let mut store = self.store.clone_values();
        if let Some(kind) = mode.kind() {
            store.quantize_weights(kind);
        }
        SharedPredictor {
            params: Arc::new(store),
            arch: self.arch.clone(),
            cfg: self.cfg.clone(),
            // Plans bake in parameter *shapes*, not values, so the frozen
            // copy can reuse (and share) the same compiled plans.
            plans: Arc::clone(&self.plans),
            // Specialized plans DO bake values (prepacked weights), so
            // every freeze starts a fresh specialization tier bound to
            // this exact weight copy.
            spec: new_spec_cache(),
        }
    }

    /// One forward pass over a leaf-count-homogeneous batch, on any
    /// executor (`&mut Graph` to train, `&mut InferCtx` for inference).
    ///
    /// `x` is `[B, L, N_ENTRY]` (PE already added by the feature layer),
    /// `dev` is `[B, N_DEVICE_FEATURES]`. `L` must be in
    /// `1..=cfg.max_leaves`, otherwise
    /// [`PredictError::LeafCountOutOfRange`] is returned.
    pub fn forward<E: Exec>(&self, g: &mut E, x: Tensor, dev: Tensor) -> PredictResult<ForwardOut> {
        self.arch.forward(&self.cfg, g, &self.store, x, dev)
    }

    /// Inference: predictions (transformed space) for a batch, via the
    /// forward-only executor (no tape, no weight clones).
    pub fn predict_batch(&self, x: Tensor, dev: Tensor) -> PredictResult<Vec<f32>> {
        let mut ctx = InferCtx::new(&self.store);
        let out = self.forward(&mut ctx, x, dev)?;
        Ok(read_predictions(&ctx, &out))
    }

    /// Inference through the taped (autodiff) path. Kept for equivalence
    /// testing and as the benchmark baseline the forward-only path is
    /// measured against; production call sites use
    /// [`Predictor::predict_batch`].
    pub fn predict_batch_taped(&self, x: Tensor, dev: Tensor) -> PredictResult<Vec<f32>> {
        let mut g = Graph::new();
        let out = self.forward(&mut g, x, dev)?;
        Ok(read_predictions(&g, &out))
    }

    /// Inference: latent representations for a batch (for CMD / t-SNE /
    /// Algorithm 1), via the forward-only executor.
    pub fn latent_batch(&self, x: Tensor, dev: Tensor) -> PredictResult<Vec<Vec<f64>>> {
        let mut ctx = InferCtx::new(&self.store);
        let out = self.forward(&mut ctx, x, dev)?;
        Ok(read_latents(&ctx, &out))
    }

    /// The compiled inference plan for one leaf count (compiled on first
    /// use, cached for the model's lifetime — shared with every clone and
    /// every [`Predictor::share`] handle).
    pub fn plan_for(&self, leaves: usize) -> PredictResult<Arc<Plan>> {
        plan_for(&self.plans, &self.arch, &self.cfg, &self.store, leaves)
    }

    /// Number of plan recordings this model (and every handle sharing its
    /// cache) has performed. Stays at zero for a model whose plans were all
    /// seeded from a snapshot — the "loading performs no recording"
    /// counter.
    pub fn plan_compile_count(&self) -> usize {
        self.plans
            .compiles
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Seeds the plan cache for `leaves` with an already-built plan (the
    /// snapshot-restore path). Returns `false` if the leaf count is out of
    /// range or a plan is already cached for it.
    pub(crate) fn seed_plan(&self, leaves: usize, plan: Arc<Plan>) -> bool {
        match leaves.checked_sub(1).and_then(|i| self.plans.slots.get(i)) {
            Some(slot) => slot.set(plan).is_ok(),
            None => false,
        }
    }

    /// Consumes the predictor into a thread-shareable handle **without
    /// copying the weights** (the gradient buffers are dropped in place).
    /// Use this over [`Predictor::share`] when the training-side predictor
    /// is no longer needed — e.g. the CLI's train-then-serve flow. Honors
    /// [`forced_quant_mode`] like [`Predictor::share`].
    pub fn into_shared(self) -> SharedPredictor {
        self.into_shared_quantized(forced_quant_mode())
    }

    /// [`Predictor::into_shared`] with the storage format chosen
    /// explicitly; see [`Predictor::share_quantized`] for the contract.
    /// Parameters that already carry a quantized encoding (the
    /// snapshot-load path installs them from the file) are never
    /// re-quantized — the file's blob is canonical.
    pub fn into_shared_quantized(self, mode: QuantMode) -> SharedPredictor {
        let mut store = self.store.into_values();
        if let Some(kind) = mode.kind() {
            store.quantize_weights(kind);
        }
        SharedPredictor {
            params: Arc::new(store),
            arch: self.arch,
            cfg: self.cfg,
            plans: self.plans,
            spec: new_spec_cache(),
        }
    }

    /// Inference through a compiled plan replayed by `runner` (zero
    /// allocation per batch once warmed up). Bit-identical to
    /// [`Predictor::predict_batch`] and [`Predictor::predict_batch_taped`].
    pub fn predict_planned(
        &self,
        runner: &mut PlanRunner,
        x: &Tensor,
        dev: &Tensor,
    ) -> PredictResult<Vec<f32>> {
        let leaves = leaf_count_of(x)?;
        let plan = self.plan_for(leaves)?;
        let exec = runner.exec_for(leaves, plan);
        exec.run(&self.store, &[x, dev])?;
        Ok(exec.output(PLAN_OUT_PRED).to_vec())
    }
}

/// The leaf count of a `[B, L, N_ENTRY]` batch.
fn leaf_count_of(x: &Tensor) -> PredictResult<usize> {
    match *x.shape() {
        [_, l, _] => Ok(l),
        ref s => Err(PredictError::Tensor(TensorError::BadRank {
            op: "predict_planned",
            expected: 3,
            actual: s.len(),
        })),
    }
}

/// A read-only, thread-shareable view of a trained predictor.
///
/// Obtained from [`Predictor::share`]; weights live behind an `Arc`, so
/// clones are cheap handles and any number of threads can run forward-only
/// inference concurrently (each with its own [`InferCtx`]).
#[derive(Clone)]
pub struct SharedPredictor {
    params: Arc<ParamStore>,
    arch: Arch,
    cfg: PredictorConfig,
    plans: PlanCache,
    spec: SpecCache,
}

impl SharedPredictor {
    /// The configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.cfg
    }

    /// The shared, read-only parameters (e.g. to seed a per-thread
    /// [`InferCtx`]).
    pub fn params(&self) -> &ParamStore {
        &self.params
    }

    /// The storage format of this handle's quantized weights, or `None`
    /// for a plain f32 freeze (all weight matrices share one kind — a
    /// freeze quantizes all of them or none).
    pub fn quant_kind(&self) -> Option<tensor::QuantKind> {
        self.params
            .ids()
            .find_map(|id| self.params.quant(id))
            .map(|q| q.kind())
    }

    /// Bytes of weight storage the serving hot path reads: per parameter,
    /// its quantized encoding when one is installed (blob + scales) or
    /// its f32 values otherwise, plus every prepacked GEMM panel folded
    /// so far (grows as batch classes fold). Quantized parameters also
    /// keep a dequantized f32 copy backing the generic fallback
    /// executors; that cold copy is deliberately not counted — this is
    /// the benches' serving-footprint column, comparing what each storage
    /// mode makes the GEMM path touch.
    pub fn serving_weights_bytes(&self) -> usize {
        let param_bytes: usize = self
            .params
            .ids()
            .map(|id| match self.params.quant(id) {
                Some(q) => q.serving_bytes(),
                None => self.params.value(id).data().len() * 4,
            })
            .sum();
        let panel_bytes = self
            .spec
            .packs
            .lock()
            .expect("pack cache lock")
            .panel_bytes();
        param_bytes + panel_bytes
    }

    /// One forward pass on any executor (typically an [`InferCtx`] borrowing
    /// [`SharedPredictor::params`]).
    pub fn forward<E: Exec>(&self, g: &mut E, x: Tensor, dev: Tensor) -> PredictResult<ForwardOut> {
        self.arch.forward(&self.cfg, g, &self.params, x, dev)
    }

    /// Predictions (transformed space) through a caller-owned context,
    /// allowing buffer reuse across calls. The context must have been
    /// created from [`SharedPredictor::params`].
    pub fn predict_with(
        &self,
        ctx: &mut InferCtx<'_>,
        x: Tensor,
        dev: Tensor,
    ) -> PredictResult<Vec<f32>> {
        ctx.reset();
        let out = self.forward(ctx, x, dev)?;
        Ok(read_predictions(ctx, &out))
    }

    /// One-shot predictions (transformed space) for a batch.
    pub fn predict_batch(&self, x: Tensor, dev: Tensor) -> PredictResult<Vec<f32>> {
        let mut ctx = InferCtx::new(&self.params);
        self.predict_with(&mut ctx, x, dev)
    }

    /// The compiled inference plan for one leaf count (compiled on first
    /// use, cached; shared across every handle to this model).
    pub fn plan_for(&self, leaves: usize) -> PredictResult<Arc<Plan>> {
        plan_for(&self.plans, &self.arch, &self.cfg, &self.params, leaves)
    }

    /// Number of plan recordings performed through this model's shared
    /// cache (zero when every served plan came from a snapshot).
    pub fn plan_compile_count(&self) -> usize {
        self.plans
            .compiles
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The plans currently compiled (or snapshot-seeded), as
    /// `(leaf count, plan)` pairs in ascending leaf order — what a
    /// snapshot captures from a frozen model.
    pub fn compiled_plans(&self) -> Vec<(usize, Arc<Plan>)> {
        self.plans
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.get().map(|p| (i + 1, Arc::clone(p))))
            .collect()
    }

    /// Registers a batch size as a **class** worth specializing for: dense
    /// batches of exactly this size route to a shape-final
    /// [`SpecializedPlan`] (folded lazily, once per leaf count) instead of
    /// the generic plan. The serving engine registers `{1, max_batch}`;
    /// snapshot loading registers whatever classes the file carries.
    ///
    /// Returns `false` (and registers nothing) for batch 0 or once
    /// [`MAX_BATCH_CLASSES`] distinct classes exist; registering an
    /// existing class is a no-op returning `true`.
    pub fn register_batch_class(&self, batch: usize) -> bool {
        if batch == 0 {
            return false;
        }
        let mut classes = self.spec.classes.write().expect("spec classes lock");
        if classes.contains(&batch) {
            return true;
        }
        if classes.len() >= MAX_BATCH_CLASSES {
            return false;
        }
        classes.push(batch);
        classes.sort_unstable();
        true
    }

    /// The registered batch classes, ascending.
    pub fn batch_classes(&self) -> Vec<usize> {
        self.spec.classes.read().expect("spec classes lock").clone()
    }

    /// Whether `batch` is a registered batch class on this model — a
    /// dense batch of exactly this size replays a specialized plan. The
    /// serving engine's promotion path uses this to skip sizes that are
    /// already fast (and to confirm a promotion actually took effect).
    pub fn is_batch_class(&self, batch: usize) -> bool {
        self.spec
            .classes
            .read()
            .expect("spec classes lock")
            .contains(&batch)
    }

    /// The specialized plans currently folded, as ascending
    /// `(leaf count, batch class)` pairs — what a snapshot captures.
    pub fn specialized_plans(&self) -> Vec<(usize, usize)> {
        let mut keys: Vec<(usize, usize)> = self
            .spec
            .plans
            .read()
            .expect("spec plans lock")
            .keys()
            .copied()
            .collect();
        keys.sort_unstable();
        keys
    }

    /// The specialized plan for `(leaves, batch)`: `None` when `batch` is
    /// not a registered class (callers fall back to the generic plan),
    /// folded on first use otherwise.
    pub fn spec_plan_for(
        &self,
        leaves: usize,
        batch: usize,
    ) -> PredictResult<Option<Arc<SpecializedPlan>>> {
        {
            let classes = self.spec.classes.read().expect("spec classes lock");
            if !classes.contains(&batch) {
                return Ok(None);
            }
        }
        let key = (leaves, batch);
        if let Some(plan) = self.spec.plans.read().expect("spec plans lock").get(&key) {
            return Ok(Some(Arc::clone(plan)));
        }
        // Fold outside the plans lock (pure, so a racing duplicate is
        // dropped); the pack cache's own lock shares weight panels across
        // every fold of this frozen model.
        let generic = self.plan_for(leaves)?;
        let folded = {
            let mut packs = self.spec.packs.lock().expect("pack cache lock");
            Arc::new(generic.specialize_cached(&self.params, batch, &mut packs)?)
        };
        let mut plans = self.spec.plans.write().expect("spec plans lock");
        Ok(Some(Arc::clone(plans.entry(key).or_insert(folded))))
    }

    /// Pre-folds the specialized plans for `classes` across every compiled
    /// leaf-count plan — the hot-swap seam. A snapshot-restored model is
    /// warmed here (classes registered, folds built, weight panels packed)
    /// *before* it is published to live traffic, so a cutover never pays a
    /// first-request folding cliff on the new model. Classes that cannot
    /// register (a full registry, e.g. a snapshot that shipped
    /// [`MAX_BATCH_CLASSES`] of its own) are skipped — routing for them
    /// falls back to the generic plan, which is a performance demotion,
    /// never a correctness one. Returns the number of specialized folds
    /// now resident for the requested classes.
    pub fn prewarm_classes(&self, classes: &[usize]) -> PredictResult<usize> {
        let mut resident = 0usize;
        for &batch in classes {
            if !self.register_batch_class(batch) {
                continue;
            }
            for (leaves, _) in self.compiled_plans() {
                if self.spec_plan_for(leaves, batch)?.is_some() {
                    resident += 1;
                }
            }
        }
        Ok(resident)
    }

    /// Predictions (transformed space) through a compiled plan replayed by
    /// `runner`. This is the serving hot path: a batch whose size is a
    /// registered class replays its shape-final specialized plan (zero
    /// symbolic evaluation, prepacked weight GEMMs, one fixed arena per
    /// class); any other size falls back to the batch-generic plan. After
    /// warmup neither path allocates, and both are bit-identical to
    /// [`SharedPredictor::predict_with`].
    pub fn predict_planned(
        &self,
        runner: &mut PlanRunner,
        x: &Tensor,
        dev: &Tensor,
    ) -> PredictResult<Vec<f32>> {
        let leaves = leaf_count_of(x)?;
        let batch = x.shape()[0];
        if let Some(plan) = self.spec_plan_for(leaves, batch)? {
            let exec = runner.spec_exec_for(leaves, batch, plan);
            exec.run(&self.params, &[x, dev])?;
            return Ok(exec.output(PLAN_OUT_PRED).to_vec());
        }
        self.predict_planned_generic(runner, x, dev)
    }

    /// [`SharedPredictor::predict_planned`] pinned to the batch-generic
    /// plan (no class routing) — the baseline the specialization benches
    /// and equivalence tests compare against.
    pub fn predict_planned_generic(
        &self,
        runner: &mut PlanRunner,
        x: &Tensor,
        dev: &Tensor,
    ) -> PredictResult<Vec<f32>> {
        let leaves = leaf_count_of(x)?;
        let plan = self.plan_for(leaves)?;
        let exec = runner.exec_for(leaves, plan);
        exec.run(&self.params, &[x, dev])?;
        Ok(exec.output(PLAN_OUT_PRED).to_vec())
    }

    /// Latent representations through a compiled plan (the plan's other
    /// output; same routing, same zero-allocation property).
    pub fn latent_planned(
        &self,
        runner: &mut PlanRunner,
        x: &Tensor,
        dev: &Tensor,
    ) -> PredictResult<Vec<Vec<f64>>> {
        let leaves = leaf_count_of(x)?;
        let batch = x.shape()[0];
        let to_rows = |z: &[f32], d: usize| -> Vec<Vec<f64>> {
            z.chunks(d)
                .map(|row| row.iter().map(|&v| v as f64).collect())
                .collect()
        };
        if let Some(plan) = self.spec_plan_for(leaves, batch)? {
            let exec = runner.spec_exec_for(leaves, batch, plan);
            exec.run(&self.params, &[x, dev])?;
            let d = exec.output_shape(PLAN_OUT_LATENT)[1];
            return Ok(to_rows(exec.output(PLAN_OUT_LATENT), d));
        }
        let plan = self.plan_for(leaves)?;
        let exec = runner.exec_for(leaves, plan);
        exec.run(&self.params, &[x, dev])?;
        let d = exec.output_shape(PLAN_OUT_LATENT)[1];
        Ok(to_rows(exec.output(PLAN_OUT_LATENT), d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(b: usize, l: usize) -> (Tensor, Tensor) {
        let x = Tensor::from_fn(&[b, l, N_ENTRY], |i| ((i as f32) * 0.137).sin() * 0.5);
        let dev = Tensor::from_fn(&[b, N_DEVICE_FEATURES], |i| ((i as f32) * 0.311).cos());
        (x, dev)
    }

    /// Asserts outputs across the freeze boundary. Bitwise by default;
    /// when `CDMPP_QUANT` forces a quantized freeze, the frozen side
    /// carries quantization error relative to the training-side oracle,
    /// so the comparison switches to a loose tolerance. Frozen-vs-frozen
    /// comparisons must stay `assert_eq!` — they are bitwise regardless.
    fn assert_freeze_close<T>(got: &[T], want: &[T], ctx: &str)
    where
        T: Copy + PartialEq + std::fmt::Debug + Into<f64>,
    {
        assert_eq!(got.len(), want.len(), "{ctx}: length");
        if forced_quant_mode() == QuantMode::F32 {
            assert_eq!(got, want, "{ctx}");
        } else {
            for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
                let (g, w): (f64, f64) = (g.into(), w.into());
                assert!(
                    (g - w).abs() <= 0.15,
                    "{ctx}: [{i}] {g} vs {w} beyond quantization tolerance"
                );
            }
        }
    }

    #[test]
    fn forward_shapes() {
        let p = Predictor::new(PredictorConfig::default());
        for l in [1usize, 3, 4, 8] {
            let (x, dev) = batch(5, l);
            let mut g = Graph::new();
            let out = p.forward(&mut g, x, dev).unwrap();
            assert_eq!(Exec::value(&g, out.pred).shape(), &[5, 1]);
            assert_eq!(Exec::value(&g, out.latent).shape(), &[5, 24 + 8]);
        }
    }

    #[test]
    fn latent_is_tanh_bounded() {
        let p = Predictor::new(PredictorConfig::default());
        let (x, dev) = batch(4, 3);
        let zs = p.latent_batch(x, dev).unwrap();
        for row in zs {
            assert!(row.iter().all(|v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn different_leaf_counts_use_different_embedding_layers() {
        // The same content reshaped to different leaf counts must go
        // through different layers and give different outputs.
        let p = Predictor::new(PredictorConfig::default());
        let x2 = Tensor::from_fn(&[1, 2, N_ENTRY], |i| (i as f32 * 0.1).sin());
        let dev = Tensor::zeros(&[1, N_DEVICE_FEATURES]);
        let y2 = p.predict_batch(x2, dev.clone()).unwrap();
        let x4 = Tensor::from_fn(&[1, 4, N_ENTRY], |i| (i as f32 * 0.1).sin());
        let y4 = p.predict_batch(x4, dev).unwrap();
        assert_ne!(y2[0], y4[0]);
    }

    #[test]
    fn oversized_leaf_count_is_a_descriptive_error() {
        let p = Predictor::new(PredictorConfig::default());
        let max = p.config().max_leaves;
        let (x, dev) = batch(2, max + 1);
        let err = p.predict_batch(x, dev).unwrap_err();
        assert_eq!(
            err,
            PredictError::LeafCountOutOfRange {
                leaves: max + 1,
                max_leaves: max
            }
        );
        let msg = err.to_string();
        assert!(
            msg.contains("max_leaves"),
            "message should name the config knob: {msg}"
        );
        // Leaf count 0 (degenerate) is also rejected, not routed anywhere.
        let x0 = Tensor::zeros(&[2, 0, N_ENTRY]);
        let dev0 = Tensor::zeros(&[2, N_DEVICE_FEATURES]);
        assert!(matches!(
            p.predict_batch(x0, dev0),
            Err(PredictError::LeafCountOutOfRange { leaves: 0, .. })
        ));
    }

    #[test]
    fn forward_only_matches_taped_bitwise() {
        let p = Predictor::new(PredictorConfig::default());
        for l in [1usize, 2, 5, 8] {
            let (x, dev) = batch(7, l);
            let fast = p.predict_batch(x.clone(), dev.clone()).unwrap();
            let taped = p.predict_batch_taped(x, dev).unwrap();
            assert_eq!(fast, taped, "leaf count {l}");
        }
    }

    #[test]
    fn shared_predictor_matches_owner_and_is_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedPredictor>();
        let p = Predictor::new(PredictorConfig::default());
        let shared = p.share();
        let (x, dev) = batch(3, 4);
        let a = p.predict_batch(x.clone(), dev.clone()).unwrap();
        let b = shared.predict_batch(x.clone(), dev.clone()).unwrap();
        assert_freeze_close(&a, &b, "owner vs shared");
        // And through a reused context (buffer recycling path).
        let mut ctx = InferCtx::new(shared.params());
        let c1 = shared
            .predict_with(&mut ctx, x.clone(), dev.clone())
            .unwrap();
        let c2 = shared.predict_with(&mut ctx, x, dev).unwrap();
        assert_eq!(b, c1, "both frozen-side: must stay bitwise");
        assert_eq!(c1, c2);
    }

    #[test]
    fn device_features_change_prediction() {
        let p = Predictor::new(PredictorConfig::default());
        let x = Tensor::from_fn(&[1, 3, N_ENTRY], |i| (i as f32 * 0.05).sin());
        let d1 = Tensor::zeros(&[1, N_DEVICE_FEATURES]);
        let d2 = Tensor::full(&[1, N_DEVICE_FEATURES], 1.0);
        let y1 = p.predict_batch(x.clone(), d1).unwrap();
        let y2 = p.predict_batch(x, d2).unwrap();
        assert_ne!(y1[0], y2[0]);
    }

    #[test]
    fn gradients_flow_to_all_components() {
        let p = Predictor::new(PredictorConfig::default());
        let (x, dev) = batch(6, 3);
        let mut g = Graph::new();
        let out = p.forward(&mut g, x, dev).unwrap();
        let sq = g.square(out.pred).unwrap();
        let loss = g.mean(sq).unwrap();
        g.backward(loss).unwrap();
        let mut store = p.store.clone();
        store.zero_grad();
        g.write_param_grads(&mut store).unwrap();
        // Input projection, encoder, the L=3 embedding layer, device MLP
        // and decoder must all receive gradient; other leaf-embed layers
        // must not.
        let mut with_grad = 0;
        let mut without = 0;
        for id in store.ids() {
            let n = store.name(id);
            let has = store.grad(id).norm2() > 0.0;
            if n.starts_with("leaf_embed.") && !n.starts_with("leaf_embed.3") {
                assert!(!has, "{n} should be untouched");
                without += 1;
            } else if has {
                with_grad += 1;
            }
        }
        assert!(with_grad > 10);
        assert!(without > 0);
    }

    #[test]
    fn planned_predictions_match_all_executors_bitwise() {
        let p = Predictor::new(PredictorConfig::default());
        let mut runner = PlanRunner::new();
        for l in [1usize, 3, 8] {
            for b in [1usize, 4, 7] {
                let (x, dev) = batch(b, l);
                let planned = p.predict_planned(&mut runner, &x, &dev).unwrap();
                let fast = p.predict_batch(x.clone(), dev.clone()).unwrap();
                let taped = p.predict_batch_taped(x, dev).unwrap();
                assert_eq!(planned, fast, "plan vs InferCtx at L={l} B={b}");
                assert_eq!(fast, taped, "InferCtx vs tape at L={l} B={b}");
            }
        }
    }

    #[test]
    fn plans_are_cached_and_shared_with_frozen_handles() {
        let p = Predictor::new(PredictorConfig::default());
        let plan1 = p.plan_for(3).unwrap();
        let plan2 = p.plan_for(3).unwrap();
        assert!(Arc::ptr_eq(&plan1, &plan2), "second lookup must hit cache");
        let shared = p.share();
        let plan3 = shared.plan_for(3).unwrap();
        assert!(
            Arc::ptr_eq(&plan1, &plan3),
            "frozen handle must reuse the owner's compiled plans"
        );
        // The plan actually fuses: every Linear in the predictor has a
        // bias, and the encoder/decoder hide several relu epilogues.
        let st = plan1.stats();
        assert!(st.fused_bias >= 5, "{st:?}");
        assert!(st.fused_activations >= 2, "{st:?}");
        assert!(st.arena_slots < st.buffers, "{st:?}");
    }

    #[test]
    fn planned_leaf_count_out_of_range_is_descriptive() {
        let p = Predictor::new(PredictorConfig::default());
        let mut runner = PlanRunner::new();
        let max = p.config().max_leaves;
        let (x, dev) = batch(2, max + 1);
        let err = p.predict_planned(&mut runner, &x, &dev).unwrap_err();
        assert_eq!(
            err,
            PredictError::LeafCountOutOfRange {
                leaves: max + 1,
                max_leaves: max
            }
        );
        assert!(matches!(
            p.plan_for(0),
            Err(PredictError::LeafCountOutOfRange { .. })
        ));
    }

    #[test]
    fn runner_reused_across_models_replays_each_models_own_plan() {
        // Two different models sharing one runner (A/B serving) must each
        // get their own weights' predictions, not the first model's.
        let a = Predictor::new(PredictorConfig::default());
        let b = Predictor::new(PredictorConfig {
            seed: 1,
            ..PredictorConfig::default()
        });
        let mut runner = PlanRunner::new();
        let (x, dev) = batch(3, 4);
        let via_a = a.predict_planned(&mut runner, &x, &dev).unwrap();
        let via_b = b.predict_planned(&mut runner, &x, &dev).unwrap();
        assert_ne!(via_a, via_b, "different weights must differ");
        assert_eq!(via_a, a.predict_batch(x.clone(), dev.clone()).unwrap());
        assert_eq!(via_b, b.predict_batch(x.clone(), dev.clone()).unwrap());
        // And flipping back re-binds to A's plan again.
        let via_a2 = a.predict_planned(&mut runner, &x, &dev).unwrap();
        assert_eq!(via_a, via_a2);
    }

    #[test]
    fn planned_latents_match_infer_ctx() {
        let p = Predictor::new(PredictorConfig::default());
        let shared = p.share();
        let mut runner = PlanRunner::new();
        let (x, dev) = batch(5, 4);
        let planned = shared.latent_planned(&mut runner, &x, &dev).unwrap();
        let fast = p.latent_batch(x, dev).unwrap();
        assert_eq!(planned.len(), fast.len());
        for (i, (pl, fa)) in planned.iter().zip(&fast).enumerate() {
            assert_freeze_close(pl, fa, &format!("latent row {i}"));
        }
    }

    #[test]
    fn recorder_cse_does_not_regress_default_predictor_memory() {
        // The PR-3 lowering packed the default predictor's L=8 plan into
        // 5 arena slots and 44 steps; recorder CSE must only ever hold or
        // improve both (it removes duplicate subtrees before planning).
        let p = Predictor::new(PredictorConfig::default());
        let st = p.plan_for(8).unwrap().stats();
        assert!(st.arena_slots <= 5, "arena slots regressed: {st:?}");
        assert!(st.steps <= 44, "step count regressed: {st:?}");
    }

    #[test]
    fn specialized_routing_matches_generic_and_falls_back_off_class() {
        let p = Predictor::new(PredictorConfig::default());
        let shared = p.share();
        assert!(shared.register_batch_class(4));
        assert!(!shared.register_batch_class(0), "batch 0 is not a class");
        let mut runner = PlanRunner::new();
        for (b, expect_spec) in [(4usize, true), (3, false), (4, true)] {
            let (x, dev) = batch(b, 3);
            let routed = shared.predict_planned(&mut runner, &x, &dev).unwrap();
            let generic = p.predict_batch(x.clone(), dev.clone()).unwrap();
            assert_freeze_close(&routed, &generic, &format!("b={b}"));
            let _ = expect_spec;
        }
        assert_eq!(
            runner.spec_exec_count(),
            1,
            "one specialized arena for the registered class"
        );
        assert_eq!(shared.specialized_plans(), vec![(3, 4)]);
        // A fresh freeze of the same predictor gets its own spec tier.
        let refrozen = p.share();
        assert!(refrozen.specialized_plans().is_empty());
    }

    #[test]
    fn batch_class_registry_is_bounded() {
        let p = Predictor::new(PredictorConfig::default());
        let shared = p.share();
        for b in 1..=MAX_BATCH_CLASSES {
            assert!(shared.register_batch_class(b * 10));
        }
        assert!(
            !shared.register_batch_class(9_999),
            "registry must cap at MAX_BATCH_CLASSES"
        );
        // Re-registering an existing class stays a no-op success.
        assert!(shared.register_batch_class(10));
        assert_eq!(shared.batch_classes().len(), MAX_BATCH_CLASSES);
    }

    #[test]
    fn param_count_scales_with_config() {
        let small = Predictor::new(PredictorConfig::default());
        let big = Predictor::new(PredictorConfig {
            d_model: 64,
            n_layers: 4,
            ..PredictorConfig::default()
        });
        assert!(big.num_params() > 2 * small.num_params());
    }
}
