//! CDMPP: the paper's primary contribution.
//!
//! * [`predictor`]: the Transformer-based cost model of Fig 4, with
//!   leaf-count-specific embedding layers and a device branch.
//! * [`batch`]: leaf-count-homogeneous batching of compact ASTs.
//! * [`trainer`]: pre-training with Box-Cox label normalization and the
//!   scale-insensitive hybrid objective (§5.2, §5.4).
//! * [`finetune`]: CMD-regularized domain adaptation (§5.3).
//! * [`sampler`]: Algorithm 1 — KMeans-based task selection for profiling
//!   on a new device.
//! * [`replayer`]: Algorithm 2 — end-to-end DFG replay, including HL-100
//!   GEMM-engine splitting (§5.5, Appendix C).
//! * [`e2e`]: network-level latency prediction gluing all of the above.
//! * [`search`]: Ansor-lite schedule search driven by a cost model (§7.5).
//! * [`autotune`]: hyper-parameter / architecture random search
//!   (Appendix B).
//! * [`snapshot`]: the versioned checkpoint format — trained weights plus
//!   compiled inference plans in one file, for zero-recording cold starts.

pub mod autotune;
pub mod batch;
pub mod e2e;
pub mod finetune;
pub mod predictor;
pub mod replayer;
pub mod sampler;
pub mod search;
pub mod snapshot;
pub mod trainer;

pub use autotune::{autotune, AutoTuneResult, Trial};
pub use batch::{
    build_batch, build_scaled_batch, build_scaled_batch_idx, encode_records, group_by_leaf,
    group_by_leaf_into, group_by_leaf_refs, make_batches, Batch, EncodedSample, LeafGroups,
    SampleLike, SampleRef,
};
pub use e2e::{
    encode_programs, encode_programs_into, end_to_end, end_to_end_frozen, measured_end_to_end,
    replay_predictions, sample_network_programs, E2eResult, EncodeArena,
};
pub use finetune::{finetune, latent_cmd, FineTuneConfig};
pub use predictor::{
    forced_quant_mode, PlanRunner, PredictError, Predictor, PredictorConfig, SharedPredictor,
    DEFAULT_MAX_BATCH, MAX_BATCH_CLASSES,
};
pub use replayer::{build_dfg, engine_count, replay, replay_timeline, DfgNode, TimelineEntry};
pub use sampler::select_tasks;
pub use search::{
    generational_search, search_schedule, CostModel, GenRound, GenSearchConfig, GenSearchTrace,
    OracleCost, ProposerMix, RandomCost, SearchConfig, SearchTrace,
};
pub use snapshot::{ParamTensor, PlanEntry, QuantTensor, Snapshot, SnapshotError, SpecPlanEntry};
pub use trainer::{
    evaluate, pretrain, train_step, train_step_parallel, EvalMetrics, InferenceModel, LossKind,
    OptKind, TrainConfig, TrainStats, TrainedModel,
};
