//! CMD-regularized fine-tuning (§5.3, Eqns 5–7).
//!
//! `L_fine_tune = L_pre_train + α · CMD(z_s, z_t)` where `z_s` / `z_t` are
//! latent batches from the source and target domains. For cross-model
//! adaptation (CMPP) the target provides only input features; for
//! cross-device adaptation (CDPP) the target additionally provides labels
//! for the tasks selected by Algorithm 1 and profiled on the new device.

use dataset::Dataset;
use learn::LabelTransform;
use nn::{cmd, Adam, Graph, Optimizer, TANH_SUPPORT};
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::SeedableRng;

use crate::batch::{build_batch, encode_records, group_by_leaf};
use crate::trainer::{build_loss, TrainedModel};

/// Fine-tuning hyper-parameters.
#[derive(Debug, Clone)]
pub struct FineTuneConfig {
    /// Optimization steps.
    pub steps: usize,
    /// CMD coefficient α (the auto-tuner found 1.0; Appendix B).
    pub alpha: f32,
    /// Number of central moments in CMD.
    pub moments: usize,
    /// Learning rate (lower than pre-training).
    pub lr: f32,
    /// Batch size per domain.
    pub batch_size: usize,
    /// Whether target labels participate in the regression loss (CDPP).
    pub use_target_labels: bool,
    /// Seed.
    pub seed: u64,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        FineTuneConfig {
            steps: 120,
            alpha: 1.0,
            moments: 3,
            lr: 5e-4,
            batch_size: 48,
            use_target_labels: false,
            seed: 0,
        }
    }
}

/// Fine-tunes `model` against a target domain.
///
/// * `source_idx`: labeled records from the source domain(s).
/// * `target_idx`: records from the target domain. Labels are used only
///   when `cfg.use_target_labels` (CDPP with profiled samples); otherwise
///   only the input features drive the CMD term (CMPP).
///
/// Returns the mean CMD observed over the last quarter of the steps (a
/// convergence diagnostic used by Fig 8/11-style analyses).
pub fn finetune(
    model: &mut TrainedModel,
    ds: &Dataset,
    source_idx: &[usize],
    target_idx: &[usize],
    cfg: &FineTuneConfig,
) -> f64 {
    assert!(
        !source_idx.is_empty() && !target_idx.is_empty(),
        "empty domains"
    );
    let theta = model.predictor.config().theta;
    let use_pe = model.use_pe;
    let mut src = encode_records(ds, source_idx, theta, use_pe);
    let mut tgt = encode_records(ds, target_idx, theta, use_pe);
    model.scaler.apply_all(&mut src);
    model.scaler.apply_all(&mut tgt);
    let src_groups = group_by_leaf(&src);
    let tgt_groups = group_by_leaf(&tgt);
    // Leaf counts present in both domains (CMD compares same-shape
    // batches within one graph).
    let shared: Vec<usize> = src_groups
        .keys()
        .filter(|k| tgt_groups.contains_key(k))
        .copied()
        .collect();
    assert!(!shared.is_empty(), "no shared leaf counts between domains");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let lambda = model.train_config.lambda;
    let loss_kind = model.train_config.loss;
    let mut cmd_tail = Vec::new();
    for step in 0..cfg.steps {
        let &l = shared.as_slice().choose(&mut rng).expect("non-empty");
        let pick = |group: &Vec<usize>, rng: &mut StdRng| -> Vec<usize> {
            let mut g = group.clone();
            g.shuffle(rng);
            g.truncate(cfg.batch_size.max(2));
            g
        };
        let si = pick(&src_groups[&l], &mut rng);
        let ti = pick(&tgt_groups[&l], &mut rng);
        let sb = build_batch(&si.iter().map(|&i| &src[i]).collect::<Vec<_>>());
        let tb = build_batch(&ti.iter().map(|&i| &tgt[i]).collect::<Vec<_>>());
        model.predictor.store.zero_grad();
        let mut g = Graph::new();
        let Ok(sout) = model
            .predictor
            .forward(&mut g, sb.x.clone(), sb.dev.clone())
        else {
            continue;
        };
        let Ok(tout) = model
            .predictor
            .forward(&mut g, tb.x.clone(), tb.dev.clone())
        else {
            continue;
        };
        // Regression loss on the source (always) and the target (CDPP).
        let sy: Vec<f32> = sb
            .y_raw
            .iter()
            .map(|&y| model.transform.forward(y) as f32)
            .collect();
        let Ok(mut loss) = build_loss(&mut g, sout.pred, &sy, loss_kind, lambda) else {
            continue;
        };
        if cfg.use_target_labels {
            let ty: Vec<f32> = tb
                .y_raw
                .iter()
                .map(|&y| model.transform.forward(y) as f32)
                .collect();
            if let Ok(tl) = build_loss(&mut g, tout.pred, &ty, loss_kind, lambda) {
                if let Ok(sum) = g.add(loss, tl) {
                    loss = sum;
                }
            }
        }
        // CMD regularizer between the two latent batches.
        let Ok(c) = cmd(&mut g, sout.latent, tout.latent, cfg.moments, TANH_SUPPORT) else {
            continue;
        };
        if step >= cfg.steps * 3 / 4 {
            cmd_tail.push(g.value(c).item() as f64);
        }
        let scaled = g.scale(c, cfg.alpha);
        let Ok(total) = g.add(loss, scaled) else {
            continue;
        };
        if g.backward(total).is_err() {
            continue;
        }
        let _ = g.write_param_grads(&mut model.predictor.store);
        model.predictor.store.clip_grad_norm(5.0);
        opt.step(&mut model.predictor.store);
    }
    if cmd_tail.is_empty() {
        f64::NAN
    } else {
        cmd_tail.iter().sum::<f64>() / cmd_tail.len() as f64
    }
}

/// Mean CMD between the latents of two record sets under the current model
/// (the "before/after" number behind Figs 8 and 11).
pub fn latent_cmd(
    model: &TrainedModel,
    ds: &Dataset,
    a: &[usize],
    b: &[usize],
    moments: usize,
) -> f64 {
    let za = model.latents(ds, a);
    let zb = model.latents(ds, b);
    if za.is_empty() || zb.is_empty() {
        return f64::NAN;
    }
    let to_tensor = |z: Vec<Vec<f64>>| {
        let d = z[0].len();
        let flat: Vec<f32> = z.iter().flat_map(|r| r.iter().map(|&v| v as f32)).collect();
        tensor::Tensor::from_vec(flat, &[z.len(), d]).expect("latent dims")
    };
    nn::cmd_value(&to_tensor(za), &to_tensor(zb), moments, TANH_SUPPORT).unwrap_or(f64::NAN as f32)
        as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorConfig;
    use crate::trainer::{evaluate, pretrain, TrainConfig};
    use dataset::{GenConfig, SplitIndices};
    use tir::zoo;

    /// Two-device dataset: pretrain on T4, adapt to EPYC.
    fn setup() -> (Dataset, SplitIndices, SplitIndices) {
        let ds = Dataset::generate_with_networks(
            GenConfig {
                batch: 1,
                schedules_per_task: 4,
                devices: vec![devsim::t4(), devsim::epyc_7452()],
                seed: 9,
                noise_sigma: 0.0,
            },
            vec![zoo::bert_tiny(1), zoo::mlp_mixer(1)],
        );
        let src = SplitIndices::for_device(&ds, "T4", &[], 1);
        let tgt = SplitIndices::for_device(&ds, "EPYC-7452", &[], 1);
        (ds, src, tgt)
    }

    #[test]
    fn cdpp_finetune_improves_target_error_and_reduces_cmd() {
        let (ds, src, tgt) = setup();
        let pcfg = PredictorConfig {
            d_model: 16,
            n_layers: 1,
            d_ff: 32,
            d_emb: 12,
            ..Default::default()
        };
        let (mut model, _) = pretrain(
            &ds,
            &src.train,
            &src.valid,
            pcfg,
            TrainConfig {
                epochs: 15,
                ..Default::default()
            },
        );
        let before = evaluate(&model, &ds, &tgt.test);
        let cmd_before = latent_cmd(&model, &ds, &src.test, &tgt.test, 3);
        let cfg = FineTuneConfig {
            steps: 150,
            use_target_labels: true,
            ..Default::default()
        };
        finetune(&mut model, &ds, &src.train, &tgt.train, &cfg);
        let after = evaluate(&model, &ds, &tgt.test);
        let cmd_after = latent_cmd(&model, &ds, &src.test, &tgt.test, 3);
        assert!(
            after.mape < before.mape,
            "fine-tuning must improve target MAPE: {:.3} -> {:.3}",
            before.mape,
            after.mape
        );
        assert!(
            cmd_after < cmd_before,
            "CMD must shrink: {cmd_before:.4} -> {cmd_after:.4}"
        );
    }

    #[test]
    fn cmpp_finetune_runs_without_target_labels() {
        let (ds, src, tgt) = setup();
        let pcfg = PredictorConfig {
            d_model: 16,
            n_layers: 1,
            d_ff: 32,
            d_emb: 12,
            ..Default::default()
        };
        let (mut model, _) = pretrain(
            &ds,
            &src.train,
            &src.valid,
            pcfg,
            TrainConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        let cfg = FineTuneConfig {
            steps: 40,
            use_target_labels: false,
            ..Default::default()
        };
        let tail_cmd = finetune(&mut model, &ds, &src.train, &tgt.train, &cfg);
        assert!(tail_cmd.is_finite());
    }

    #[test]
    #[should_panic(expected = "empty domains")]
    fn empty_target_panics() {
        let (ds, src, _) = setup();
        let pcfg = PredictorConfig {
            d_model: 16,
            n_layers: 1,
            d_ff: 32,
            d_emb: 12,
            ..Default::default()
        };
        let (mut model, _) = pretrain(
            &ds,
            &src.train,
            &[],
            pcfg,
            TrainConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        finetune(&mut model, &ds, &src.train, &[], &FineTuneConfig::default());
    }
}
