//! Property-based invariants for the Algorithm-2 replayer on random DAGs.

use cdmpp_core::{replay, DfgNode};
use proptest::prelude::*;

fn arb_dag() -> impl Strategy<Value = Vec<DfgNode>> {
    proptest::collection::vec((1u64..100, 0usize..4), 1..25).prop_map(|raw| {
        raw.iter()
            .enumerate()
            .map(|(i, &(dur, engine))| {
                // Deps point backwards to a pseudo-random subset.
                let deps: Vec<usize> = (0..i).filter(|&d| (d * 7 + i) % 3 == 0).collect();
                DfgNode {
                    duration_s: dur as f64 * 1e-4,
                    deps,
                    engine,
                    gap_s: 0.0,
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn replay_bounded_by_critical_path_and_serial_sum(nodes in arb_dag(), engines in 1usize..5) {
        let t = replay(&nodes, engines);
        // Longest dependency chain.
        let mut longest = vec![0.0f64; nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            let dep = n.deps.iter().map(|&d| longest[d]).fold(0.0f64, f64::max);
            longest[i] = dep + n.duration_s;
        }
        let critical = longest.iter().cloned().fold(0.0, f64::max);
        let serial: f64 = nodes.iter().map(|n| n.duration_s).sum();
        prop_assert!(t >= critical - 1e-12, "t {} < critical {}", t, critical);
        prop_assert!(t <= serial + 1e-12, "t {} > serial {}", t, serial);
    }

    #[test]
    fn more_engines_never_slow_down(nodes in arb_dag()) {
        let t1 = replay(&nodes, 1);
        let t4 = replay(&nodes, 4);
        prop_assert!(t4 <= t1 + 1e-12);
    }

    #[test]
    fn replay_is_deterministic(nodes in arb_dag(), engines in 1usize..4) {
        prop_assert_eq!(replay(&nodes, engines), replay(&nodes, engines));
    }
}
