//! Property tests: all five executors — the taped (autodiff) forward, the
//! forward-only `InferCtx`, the batch-generic compiled-plan `PlanExec`
//! path, the **batch-specialized** plan path (shape-final folds with
//! prepacked weight GEMMs), and plans **restored from snapshot bytes**
//! (generic and re-specialized) — must be **bit-identical**, for every
//! leaf count the predictor supports, across head counts and PE settings,
//! for both predictions and latents, for arbitrary inputs, and for batch
//! sizes both on and off the registered classes (off-class sizes must
//! fall back to the generic plan and still match). The plan paths must
//! additionally allocate nothing per batch once warmed up.

use cdmpp_core::batch::FeatScaler;
use cdmpp_core::{
    encode_programs, InferenceModel, PlanRunner, Predictor, PredictorConfig, Snapshot, TrainConfig,
    TrainedModel,
};
use features::{N_DEVICE_FEATURES, N_ENTRY};
use learn::TransformKind;
use nn::{Exec, Graph, InferCtx};
use proptest::prelude::*;
use tensor::Tensor;

/// Compares frozen-side outputs against a training-side oracle. Bitwise
/// by default; when `CDMPP_QUANT` forces quantized freezing the frozen
/// side carries quantization error relative to the unquantized oracle, so
/// the comparison switches to a loose tolerance. Frozen-vs-frozen
/// comparisons stay `assert_eq!` — those are bitwise in every mode.
fn freeze_close<A: Copy + Into<f64>>(got: &[A], want: &[A]) -> bool {
    let quant_forced = cdmpp_core::forced_quant_mode() != tensor::QuantMode::F32;
    got.len() == want.len()
        && got.iter().zip(want).all(|(&g, &w)| {
            let (g, w): (f64, f64) = (g.into(), w.into());
            if quant_forced {
                (g - w).abs() <= 0.15 * w.abs().max(1.0)
            } else {
                g == w
            }
        })
}

fn freeze_close_rows<A: Copy + Into<f64>>(got: &[Vec<A>], want: &[Vec<A>]) -> bool {
    got.len() == want.len()
        && got
            .iter()
            .zip(want)
            .all(|(g, w)| freeze_close(g.as_slice(), w.as_slice()))
}

fn inputs(b: usize, l: usize, seed: u64) -> (Tensor, Tensor) {
    // Deterministic pseudo-random inputs spanning a wide value range.
    let gen = |i: usize, salt: u64| -> f32 {
        let h = (i as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(seed ^ salt)
            .wrapping_mul(0xBF58476D1CE4E5B9);
        ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 4.0
    };
    let x = Tensor::from_fn(&[b, l, N_ENTRY], |i| gen(i, 0xA5));
    let dev = Tensor::from_fn(&[b, N_DEVICE_FEATURES], |i| gen(i, 0x5A));
    (x, dev)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forward_only_predictions_match_taped_bit_for_bit(
        b in 1usize..6,
        l in 1usize..9,
        seed in 0u64..10_000,
    ) {
        let p = Predictor::new(PredictorConfig::default());
        let (x, dev) = inputs(b, l, seed);
        let fast = p.predict_batch(x.clone(), dev.clone()).unwrap();
        let taped = p.predict_batch_taped(x, dev).unwrap();
        // Exact equality: same kernels, same order, same bits.
        prop_assert_eq!(fast, taped);
    }

    #[test]
    fn forward_only_latents_match_taped_bit_for_bit(
        b in 1usize..4,
        l in 1usize..9,
        seed in 0u64..10_000,
    ) {
        let p = Predictor::new(PredictorConfig::default());
        let (x, dev) = inputs(b, l, seed);
        let fast = p.latent_batch(x.clone(), dev.clone()).unwrap();
        let mut g = Graph::new();
        let out = p.forward(&mut g, x, dev).unwrap();
        let z = Exec::value(&g, out.latent);
        let d = z.shape()[1];
        let taped: Vec<Vec<f64>> = z
            .data()
            .chunks(d)
            .map(|row| row.iter().map(|&v| v as f64).collect())
            .collect();
        prop_assert_eq!(fast, taped);
    }

    #[test]
    fn planned_path_matches_both_executors_bit_for_bit(
        b in 1usize..6,
        l in 1usize..9,
        seed in 0u64..10_000,
        head_idx in 0usize..3,
    ) {
        // Head count changes the attention split/merge topology the plan
        // records, so sweep it alongside leaf count and batch size.
        let p = Predictor::new(PredictorConfig {
            heads: [1usize, 2, 4][head_idx],
            ..PredictorConfig::default()
        });
        let (x, dev) = inputs(b, l, seed);
        let mut runner = PlanRunner::new();
        let planned = p.predict_planned(&mut runner, &x, &dev).unwrap();
        let fast = p.predict_batch(x.clone(), dev.clone()).unwrap();
        let taped = p.predict_batch_taped(x.clone(), dev.clone()).unwrap();
        prop_assert_eq!(&planned, &fast, "plan vs InferCtx");
        prop_assert_eq!(&fast, &taped, "InferCtx vs tape");

        // Fourth executor column: the batch-specialized plan. Register
        // the batch size as a class on a frozen handle and replay the
        // shape-final fold (prepacked weight GEMMs, fixed arena).
        let shared = p.share();
        prop_assert!(shared.register_batch_class(b));
        let mut spec_runner = PlanRunner::new();
        let spec = shared.predict_planned(&mut spec_runner, &x, &dev).unwrap();
        prop_assert!(freeze_close(&spec, &planned), "specialized vs generic plan");
        prop_assert_eq!(spec_runner.spec_exec_count(), 1, "class batch must route specialized");
        // An off-class batch size falls back to the generic plan and
        // still matches the tape.
        let b2 = b + 1;
        let (x2, dev2) = inputs(b2, l, seed ^ 0x5bd1);
        let off_class = shared.predict_planned(&mut spec_runner, &x2, &dev2).unwrap();
        let taped2 = p.predict_batch_taped(x2.clone(), dev2.clone()).unwrap();
        prop_assert!(freeze_close(&off_class, &taped2), "off-class fallback vs tape");

        // Fifth executor column: plans restored from snapshot bytes —
        // generic plan re-validated from its descriptor, specialized plan
        // re-folded from it — replayed by a model that never saw the
        // recorder.
        let model = TrainedModel {
            predictor: p,
            transform: TransformKind::None.fit(&[1.0, 2.0, 3.0]),
            scaler: FeatScaler::identity(),
            use_pe: true,
            train_config: TrainConfig::default(),
        };
        let bytes = Snapshot::capture(&model, &[l])
            .unwrap()
            .with_batch_classes(&[b])
            .unwrap()
            .to_bytes();
        let loaded = InferenceModel::from_snapshot_bytes(&bytes).unwrap();
        prop_assert_eq!(loaded.predictor.specialized_plans(), vec![(l, b)]);
        let mut cold_runner = PlanRunner::new();
        let from_file = loaded
            .predictor
            .predict_planned(&mut cold_runner, &x, &dev)
            .unwrap();
        // Frozen vs frozen: `capture` quantizes exactly like `share`, so
        // the restored model matches the live frozen handle bitwise even
        // under a forced quant mode.
        prop_assert_eq!(&from_file, &spec, "snapshot-restored specialized vs live frozen plan");
        prop_assert_eq!(cold_runner.spec_exec_count(), 1, "class batch must route specialized");
        let from_file_off = loaded
            .predictor
            .predict_planned(&mut cold_runner, &x2, &dev2)
            .unwrap();
        prop_assert_eq!(
            &from_file_off,
            &off_class,
            "snapshot-restored generic fallback vs live frozen fallback"
        );
        prop_assert_eq!(loaded.predictor.plan_compile_count(), 0, "load must not record");
    }

    #[test]
    fn planned_latents_match_taped_bit_for_bit(
        b in 1usize..4,
        l in 1usize..9,
        seed in 0u64..10_000,
    ) {
        let p = Predictor::new(PredictorConfig::default());
        let shared = p.share();
        let (x, dev) = inputs(b, l, seed);
        let mut runner = PlanRunner::new();
        let planned = shared.latent_planned(&mut runner, &x, &dev).unwrap();
        let mut g = Graph::new();
        let out = p.forward(&mut g, x, dev).unwrap();
        let z = Exec::value(&g, out.latent);
        let d = z.shape()[1];
        let taped: Vec<Vec<f64>> = z
            .data()
            .chunks(d)
            .map(|row| row.iter().map(|&v| v as f64).collect())
            .collect();
        prop_assert!(freeze_close_rows(&planned, &taped), "frozen planned latents vs tape");
    }

    #[test]
    fn warmed_plan_runner_allocates_nothing_per_batch(
        seeds in proptest::collection::vec(0u64..10_000, 4..8),
    ) {
        // A serving thread's runner over a stream of recurring batch
        // shapes: after one warmup pass the arena counter must freeze.
        let p = Predictor::new(PredictorConfig::default());
        let shared = p.share();
        let mut runner = PlanRunner::new();
        let shapes: Vec<(usize, usize)> = seeds
            .iter()
            .map(|&s| (1 + (s as usize) % 4, 1 + (s as usize) % 8))
            .collect();
        for &(b, l) in &shapes {
            let (x, dev) = inputs(b, l, 1);
            shared.predict_planned(&mut runner, &x, &dev).unwrap();
        }
        let warmed = runner.alloc_count();
        for (i, &(b, l)) in shapes.iter().enumerate() {
            let (x, dev) = inputs(b, l, seeds[i]);
            let planned = shared.predict_planned(&mut runner, &x, &dev).unwrap();
            let taped = p.predict_batch_taped(x, dev).unwrap();
            prop_assert!(freeze_close(&planned, &taped), "frozen planned vs tape");
        }
        prop_assert_eq!(
            runner.alloc_count(),
            warmed,
            "steady-state replay must not allocate"
        );
    }

    #[test]
    fn reused_context_stays_bit_identical_across_batches(
        seeds in proptest::collection::vec(0u64..10_000, 3..8),
    ) {
        // One shared context across a stream of batches with varying leaf
        // counts — recycled buffers must never change results.
        let p = Predictor::new(PredictorConfig::default());
        let shared = p.share();
        let mut ctx = InferCtx::new(shared.params());
        for (i, &seed) in seeds.iter().enumerate() {
            let l = 1 + (seed as usize + i) % 8;
            let b = 1 + (seed as usize) % 4;
            let (x, dev) = inputs(b, l, seed);
            let reused = shared.predict_with(&mut ctx, x.clone(), dev.clone()).unwrap();
            let taped = p.predict_batch_taped(x, dev).unwrap();
            prop_assert!(freeze_close(&reused, &taped), "frozen reused ctx vs tape");
        }
    }
}

/// PE on/off flows through the feature encoding into both serving paths:
/// the frozen model (compiled plans) must agree exactly with the
/// training-side model (forward-only `InferCtx`) on real encoded programs.
#[test]
fn planned_serving_matches_infer_ctx_serving_with_and_without_pe() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tir::{lower, sample_schedule, OpSpec};

    let mut rng = StdRng::seed_from_u64(21);
    let nest = OpSpec::Dense {
        m: 64,
        n: 64,
        k: 64,
    }
    .canonical_nest();
    let progs: Vec<_> = (0..12)
        .map(|_| lower(&nest, &sample_schedule(&nest, &mut rng)).unwrap())
        .collect();
    let refs: Vec<&tir::TensorProgram> = progs.iter().collect();
    let dev = devsim::t4();
    for use_pe in [false, true] {
        let model = TrainedModel {
            predictor: Predictor::new(PredictorConfig::default()),
            transform: TransformKind::None.fit(&[1.0, 2.0, 3.0]),
            scaler: FeatScaler::identity(),
            use_pe,
            train_config: TrainConfig::default(),
        };
        let enc = encode_programs(&refs, &dev, model.predictor.config().theta, use_pe);
        // Training-side path: InferCtx. Frozen path: compiled plans.
        let via_ctx = model.predict_samples(&enc);
        let via_plan = model.freeze().predict_samples(&enc).unwrap();
        assert!(
            freeze_close(&via_ctx, &via_plan),
            "use_pe = {use_pe}: {via_ctx:?} vs {via_plan:?}"
        );
        assert!(via_plan.iter().all(|v| v.is_finite()));
    }
}
