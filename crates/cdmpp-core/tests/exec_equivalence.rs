//! Property test: the forward-only inference path must be **bit-identical**
//! to the taped (autodiff) forward pass, for every leaf count the predictor
//! supports, for both predictions and latents, and for arbitrary inputs.

use cdmpp_core::{Predictor, PredictorConfig};
use features::{N_DEVICE_FEATURES, N_ENTRY};
use nn::{Exec, Graph, InferCtx};
use proptest::prelude::*;
use tensor::Tensor;

fn inputs(b: usize, l: usize, seed: u64) -> (Tensor, Tensor) {
    // Deterministic pseudo-random inputs spanning a wide value range.
    let gen = |i: usize, salt: u64| -> f32 {
        let h = (i as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(seed ^ salt)
            .wrapping_mul(0xBF58476D1CE4E5B9);
        ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 4.0
    };
    let x = Tensor::from_fn(&[b, l, N_ENTRY], |i| gen(i, 0xA5));
    let dev = Tensor::from_fn(&[b, N_DEVICE_FEATURES], |i| gen(i, 0x5A));
    (x, dev)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forward_only_predictions_match_taped_bit_for_bit(
        b in 1usize..6,
        l in 1usize..9,
        seed in 0u64..10_000,
    ) {
        let p = Predictor::new(PredictorConfig::default());
        let (x, dev) = inputs(b, l, seed);
        let fast = p.predict_batch(x.clone(), dev.clone()).unwrap();
        let taped = p.predict_batch_taped(x, dev).unwrap();
        // Exact equality: same kernels, same order, same bits.
        prop_assert_eq!(fast, taped);
    }

    #[test]
    fn forward_only_latents_match_taped_bit_for_bit(
        b in 1usize..4,
        l in 1usize..9,
        seed in 0u64..10_000,
    ) {
        let p = Predictor::new(PredictorConfig::default());
        let (x, dev) = inputs(b, l, seed);
        let fast = p.latent_batch(x.clone(), dev.clone()).unwrap();
        let mut g = Graph::new();
        let out = p.forward(&mut g, x, dev).unwrap();
        let z = Exec::value(&g, out.latent);
        let d = z.shape()[1];
        let taped: Vec<Vec<f64>> = z
            .data()
            .chunks(d)
            .map(|row| row.iter().map(|&v| v as f64).collect())
            .collect();
        prop_assert_eq!(fast, taped);
    }

    #[test]
    fn reused_context_stays_bit_identical_across_batches(
        seeds in proptest::collection::vec(0u64..10_000, 3..8),
    ) {
        // One shared context across a stream of batches with varying leaf
        // counts — recycled buffers must never change results.
        let p = Predictor::new(PredictorConfig::default());
        let shared = p.share();
        let mut ctx = InferCtx::new(shared.params());
        for (i, &seed) in seeds.iter().enumerate() {
            let l = 1 + (seed as usize + i) % 8;
            let b = 1 + (seed as usize) % 4;
            let (x, dev) = inputs(b, l, seed);
            let reused = shared.predict_with(&mut ctx, x.clone(), dev.clone()).unwrap();
            let taped = p.predict_batch_taped(x, dev).unwrap();
            prop_assert_eq!(reused, taped);
        }
    }
}
