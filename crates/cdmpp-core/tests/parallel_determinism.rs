//! The data-parallel trainer's determinism contract: a fixed seed produces
//! **bit-identical weights for every thread count**, because the gradient
//! shard partition and the tree-reduction order depend only on the batch —
//! never on how many workers execute the shards.
//!
//! The suite runs under whatever SIMD micro-kernel tier the host selects
//! (AVX2+FMA, NEON, or scalar) — the tiers are bit-identical to the scalar
//! oracle by construction (`tensor`'s `simd_bit_identity` suite), so the
//! contract holds with SIMD on. CI re-runs everything with
//! `CDMPP_SIMD=scalar` to pin the oracle side.

use cdmpp_core::{
    encode_records, make_batches, pretrain, train_step, train_step_parallel, LossKind, Predictor,
    PredictorConfig, TrainConfig,
};
use dataset::{Dataset, GenConfig, SplitIndices};
use nn::Adam;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tir::zoo;

fn small_setup() -> (Dataset, SplitIndices) {
    let ds = Dataset::generate_with_networks(
        GenConfig {
            batch: 1,
            schedules_per_task: 4,
            devices: vec![devsim::t4()],
            seed: 5,
            noise_sigma: 0.0,
        },
        vec![zoo::bert_tiny(1), zoo::mlp_mixer(1)],
    );
    let split = SplitIndices::for_device(&ds, "T4", &[], 1);
    (ds, split)
}

fn train_with_threads(ds: &Dataset, split: &SplitIndices, threads: usize) -> Predictor {
    let pcfg = PredictorConfig {
        d_model: 16,
        n_layers: 1,
        d_ff: 32,
        d_emb: 12,
        ..Default::default()
    };
    let tcfg = TrainConfig {
        epochs: 3,
        threads,
        ..Default::default()
    };
    let (model, _) = pretrain(ds, &split.train, &split.valid, pcfg, tcfg);
    model.predictor
}

#[test]
fn same_seed_any_thread_count_identical_weights() {
    let (ds, split) = small_setup();
    let base = train_with_threads(&ds, &split, 1);
    for threads in [2usize, 5] {
        let other = train_with_threads(&ds, &split, threads);
        assert_eq!(base.store.len(), other.store.len());
        for id in base.store.ids() {
            assert_eq!(
                base.store.value(id).data(),
                other.store.value(id).data(),
                "parameter {:?} diverged with {threads} threads",
                base.store.name(id)
            );
        }
        // And therefore identical predictions.
        let test = &split.test[..8.min(split.test.len())];
        let enc = encode_records(&ds, test, base.config().theta, true);
        let refs: Vec<_> = enc.iter().collect();
        let batch = cdmpp_core::build_batch(&refs[..1]);
        let a = base
            .predict_batch(batch.x.clone(), batch.dev.clone())
            .unwrap();
        let b = other.predict_batch(batch.x, batch.dev).unwrap();
        assert_eq!(a, b);
    }
}

#[test]
fn single_shard_parallel_step_is_bitwise_equal_to_serial_step() {
    let (ds, _) = small_setup();
    let idx = ds.device_records("T4");
    let enc = encode_records(&ds, &idx, features::DEFAULT_THETA, true);
    let mut rng = StdRng::seed_from_u64(3);
    // Batch of at most 16 rows = exactly one gradient shard.
    let batches = make_batches(&enc, 12, &mut rng);
    let batch = batches.first().expect("non-empty").clone();
    let y: Vec<f32> = batch.y_raw.iter().map(|&v| (v * 1e3) as f32).collect();
    assert!(y.len() <= 16, "batch must fit one shard for this test");

    let pcfg = PredictorConfig {
        d_model: 16,
        n_layers: 1,
        d_ff: 32,
        d_emb: 12,
        ..Default::default()
    };
    let mut serial = Predictor::new(pcfg.clone());
    let mut parallel_p = Predictor::new(pcfg);
    let mut opt_a = Adam::new(1e-3);
    let mut opt_b = Adam::new(1e-3);
    let pool = parallel::ThreadPool::new(3);
    for _ in 0..4 {
        let la = train_step(&mut serial, &mut opt_a, &batch, &y, LossKind::Hybrid, 1e-3);
        let lb = train_step_parallel(
            &mut parallel_p,
            &mut opt_b,
            &batch,
            &y,
            LossKind::Hybrid,
            1e-3,
            &pool,
        );
        assert_eq!(la, lb, "losses must match bit-for-bit");
    }
    for id in serial.store.ids() {
        assert_eq!(
            serial.store.value(id).data(),
            parallel_p.store.value(id).data(),
            "weights diverged at {:?}",
            serial.store.name(id)
        );
    }
}
