//! End-to-end properties of the quantized serving path.
//!
//! * Quantized snapshots (i8 / bf16) must round trip canonically
//!   (`save(load(x)) == x`), serve **bit-identically** to an in-process
//!   quantized freeze, shrink both the file and the resident serving
//!   weights, and never trigger plan recording.
//! * Quantization accuracy is gated: predictions from a quantized freeze
//!   must stay within a small relative delta of the f32 model's.
//! * The quantized section is tier-independent: a snapshot saved on an
//!   AVX2 host must serve bit-identically in a process forced to the
//!   scalar kernel tier (panels are packed per-tier on load, from the
//!   same canonical blob).
//! * Hostile quantized sections — truncated blobs, zero or absurd
//!   scales, unknown kinds, length mismatches, out-of-range or
//!   non-ascending parameter indices, duplicated or reordered sections —
//!   must come back as typed [`SnapshotError`]s before any
//!   attacker-sized allocation.

use cdmpp_core::batch::{EncodedSample, FeatScaler};
use cdmpp_core::{
    InferenceModel, Predictor, PredictorConfig, Snapshot, SnapshotError, TrainConfig, TrainedModel,
};
use features::{N_DEVICE_FEATURES, N_ENTRY};
use learn::TransformKind;
use tensor::{QuantKind, QuantMode};

fn tiny_config(seed: u64) -> PredictorConfig {
    PredictorConfig {
        d_model: 16,
        n_layers: 1,
        heads: 2,
        d_ff: 32,
        d_emb: 12,
        d_dev: 8,
        dec_hidden: 16,
        dec_layers: 1,
        max_leaves: 4,
        seed,
        ..Default::default()
    }
}

fn model_with(seed: u64) -> TrainedModel {
    TrainedModel {
        predictor: Predictor::new(tiny_config(seed)),
        transform: TransformKind::None.fit(&[0.4e-3, 1.1e-3, 2.5e-3, 7.0e-3, 1.9e-2]),
        scaler: FeatScaler::identity(),
        use_pe: true,
        train_config: TrainConfig::default(),
    }
}

fn sample(leaves: usize, seed: usize) -> EncodedSample {
    EncodedSample {
        record_idx: seed,
        leaf_count: leaves,
        x: (0..leaves * N_ENTRY)
            .map(|i| ((i + 7 * seed) as f32 * 0.173).sin())
            .collect(),
        dev: [0.3; N_DEVICE_FEATURES],
        y_raw: 1e-3,
    }
}

fn samples(n: usize) -> Vec<EncodedSample> {
    (0..n).map(|i| sample(1 + i % 4, i)).collect()
}

// ---------------------------------------------------------------------------
// Round trip, bit-identity, and footprint
// ---------------------------------------------------------------------------

#[test]
fn quantized_snapshots_round_trip_canonically_and_serve_bitwise() {
    let enc = samples(12);
    let f32_bytes = {
        let model = model_with(31);
        Snapshot::capture_quantized(&model, &[1, 2, 3, 4], QuantMode::F32)
            .unwrap()
            .to_bytes()
    };
    for (mode, kind) in [
        (QuantMode::I8, QuantKind::I8),
        (QuantMode::Bf16, QuantKind::Bf16),
    ] {
        let model = model_with(31);
        let snap = Snapshot::capture_quantized(&model, &[1, 2, 3, 4], mode)
            .unwrap()
            .with_batch_classes(&[1, 4])
            .unwrap();
        assert!(
            !snap.quants.is_empty(),
            "{mode:?}: rank-2 params must quantize"
        );
        let bytes = snap.to_bytes();
        assert!(
            bytes.windows(7).any(|w| w == b"\"quant\""),
            "{mode:?}: header must carry the quant section"
        );
        assert!(
            bytes.len() < f32_bytes.len(),
            "{mode:?}: file must shrink ({} vs f32's {})",
            bytes.len(),
            f32_bytes.len()
        );

        let loaded = InferenceModel::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(loaded.predictor.quant_kind(), Some(kind));
        assert_eq!(
            loaded.predictor.plan_compile_count(),
            0,
            "load must not record"
        );

        // In-process quantized freeze and the loaded file share the same
        // canonical blobs, so every prediction matches bit-for-bit.
        let frozen = model.freeze_quantized(mode);
        let from_file = loaded.predict_samples(&enc).unwrap();
        assert_eq!(
            from_file,
            frozen.predict_samples(&enc).unwrap(),
            "{mode:?}: loaded vs frozen"
        );

        // Canonical bytes: the blob is re-emitted verbatim, never
        // re-quantized, so save(load(x)) == x.
        assert_eq!(
            Snapshot::from_inference(&loaded).to_bytes(),
            bytes,
            "{mode:?}"
        );
    }
}

#[test]
fn quantized_serving_weights_shrink() {
    let enc = samples(8);
    let mut resident = Vec::new();
    for mode in [QuantMode::F32, QuantMode::Bf16, QuantMode::I8] {
        let model = model_with(32);
        let frozen = model.freeze_quantized(mode);
        // Serve once so the weight-pack cache is populated in every mode.
        frozen.predict_samples(&enc).unwrap();
        resident.push(frozen.predictor.serving_weights_bytes());
    }
    let (f32b, bf16b, i8b) = (resident[0], resident[1], resident[2]);
    assert!(
        bf16b < f32b,
        "bf16 resident {bf16b} must shrink vs f32 {f32b}"
    );
    assert!(i8b < bf16b, "i8 resident {i8b} must shrink vs bf16 {bf16b}");
}

#[test]
fn pre_quantization_snapshots_carry_no_quant_section() {
    let model = model_with(33);
    let snap = Snapshot::capture_quantized(&model, &[1, 2], QuantMode::F32).unwrap();
    assert!(snap.quants.is_empty());
    let bytes = snap.to_bytes();
    assert!(
        !bytes.windows(7).any(|w| w == b"\"quant\""),
        "empty quant section must be omitted from the header"
    );
    // And the classic path is untouched: load, serve, reserialize.
    let loaded = InferenceModel::from_snapshot_bytes(&bytes).unwrap();
    assert_eq!(loaded.predictor.quant_kind(), None);
    assert_eq!(Snapshot::from_inference(&loaded).to_bytes(), bytes);
}

// ---------------------------------------------------------------------------
// Accuracy gate
// ---------------------------------------------------------------------------

/// Mean relative prediction delta of a quantized freeze vs the f32 model.
fn accuracy_delta(mode: QuantMode, enc: &[EncodedSample]) -> f64 {
    let model = model_with(34);
    let exact = model
        .freeze_quantized(QuantMode::F32)
        .predict_samples(enc)
        .unwrap();
    let quant = model.freeze_quantized(mode).predict_samples(enc).unwrap();
    let sum: f64 = exact
        .iter()
        .zip(&quant)
        .map(|(&e, &q)| (q - e).abs() / e.abs().max(1e-6))
        .sum();
    sum / exact.len() as f64
}

#[test]
fn quantized_accuracy_stays_within_gate() {
    let enc = samples(32);
    let i8_delta = accuracy_delta(QuantMode::I8, &enc);
    let bf16_delta = accuracy_delta(QuantMode::Bf16, &enc);
    assert!(
        i8_delta <= 0.05,
        "i8 mean relative delta {i8_delta} above 5% gate"
    );
    assert!(
        bf16_delta <= 0.01,
        "bf16 mean relative delta {bf16_delta} above 1% gate"
    );
    assert!(
        bf16_delta <= i8_delta,
        "bf16 ({bf16_delta}) must not be less accurate than i8 ({i8_delta})"
    );
}

// ---------------------------------------------------------------------------
// Cross-tier repack: saved on AVX2, served under the scalar tier
// ---------------------------------------------------------------------------

#[test]
fn quantized_snapshot_serves_bit_identically_across_kernel_tiers() {
    // Child mode: forced to the scalar tier by the parent, load the
    // snapshot, predict, and dump the exact prediction bits.
    if let Ok(out_path) = std::env::var("CDMPP_CROSS_TIER_OUT") {
        let snap_path = std::env::var("CDMPP_CROSS_TIER_SNAP").unwrap();
        let loaded = InferenceModel::from_snapshot_file(&snap_path).unwrap();
        let preds = loaded.predict_samples(&samples(10)).unwrap();
        let dump: String = preds
            .iter()
            .map(|v| format!("{:016x}\n", v.to_bits()))
            .collect();
        std::fs::write(out_path, dump).unwrap();
        return;
    }

    let dir = std::env::temp_dir().join(format!("cdmpp_quant_xtier_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("quant.cdmppsnap");
    let out_path = dir.join("scalar_preds.txt");

    let model = model_with(35);
    Snapshot::capture_quantized(&model, &[1, 2, 3, 4], QuantMode::I8)
        .unwrap()
        .with_batch_classes(&[1, 4])
        .unwrap()
        .save(&snap_path)
        .unwrap();
    let enc = samples(10);
    // Served under this process's native tier (AVX2 where available):
    // panels are packed from the file's canonical blob on load.
    let native = InferenceModel::from_snapshot_file(&snap_path)
        .unwrap()
        .predict_samples(&enc)
        .unwrap();

    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .args([
            "quantized_snapshot_serves_bit_identically_across_kernel_tiers",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("CDMPP_SIMD", "scalar")
        .env("CDMPP_CROSS_TIER_SNAP", &snap_path)
        .env("CDMPP_CROSS_TIER_OUT", &out_path)
        .status()
        .unwrap();
    assert!(status.success(), "scalar-tier child process failed");

    let dump = std::fs::read_to_string(&out_path).unwrap();
    let scalar: Vec<f64> = dump
        .lines()
        .map(|l| f64::from_bits(u64::from_str_radix(l, 16).unwrap()))
        .collect();
    assert_eq!(
        scalar, native,
        "scalar-tier serving must be bit-identical to the native tier"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Hostile quantized sections
// ---------------------------------------------------------------------------

fn quant_snap() -> Snapshot {
    let model = model_with(36);
    Snapshot::capture_quantized(&model, &[1, 2], QuantMode::I8)
        .unwrap()
        .with_batch_classes(&[1, 4])
        .unwrap()
}

/// Splits a snapshot file into its JSON header and binary blob, applies
/// `f` to the JSON, and reassembles a structurally valid file around the
/// mutated header (length prefix recomputed).
fn mutate_header(bytes: &[u8], f: impl FnOnce(&str) -> String) -> Vec<u8> {
    let header_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let json = f(std::str::from_utf8(&bytes[20..20 + header_len]).unwrap());
    let mut out = bytes[..12].to_vec();
    out.extend_from_slice(&(json.len() as u64).to_le_bytes());
    out.extend_from_slice(json.as_bytes());
    out.extend_from_slice(&bytes[20 + header_len..]);
    out
}

/// Byte span of the top-level `,"<key>":[...]` header section, found by
/// bracket matching (string contents skipped).
fn section_span(json: &str, key: &str) -> std::ops::Range<usize> {
    let pat = format!(",\"{key}\":[");
    let start = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} section"));
    let b = json.as_bytes();
    let mut depth = 0usize;
    let mut i = start + pat.len() - 1;
    loop {
        match b[i] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return start..i + 1;
                }
            }
            b'"' => {
                i += 1;
                while b[i] != b'"' {
                    i += if b[i] == b'\\' { 2 } else { 1 };
                }
            }
            _ => {}
        }
        i += 1;
    }
}

#[test]
fn truncated_quant_blob_is_a_typed_error() {
    let bytes = quant_snap().to_bytes();
    // Cutting anywhere inside the trailing quantized blobs must surface
    // as a truncation, detected before any decode allocation.
    for cut in [bytes.len() - 1, bytes.len() - 7] {
        assert!(
            matches!(
                Snapshot::from_bytes(&bytes[..cut]).unwrap_err(),
                SnapshotError::Truncated { .. }
            ),
            "cut at {cut}"
        );
    }
    let mut longer = bytes;
    longer.extend_from_slice(&[0u8; 5]);
    assert_eq!(
        Snapshot::from_bytes(&longer).unwrap_err(),
        SnapshotError::TrailingBytes { extra: 5 }
    );
}

#[test]
fn hostile_quant_scales_and_kinds_are_typed_errors() {
    let bytes = quant_snap().to_bytes();

    // First scale forced to zero: dequantization would collapse columns.
    let zeroed = mutate_header(&bytes, |json| {
        let at = json.find("\"scales\":[").unwrap() + "\"scales\":[".len();
        let end = at + json[at..].find([',', ']']).unwrap();
        format!("{}0.0{}", &json[..at], &json[end..])
    });
    assert!(
        matches!(
            Snapshot::from_bytes(&zeroed).unwrap_err(),
            SnapshotError::Param { .. }
        ),
        "zero scale must be rejected"
    );

    // Absurd scale: numerically finite but far outside any real weight's
    // dynamic range — a corrupt or adversarial file, not a model.
    let absurd = mutate_header(&bytes, |json| {
        let at = json.find("\"scales\":[").unwrap() + "\"scales\":[".len();
        let end = at + json[at..].find([',', ']']).unwrap();
        format!("{}1e38{}", &json[..at], &json[end..])
    });
    assert!(
        matches!(
            Snapshot::from_bytes(&absurd).unwrap_err(),
            SnapshotError::Param { .. }
        ),
        "absurd scale must be rejected"
    );

    // NaN scale is not valid JSON for this format: a typed header error.
    let nan = mutate_header(&bytes, |json| {
        let at = json.find("\"scales\":[").unwrap() + "\"scales\":[".len();
        let end = at + json[at..].find([',', ']']).unwrap();
        format!("{}NaN{}", &json[..at], &json[end..])
    });
    assert!(
        matches!(
            Snapshot::from_bytes(&nan).unwrap_err(),
            SnapshotError::Header(_)
        ),
        "NaN scale must fail header parsing"
    );

    // Unknown storage kind.
    let unknown = mutate_header(&bytes, |json| {
        json.replacen("\"kind\":\"i8\"", "\"kind\":\"i4\"", 1)
    });
    assert!(
        matches!(
            Snapshot::from_bytes(&unknown).unwrap_err(),
            SnapshotError::Param { .. }
        ),
        "unknown kind must be rejected"
    );

    // Wrong scale count for the declared kind and width: drop the first
    // scale (and its comma when the array has more).
    let fewer = mutate_header(&bytes, |json| {
        let at = json.find("\"scales\":[").unwrap() + "\"scales\":[".len();
        let rel = at + json[at..].find([',', ']']).unwrap();
        let end = if json.as_bytes()[rel] == b',' {
            rel + 1
        } else {
            rel
        };
        format!("{}{}", &json[..at], &json[end..])
    });
    assert!(
        matches!(
            Snapshot::from_bytes(&fewer).unwrap_err(),
            SnapshotError::Param { .. }
        ),
        "scale-count mismatch must be rejected"
    );
}

#[test]
fn hostile_quant_entries_are_typed_errors() {
    let good = quant_snap();
    assert!(
        good.quants.len() >= 2,
        "model must have several rank-2 params"
    );

    // Non-ascending parameter indices break canonicality.
    let mut snap = good.clone();
    snap.quants.swap(0, 1);
    assert!(matches!(
        Snapshot::from_bytes(&snap.to_bytes()).unwrap_err(),
        SnapshotError::Header(_)
    ));

    // Out-of-range parameter index.
    let mut snap = good.clone();
    let last = snap.quants.len() - 1;
    snap.quants[last].param = snap.params.len();
    assert!(matches!(
        Snapshot::from_bytes(&snap.to_bytes()).unwrap_err(),
        SnapshotError::Header(_)
    ));

    // Entry pointed at a non-rank-2 parameter (a bias vector).
    let mut snap = good.clone();
    let bias_idx = snap
        .params
        .iter()
        .position(|p| p.shape.len() != 2)
        .expect("model has bias params");
    let mut moved = snap.quants.remove(0);
    moved.param = bias_idx;
    snap.quants = vec![moved];
    assert!(matches!(
        Snapshot::from_bytes(&snap.to_bytes()).unwrap_err(),
        SnapshotError::Param { .. }
    ));

    // Hand-built snapshot whose matrix shape disagrees with its
    // parameter's: typed error on load, not a set_quant panic.
    let mut snap = good.clone();
    let wrong = snap.quants[1].matrix.clone();
    assert_ne!(
        (wrong.k(), wrong.n()),
        (snap.quants[0].matrix.k(), snap.quants[0].matrix.n()),
        "first two quantized params must differ in shape for this test"
    );
    snap.quants[0].matrix = wrong;
    snap.quants.truncate(1);
    assert!(matches!(
        InferenceModel::from_snapshot(&snap).err().unwrap(),
        SnapshotError::Param { .. }
    ));

    // More quant entries than parameters (duplicate declarations can
    // never reach here because of the ascending check; the count cap is
    // the backstop before any per-entry work).
    let mut snap = good.clone();
    let extra: Vec<_> = snap.quants.to_vec();
    snap.quants.extend(extra);
    let err = Snapshot::from_bytes(&snap.to_bytes()).unwrap_err();
    assert!(
        matches!(err, SnapshotError::Limit { .. } | SnapshotError::Header(_)),
        "unexpected {err:?}"
    );
}

#[test]
fn quant_section_order_and_duplication_are_enforced() {
    let bytes = quant_snap().to_bytes();

    // `quant` must follow `spec_plans`: the canonical order is the only
    // accepted one, so equal headers always have equal bytes.
    let reordered = mutate_header(&bytes, |json| {
        let spec = section_span(json, "spec_plans");
        let quant = section_span(json, "quant");
        assert!(spec.end <= quant.start, "canonical file has spec first");
        let spec_txt = json[spec.clone()].to_string();
        let quant_txt = json[quant.clone()].to_string();
        format!(
            "{}{}{}{}{}",
            &json[..spec.start],
            quant_txt,
            &json[spec.end..quant.start],
            spec_txt,
            &json[quant.end..]
        )
    });
    assert!(matches!(
        Snapshot::from_bytes(&reordered).unwrap_err(),
        SnapshotError::Header(_)
    ));

    // A duplicated quant section is rejected, not last-one-wins.
    let duplicated = mutate_header(&bytes, |json| {
        let quant = section_span(json, "quant");
        let quant_txt = json[quant.clone()].to_string();
        format!("{}{}{}", &json[..quant.end], quant_txt, &json[quant.end..])
    });
    assert!(matches!(
        Snapshot::from_bytes(&duplicated).unwrap_err(),
        SnapshotError::Header(_)
    ));
}

#[test]
fn quant_blob_that_does_not_match_f32_weights_is_rejected_on_load() {
    // A decoded file is consistent by construction (the f32 numbers are
    // reconstructed from the blob), so the inconsistency can only be
    // hand-built: a snapshot whose f32 data drifted from the blob's
    // dequantization must be rejected, never served with ambiguous
    // weights.
    let mut snap = quant_snap();
    let p = snap.quants[0].param;
    snap.params[p].data[0] += 1.0;
    assert!(matches!(
        InferenceModel::from_snapshot(&snap).err().unwrap(),
        SnapshotError::Param { .. }
    ));

    // And flipping a byte inside a quantized blob on disk changes the
    // model's weights coherently rather than desynchronizing them: the
    // file still decodes, still loads, and still reserializes to exactly
    // the corrupted bytes (canonical even for corrupt-but-valid files).
    let bytes = quant_snap().to_bytes();
    let mut corrupt = bytes.clone();
    let n = corrupt.len();
    corrupt[n - 1] = corrupt[n - 1].wrapping_add(1);
    let loaded = InferenceModel::from_snapshot_bytes(&corrupt).unwrap();
    assert_eq!(Snapshot::from_inference(&loaded).to_bytes(), corrupt);
}
