//! Snapshot round-trip and adversarial-decode properties.
//!
//! * save → load → `predict_planned` must be **bit-identical** to the
//!   in-memory model, across leaf counts, head counts, PE on/off, batch
//!   sizes, and label-transform kinds — and loading must perform **zero**
//!   plan recordings when the file carries plans.
//! * `save(load(x))` must reproduce `x`'s bytes exactly (the format is
//!   canonical).
//! * Malformed files — truncations, flipped magic, future versions,
//!   out-of-range plan indices, NaN or length-mismatched weight sections,
//!   attacker-sized declared lengths — must come back as typed
//!   [`SnapshotError`]s: never a panic, never an unbounded allocation.

use cdmpp_core::batch::{EncodedSample, FeatScaler};
use cdmpp_core::{
    InferenceModel, Predictor, PredictorConfig, Snapshot, SnapshotError, TrainConfig, TrainedModel,
};
use features::{N_DEVICE_FEATURES, N_ENTRY};
use learn::TransformKind;
use proptest::prelude::*;

fn tiny_config(heads: usize, seed: u64) -> PredictorConfig {
    PredictorConfig {
        d_model: 16,
        n_layers: 1,
        heads,
        d_ff: 32,
        d_emb: 12,
        d_dev: 8,
        dec_hidden: 16,
        dec_layers: 1,
        max_leaves: 4,
        seed,
        ..Default::default()
    }
}

fn model_with(cfg: PredictorConfig, use_pe: bool, transform: TransformKind) -> TrainedModel {
    TrainedModel {
        predictor: Predictor::new(cfg),
        transform: transform.fit(&[0.4e-3, 1.1e-3, 2.5e-3, 7.0e-3, 1.9e-2]),
        scaler: FeatScaler::identity(),
        use_pe,
        train_config: TrainConfig::default(),
    }
}

fn sample(leaves: usize, seed: usize) -> EncodedSample {
    EncodedSample {
        record_idx: seed,
        leaf_count: leaves,
        x: (0..leaves * N_ENTRY)
            .map(|i| ((i + 7 * seed) as f32 * 0.173).sin())
            .collect(),
        dev: [0.3; N_DEVICE_FEATURES],
        y_raw: 1e-3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn save_load_predict_is_bit_identical_and_records_nothing(
        head_idx in 0usize..3,
        pe_idx in 0usize..2,
        kind_idx in 0usize..4,
        seed in 0u64..1_000,
        n_samples in 4usize..16,
    ) {
        let kind = [
            TransformKind::BoxCox,
            TransformKind::YeoJohnson,
            TransformKind::Quantile,
            TransformKind::None,
        ][kind_idx];
        let use_pe = pe_idx == 1;
        let model = model_with(tiny_config([1, 2, 4][head_idx], seed), use_pe, kind);
        let bytes = Snapshot::capture_all(&model).unwrap().to_bytes();

        // Mixed leaf counts and batch sizes through both paths.
        let enc: Vec<EncodedSample> = (0..n_samples)
            .map(|i| sample(1 + (i + seed as usize) % 4, i))
            .collect();
        let loaded = InferenceModel::from_snapshot_bytes(&bytes).unwrap();
        let from_file = loaded.predict_samples(&enc).unwrap();
        let in_memory = model.freeze().predict_samples(&enc).unwrap();
        prop_assert_eq!(&from_file, &in_memory, "loaded plans must replay bit-identically");
        prop_assert!(from_file.iter().all(|v| v.is_finite()));

        // The file carried every plan, so serving recorded nothing.
        prop_assert_eq!(loaded.predictor.plan_compile_count(), 0);

        // Canonical bytes: re-capturing the loaded model reproduces the
        // file exactly (save(load(x)) == x).
        let again = Snapshot::from_inference(&loaded).to_bytes();
        prop_assert_eq!(again, bytes);
    }
}

fn valid_bytes() -> Vec<u8> {
    let model = model_with(tiny_config(2, 9), true, TransformKind::BoxCox);
    Snapshot::capture_all(&model).unwrap().to_bytes()
}

#[test]
fn weights_only_snapshot_compiles_plans_lazily() {
    let model = model_with(tiny_config(2, 3), true, TransformKind::None);
    let snap = Snapshot::capture(&model, &[]).unwrap();
    assert!(snap.plans.is_empty());
    let loaded = InferenceModel::from_snapshot_bytes(&snap.to_bytes()).unwrap();
    let enc = vec![sample(3, 0), sample(1, 1)];
    let got = loaded.predict_samples(&enc).unwrap();
    assert_eq!(got, model.freeze().predict_samples(&enc).unwrap());
    // No plans in the file: the two leaf counts served were recorded live.
    assert_eq!(loaded.predictor.plan_compile_count(), 2);
}

#[test]
fn partial_plan_sets_round_trip() {
    let model = model_with(tiny_config(2, 4), false, TransformKind::None);
    let snap = Snapshot::capture(&model, &[2, 4]).unwrap();
    assert_eq!(
        snap.plans.iter().map(|p| p.leaves).collect::<Vec<_>>(),
        vec![2, 4]
    );
    let loaded = InferenceModel::from_snapshot_bytes(&snap.to_bytes()).unwrap();
    let enc: Vec<EncodedSample> = (0..8).map(|i| sample(1 + i % 4, i)).collect();
    assert_eq!(
        loaded.predict_samples(&enc).unwrap(),
        model.freeze().predict_samples(&enc).unwrap()
    );
    // Leaf counts 1 and 3 had no serialized plan and were recorded live.
    assert_eq!(loaded.predictor.plan_compile_count(), 2);
}

#[test]
fn truncated_files_are_typed_errors_never_panics() {
    let bytes = valid_bytes();
    // Every prefix of the prelude + header region, then a sweep through
    // the weight section (strided to keep the test fast).
    let mut cuts: Vec<usize> = (0..64.min(bytes.len())).collect();
    cuts.extend((64..bytes.len()).step_by(997));
    cuts.push(bytes.len() - 1);
    for cut in cuts {
        let err = Snapshot::from_bytes(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. } | SnapshotError::Header(_)
            ),
            "cut at {cut}: unexpected {err:?}"
        );
    }
}

#[test]
fn flipped_magic_is_rejected() {
    let mut bytes = valid_bytes();
    bytes[0] ^= 0xFF;
    assert_eq!(
        Snapshot::from_bytes(&bytes).unwrap_err(),
        SnapshotError::BadMagic
    );
}

#[test]
fn future_format_version_is_rejected() {
    let mut bytes = valid_bytes();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert_eq!(
        Snapshot::from_bytes(&bytes).unwrap_err(),
        SnapshotError::UnsupportedVersion {
            found: 99,
            supported: cdmpp_core::snapshot::SNAPSHOT_VERSION
        }
    );
}

#[test]
fn attacker_sized_header_is_capped_before_allocation() {
    let mut bytes = valid_bytes();
    bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(&bytes).unwrap_err(),
        SnapshotError::Limit {
            what: "header length",
            ..
        }
    ));
}

#[test]
fn attacker_sized_weight_declaration_is_capped_before_allocation() {
    let model = model_with(tiny_config(2, 5), true, TransformKind::None);
    let mut snap = Snapshot::capture(&model, &[]).unwrap();
    // Declare a tensor far beyond the cap; its data is deliberately tiny,
    // so if decoding believed the shape it would try to allocate ~4 TiB.
    snap.params[0].shape = vec![1 << 20, 1 << 20];
    let err = Snapshot::from_bytes(&snap.to_bytes()).unwrap_err();
    assert!(
        matches!(err, SnapshotError::Limit { .. }),
        "unexpected {err:?}"
    );
}

#[test]
fn nan_weight_section_is_a_typed_error() {
    let model = model_with(tiny_config(2, 6), true, TransformKind::None);
    let snap = Snapshot::capture(&model, &[]).unwrap();
    let mut bytes = snap.to_bytes();
    // Overwrite the first weight with a NaN bit pattern. The weight blob
    // starts right after the JSON header.
    let header_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let at = 20 + header_len;
    bytes[at..at + 4].copy_from_slice(&f32::NAN.to_le_bytes());
    let err = Snapshot::from_bytes(&bytes).unwrap_err();
    assert!(
        matches!(err, SnapshotError::NonFinite { index: 0, .. }),
        "unexpected {err:?}"
    );
}

#[test]
fn length_mismatched_weight_sections_are_typed_errors() {
    let bytes = valid_bytes();
    // Too short: handled by the truncation test; too long:
    let mut longer = bytes.clone();
    longer.extend_from_slice(&[0u8; 3]);
    assert_eq!(
        Snapshot::from_bytes(&longer).unwrap_err(),
        SnapshotError::TrailingBytes { extra: 3 }
    );
}

#[test]
fn out_of_range_plan_slot_is_a_typed_error() {
    let model = model_with(tiny_config(2, 7), true, TransformKind::None);
    let mut snap = Snapshot::capture(&model, &[2]).unwrap();
    snap.plans[0].plan.bufs[0].slot = 10_000;
    let err = InferenceModel::from_snapshot_bytes(&snap.to_bytes())
        .err()
        .unwrap();
    assert!(
        matches!(err, SnapshotError::Plan { leaves: 2, .. }),
        "unexpected {err:?}"
    );
}

#[test]
fn plan_for_wrong_model_shape_is_rejected() {
    // A structurally valid plan recorded for leaf count 2 smuggled into
    // the leaf-3 slot: the input-shape check must catch it.
    let model = model_with(tiny_config(2, 8), true, TransformKind::None);
    let mut snap = Snapshot::capture(&model, &[2]).unwrap();
    snap.plans[0].leaves = 3;
    let err = InferenceModel::from_snapshot_bytes(&snap.to_bytes())
        .err()
        .unwrap();
    assert!(
        matches!(err, SnapshotError::Plan { leaves: 3, .. }),
        "unexpected {err:?}"
    );
}

#[test]
fn mismatched_parameter_shape_is_a_typed_error() {
    let model = model_with(tiny_config(2, 10), true, TransformKind::None);
    let mut snap = Snapshot::capture(&model, &[]).unwrap();
    // Swap two dims: byte count still matches, the architecture doesn't.
    let shape = &mut snap.params[0].shape;
    shape.reverse();
    let err = InferenceModel::from_snapshot_bytes(&snap.to_bytes())
        .err()
        .unwrap();
    assert!(
        matches!(err, SnapshotError::Param { .. }),
        "unexpected {err:?}"
    );
}

#[test]
fn hostile_config_is_capped_before_weight_allocation() {
    let model = model_with(tiny_config(2, 11), true, TransformKind::None);
    let mut snap = Snapshot::capture(&model, &[]).unwrap();
    // A config declaring a 2^60-wide model must be rejected before
    // Predictor::new would try to allocate its weights.
    snap.config.d_model = 1 << 60;
    let err = InferenceModel::from_snapshot(&snap).err().unwrap();
    assert!(matches!(err, SnapshotError::Model(_)), "unexpected {err:?}");
}

#[test]
fn heads_not_dividing_d_model_is_a_typed_error_not_a_panic() {
    let model = model_with(tiny_config(2, 13), true, TransformKind::None);
    let mut snap = Snapshot::capture(&model, &[]).unwrap();
    // Both fields individually valid; the attention layers would assert.
    snap.config.heads = 3;
    let err = InferenceModel::from_snapshot(&snap).err().unwrap();
    assert!(matches!(err, SnapshotError::Model(_)), "unexpected {err:?}");
}

#[test]
fn terabyte_scale_config_is_rejected_before_allocation() {
    let model = model_with(tiny_config(2, 15), true, TransformKind::None);
    let mut snap = Snapshot::capture(&model, &[]).unwrap();
    // Every field individually under its cap, but together they imply
    // ~terabytes of encoder weights — must be rejected before
    // Predictor::new tries to allocate them.
    snap.config.d_model = 1 << 14;
    snap.config.d_ff = 1 << 14;
    snap.config.heads = 1;
    snap.config.n_layers = 256;
    let err = InferenceModel::from_snapshot(&snap).err().unwrap();
    assert!(
        matches!(err, SnapshotError::Limit { .. }),
        "unexpected {err:?}"
    );
}

#[test]
fn zero_std_scaler_column_is_a_typed_error() {
    let model = model_with(tiny_config(2, 14), true, TransformKind::None);
    let mut snap = Snapshot::capture(&model, &[]).unwrap();
    // Finite but division-poisoning: predictions would all become NaN.
    snap.scaler.std[0] = 0.0;
    let err = InferenceModel::from_snapshot(&snap).err().unwrap();
    assert!(
        matches!(err, SnapshotError::Header(_)),
        "unexpected {err:?}"
    );
}

#[test]
fn unsorted_plans_are_rejected_for_canonicality() {
    let model = model_with(tiny_config(2, 12), true, TransformKind::None);
    let mut snap = Snapshot::capture(&model, &[2, 3]).unwrap();
    snap.plans.swap(0, 1);
    let err = Snapshot::from_bytes(&snap.to_bytes()).unwrap_err();
    assert!(
        matches!(err, SnapshotError::Header(_)),
        "unexpected {err:?}"
    );
}

// ---------------------------------------------------------------------------
// Batch-specialization section (optional, additive)
// ---------------------------------------------------------------------------

#[test]
fn snapshot_without_spec_section_loads_and_serves_generic_only() {
    // Forward compatibility: a v-current file with no specialized-plan
    // section (exactly what every pre-specialization snapshot is) must
    // load, serve through generic plans, perform zero recordings, and
    // re-serialize byte-identically (the empty section is omitted).
    let model = model_with(tiny_config(2, 21), true, TransformKind::BoxCox);
    let snap = Snapshot::capture_all(&model).unwrap();
    assert!(snap.spec_plans.is_empty());
    let bytes = snap.to_bytes();
    assert!(
        !bytes.windows(10).any(|w| w == b"spec_plans"),
        "empty section must be omitted from the header"
    );
    let loaded = InferenceModel::from_snapshot_bytes(&bytes).unwrap();
    assert!(loaded.predictor.specialized_plans().is_empty());
    assert!(loaded.predictor.batch_classes().is_empty());
    let enc: Vec<EncodedSample> = (0..12).map(|i| sample(1 + i % 4, i)).collect();
    assert_eq!(
        loaded.predict_samples(&enc).unwrap(),
        model.freeze().predict_samples(&enc).unwrap()
    );
    assert_eq!(loaded.predictor.plan_compile_count(), 0);
    assert_eq!(Snapshot::from_inference(&loaded).to_bytes(), bytes);
}

#[test]
fn spec_section_round_trips_canonically_and_serves_specialized() {
    let model = model_with(tiny_config(2, 22), true, TransformKind::None);
    let snap = Snapshot::capture_all(&model)
        .unwrap()
        .with_batch_classes(&[1, 6])
        .unwrap();
    assert_eq!(
        snap.spec_plans.len(),
        2 * model.predictor.config().max_leaves
    );
    let bytes = snap.to_bytes();
    let loaded = InferenceModel::from_snapshot_bytes(&bytes).unwrap();
    assert_eq!(loaded.predictor.batch_classes(), vec![1, 6]);
    assert_eq!(
        loaded.predictor.specialized_plans().len(),
        snap.spec_plans.len()
    );
    assert_eq!(
        loaded.predictor.plan_compile_count(),
        0,
        "folding never records"
    );
    // Class-size and off-class batches both match the live model exactly.
    let mut runner = cdmpp_core::PlanRunner::new();
    let frozen = model.freeze();
    for b in [1usize, 3, 6] {
        let enc: Vec<EncodedSample> = (0..b).map(|i| sample(2, i)).collect();
        let got = loaded.predict_samples_with(&mut runner, &enc).unwrap();
        assert_eq!(got, frozen.predict_samples(&enc).unwrap(), "b = {b}");
    }
    assert_eq!(
        runner.spec_exec_count(),
        2,
        "class batches (1 and 6) must replay specialized plans"
    );
    // Canonical bytes: load → capture → save reproduces the file.
    assert_eq!(Snapshot::from_inference(&loaded).to_bytes(), bytes);
}

#[test]
fn hostile_spec_sections_are_typed_errors_never_panics() {
    let model = model_with(tiny_config(2, 23), true, TransformKind::None);
    let good = Snapshot::capture_all(&model)
        .unwrap()
        .with_batch_classes(&[1, 4])
        .unwrap();
    assert!(InferenceModel::from_snapshot(&good).is_ok());

    // Out-of-order entries break canonicality at decode time.
    let mut snap = good.clone();
    snap.spec_plans.swap(0, 1);
    assert!(matches!(
        Snapshot::from_bytes(&snap.to_bytes()),
        Err(SnapshotError::Header(_))
    ));

    // Leaf count outside the model's range.
    let mut snap = good.clone();
    snap.spec_plans[0].leaves = 99;
    match InferenceModel::from_snapshot(&snap).err() {
        Some(SnapshotError::Plan { leaves: 99, .. }) => {}
        other => panic!("expected Plan error, got {other:?}"),
    }

    // Batch class 0 and an attacker-sized batch class.
    for batch in [0usize, usize::MAX] {
        let mut snap = good.clone();
        snap.spec_plans[0].batch = batch;
        assert!(
            matches!(
                InferenceModel::from_snapshot(&snap),
                Err(SnapshotError::Plan { .. })
            ),
            "batch {batch} must be rejected"
        );
    }

    // A specialization request whose generic plan is not in the file
    // would force a recording on load — typed error instead.
    let mut snap = good.clone();
    snap.plans.remove(0); // drop the leaf-1 generic plan
    assert!(snap.spec_plans.iter().any(|e| e.leaves == 1));
    assert!(matches!(
        InferenceModel::from_snapshot(&snap),
        Err(SnapshotError::Plan { leaves: 1, .. })
    ));

    // More distinct classes than the serving tier allows.
    let mut snap = good.clone();
    snap.spec_plans = (1..=cdmpp_core::MAX_BATCH_CLASSES + 1)
        .map(|batch| cdmpp_core::SpecPlanEntry { leaves: 1, batch })
        .collect();
    assert!(matches!(
        InferenceModel::from_snapshot(&snap),
        Err(SnapshotError::Plan { .. })
    ));
}
