//! Dataset persistence: JSON export/import of measured records.
//!
//! The paper open-sources its expanded Tenset records; the equivalent here
//! is a portable JSON serialization of the generated dataset so expensive
//! generations can be cached and shared across experiment runs.

use std::io::{BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use tir::{Network, Schedule, Task, TensorProgram};

use crate::gen::{Dataset, GenConfig, Record};

/// Serializable image of one record.
#[derive(Debug, Serialize, Deserialize)]
struct RecordImage {
    task_id: u32,
    schedule_id: u32,
    device: String,
    schedule: Schedule,
    program: TensorProgram,
    latency_s: f64,
}

/// Serializable image of a dataset.
#[derive(Debug, Serialize, Deserialize)]
struct DatasetImage {
    tasks: Vec<Task>,
    networks: Vec<Network>,
    task_networks: Vec<Vec<String>>,
    records: Vec<RecordImage>,
    seed: u64,
    batch: u64,
    schedules_per_task: usize,
    noise_sigma: f64,
}

/// Errors from dataset persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

impl Dataset {
    /// Writes the dataset (including programs) to a JSON file.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let image = DatasetImage {
            tasks: self.tasks.clone(),
            networks: self.networks.clone(),
            task_networks: self.task_networks.clone(),
            records: self
                .records
                .iter()
                .map(|r| RecordImage {
                    task_id: r.task_id,
                    schedule_id: r.schedule_id,
                    device: r.device.clone(),
                    schedule: (*r.schedule).clone(),
                    program: (*r.program).clone(),
                    latency_s: r.latency_s,
                })
                .collect(),
            seed: self.config.seed,
            batch: self.config.batch,
            schedules_per_task: self.config.schedules_per_task,
            noise_sigma: self.config.noise_sigma,
        };
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        serde_json::to_writer(&mut w, &image)?;
        w.flush()?;
        Ok(())
    }

    /// Loads a dataset previously written by [`Dataset::save_json`].
    ///
    /// Identical `(task_id, schedule_id)` programs are re-shared via `Arc`
    /// so the loaded dataset has the same memory profile as a generated
    /// one.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Dataset, PersistError> {
        let file = std::fs::File::open(path)?;
        let image: DatasetImage = serde_json::from_reader(BufReader::new(file))?;
        let mut prog_cache: std::collections::HashMap<
            (u32, u32),
            (Arc<Schedule>, Arc<TensorProgram>),
        > = Default::default();
        let records = image
            .records
            .into_iter()
            .map(|r| {
                let key = (r.task_id, r.schedule_id);
                let (schedule, program) = prog_cache
                    .entry(key)
                    .or_insert_with(|| (Arc::new(r.schedule.clone()), Arc::new(r.program.clone())))
                    .clone();
                Record {
                    task_id: r.task_id,
                    schedule_id: r.schedule_id,
                    device: r.device,
                    schedule,
                    program,
                    latency_s: r.latency_s,
                }
            })
            .collect();
        Ok(Dataset {
            tasks: image.tasks,
            networks: image.networks,
            task_networks: image.task_networks,
            records,
            config: GenConfig {
                batch: image.batch,
                schedules_per_task: image.schedules_per_task,
                devices: Vec::new(), // device list is recoverable from records
                seed: image.seed,
                noise_sigma: image.noise_sigma,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;
    use tir::zoo;

    fn tiny() -> Dataset {
        Dataset::generate_with_networks(
            GenConfig {
                batch: 1,
                schedules_per_task: 2,
                devices: vec![devsim::t4(), devsim::epyc_7452()],
                seed: 17,
                noise_sigma: 0.0,
            },
            vec![zoo::mlp_mixer(1)],
        )
    }

    #[test]
    fn save_load_roundtrip() {
        let ds = tiny();
        let path = std::env::temp_dir().join("cdmpp_ds_roundtrip.json");
        ds.save_json(&path).unwrap();
        let back = Dataset::load_json(&path).unwrap();
        assert_eq!(back.records.len(), ds.records.len());
        assert_eq!(back.tasks, ds.tasks);
        assert_eq!(back.task_networks, ds.task_networks);
        for (a, b) in ds.records.iter().zip(back.records.iter()) {
            assert_eq!(a.task_id, b.task_id);
            assert_eq!(a.device, b.device);
            let rel = (a.latency_s - b.latency_s).abs() / a.latency_s;
            assert!(
                rel < 1e-12,
                "latency roundtrip {} vs {}",
                a.latency_s,
                b.latency_s
            );
            assert_eq!(*a.program, *b.program);
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn loaded_programs_are_shared_across_devices() {
        let ds = tiny();
        let path = std::env::temp_dir().join("cdmpp_ds_shared.json");
        ds.save_json(&path).unwrap();
        let back = Dataset::load_json(&path).unwrap();
        // Records for the same (task, schedule) on two devices share one Arc.
        let a = &back.records[0];
        let twin = back
            .records
            .iter()
            .find(|r| {
                r.task_id == a.task_id && r.schedule_id == a.schedule_id && r.device != a.device
            })
            .expect("two devices present");
        assert!(Arc::ptr_eq(&a.program, &twin.program));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(matches!(
            Dataset::load_json("/definitely/not/here.json"),
            Err(PersistError::Io(_))
        ));
    }
}
