//! Dataset statistics backing Fig 2 (AST size distributions) and Fig 5
//! (latency skew).

use crate::gen::Dataset;

/// Summary statistics of one device's (or the whole dataset's) labels and
/// AST shapes.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Number of records summarized.
    pub n: usize,
    /// Min / median / max AST node counts.
    pub node_counts: (usize, usize, usize),
    /// Min / median / max leaf counts.
    pub leaf_counts: (usize, usize, usize),
    /// Latency mean (seconds).
    pub latency_mean: f64,
    /// Latency skewness (Fisher).
    pub latency_skewness: f64,
}

/// Builds a histogram of `values` into `bins` equal-width buckets.
pub fn histogram(values: &[f64], bins: usize) -> Vec<(f64, usize)> {
    if values.is_empty() || bins == 0 {
        return Vec::new();
    }
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let width = ((max - min) / bins as f64).max(1e-300);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let b = (((v - min) / width) as usize).min(bins - 1);
        counts[b] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (min + (i as f64 + 0.5) * width, c))
        .collect()
}

fn min_med_max(mut xs: Vec<usize>) -> (usize, usize, usize) {
    if xs.is_empty() {
        return (0, 0, 0);
    }
    xs.sort_unstable();
    (xs[0], xs[xs.len() / 2], xs[xs.len() - 1])
}

/// Summarizes a set of record indices.
pub fn latency_summary(ds: &Dataset, idx: &[usize]) -> DatasetStats {
    let node_counts: Vec<usize> = idx
        .iter()
        .map(|&i| ds.records[i].program.node_count())
        .collect();
    let leaf_counts: Vec<usize> = idx
        .iter()
        .map(|&i| ds.records[i].program.leaf_count())
        .collect();
    let lats: Vec<f64> = ds.latencies(idx);
    DatasetStats {
        n: idx.len(),
        node_counts: min_med_max(node_counts),
        leaf_counts: min_med_max(leaf_counts),
        latency_mean: learn_mean(&lats),
        latency_skewness: skew(&lats),
    }
}

fn learn_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn skew(xs: &[f64]) -> f64 {
    let m = learn_mean(xs);
    let v = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len().max(1) as f64;
    if v <= 0.0 {
        return 0.0;
    }
    let m3 = xs.iter().map(|&x| (x - m).powi(3)).sum::<f64>() / xs.len().max(1) as f64;
    m3 / v.powf(1.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{Dataset, GenConfig};
    use tir::zoo;

    fn dataset() -> Dataset {
        Dataset::generate_with_networks(
            GenConfig {
                batch: 1,
                schedules_per_task: 4,
                devices: vec![devsim::t4()],
                seed: 11,
                noise_sigma: 0.0,
            },
            vec![zoo::resnet18(1), zoo::bert_tiny(1)],
        )
    }

    #[test]
    fn fig2_property_leaf_range_much_narrower_than_node_range() {
        // The design insight of §2.3: node counts vary wildly, leaf counts
        // stay in a small range.
        let ds = dataset();
        let idx = ds.device_records("T4");
        let s = latency_summary(&ds, &idx);
        let node_range = s.node_counts.2 - s.node_counts.0;
        let leaf_range = s.leaf_counts.2 - s.leaf_counts.0;
        assert!(leaf_range <= 6, "leaf range {leaf_range}");
        assert!(
            node_range > 2 * leaf_range,
            "node range {node_range} vs leaf {leaf_range}"
        );
    }

    #[test]
    fn fig5_property_latencies_are_right_skewed() {
        let ds = dataset();
        let idx = ds.device_records("T4");
        let s = latency_summary(&ds, &idx);
        assert!(
            s.latency_skewness > 1.0,
            "skewness = {}",
            s.latency_skewness
        );
    }

    #[test]
    fn histogram_covers_all_values() {
        let vals = vec![1.0, 2.0, 2.5, 9.0, 10.0];
        let h = histogram(&vals, 3);
        assert_eq!(h.len(), 3);
        assert_eq!(h.iter().map(|&(_, c)| c).sum::<usize>(), 5);
    }

    #[test]
    fn histogram_degenerate() {
        assert!(histogram(&[], 4).is_empty());
        let h = histogram(&[3.0, 3.0], 2);
        assert_eq!(h.iter().map(|&(_, c)| c).sum::<usize>(), 2);
    }
}
