//! Synthetic Tenset: the dataset substrate.
//!
//! Tenset (50M+ measured records) is replaced by a generator that samples
//! Ansor-style schedules for every task in the model zoo and measures each
//! resulting tensor program on every simulated device. The properties the
//! paper's method depends on are preserved: long-tailed latencies (Fig 5a),
//! irregular AST node counts with a narrow leaf-count range (Fig 2), and
//! per-device / per-model distribution shift.

pub mod gen;
pub mod persist;
pub mod split;
pub mod stats;

pub use gen::{Dataset, GenConfig, Record};
pub use persist::PersistError;
pub use split::{SplitIndices, SPLIT_RATIO};
pub use stats::{histogram, latency_summary, DatasetStats};
