//! Dataset generation: tasks × sampled schedules × devices.

use std::collections::HashMap;
use std::sync::Arc;

use devsim::{DeviceSpec, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tir::{
    all_networks, build_tasks, lower, sample_schedule, Network, Schedule, Task, TensorProgram,
};

/// One measured record: a tensor program's latency on a device.
#[derive(Debug, Clone)]
pub struct Record {
    /// Task the program was scheduled from.
    pub task_id: u32,
    /// Index of the schedule within the task's sampled set.
    pub schedule_id: u32,
    /// Device name the measurement was taken on.
    pub device: String,
    /// The schedule that produced the program (for TLP-style features).
    pub schedule: Arc<Schedule>,
    /// The lowered tensor program (shared across devices).
    pub program: Arc<TensorProgram>,
    /// Measured latency in seconds (simulator + noise).
    pub latency_s: f64,
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Batch size the model zoo is instantiated at.
    pub batch: u64,
    /// Schedules sampled per task.
    pub schedules_per_task: usize,
    /// Devices to measure on.
    pub devices: Vec<DeviceSpec>,
    /// Master seed (schedule sampling and measurement noise derive from it).
    pub seed: u64,
    /// Measurement noise σ (0 disables noise).
    pub noise_sigma: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            batch: 1,
            schedules_per_task: 12,
            devices: devsim::all_devices(),
            seed: 42,
            noise_sigma: 0.03,
        }
    }
}

/// The generated dataset: tasks, networks, and measured records.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Deduplicated tasks across all networks.
    pub tasks: Vec<Task>,
    /// The source networks (the model set `M`).
    pub networks: Vec<Network>,
    /// For each task, the names of networks that use it.
    pub task_networks: Vec<Vec<String>>,
    /// All measured records.
    pub records: Vec<Record>,
    /// The config used.
    pub config: GenConfig,
}

impl Dataset {
    /// Generates the dataset from the full model zoo.
    pub fn generate(config: GenConfig) -> Self {
        let networks = all_networks(config.batch);
        Self::generate_with_networks(config, networks)
    }

    /// Generates from an explicit network list (tests use tiny zoos).
    pub fn generate_with_networks(config: GenConfig, networks: Vec<Network>) -> Self {
        let tasks = build_tasks(&networks);
        // Which networks use each task.
        let mut task_networks = vec![Vec::new(); tasks.len()];
        let spec_to_id: HashMap<_, _> = tasks.iter().map(|t| (t.spec, t.id)).collect();
        for net in &networks {
            for layer in &net.layers {
                let id = spec_to_id[&layer.spec] as usize;
                if !task_networks[id].contains(&net.name) {
                    task_networks[id].push(net.name.clone());
                }
            }
        }
        // Sample schedules per task and lower once (device-independent).
        let mut sched_rng = StdRng::seed_from_u64(config.seed);
        let mut programs: Vec<Vec<(Arc<Schedule>, Arc<TensorProgram>)>> = Vec::new();
        for task in &tasks {
            let nest = task.spec.canonical_nest();
            let mut per_task = Vec::with_capacity(config.schedules_per_task);
            let mut guard = 0;
            while per_task.len() < config.schedules_per_task
                && guard < config.schedules_per_task * 10
            {
                guard += 1;
                let sched = sample_schedule(&nest, &mut sched_rng);
                match lower(&nest, &sched) {
                    Ok(p) => per_task.push((Arc::new(sched), Arc::new(p))),
                    Err(_) => continue,
                }
            }
            programs.push(per_task);
        }
        // Measure on every device.
        let mut records = Vec::new();
        for dev in &config.devices {
            let mut sim = Simulator::new(dev.clone());
            sim.noise_sigma = config.noise_sigma;
            let mut noise_rng = StdRng::seed_from_u64(config.seed ^ fxhash(dev.name.as_bytes()));
            for (task, per_task) in tasks.iter().zip(programs.iter()) {
                for (sid, (sched, prog)) in per_task.iter().enumerate() {
                    let latency = if config.noise_sigma > 0.0 {
                        sim.measure(prog, &mut noise_rng)
                    } else {
                        sim.latency_seconds(prog)
                    };
                    records.push(Record {
                        task_id: task.id,
                        schedule_id: sid as u32,
                        device: dev.name.clone(),
                        schedule: Arc::clone(sched),
                        program: Arc::clone(prog),
                        latency_s: latency,
                    });
                }
            }
        }
        Dataset {
            tasks,
            networks,
            task_networks,
            records,
            config,
        }
    }

    /// Indices of records measured on `device`.
    pub fn device_records(&self, device: &str) -> Vec<usize> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.device == device)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether a task is used by any of the given (hold-out) networks.
    pub fn task_in_networks(&self, task_id: u32, networks: &[&str]) -> bool {
        self.task_networks[task_id as usize]
            .iter()
            .any(|n| networks.contains(&n.as_str()))
    }

    /// Task ids used by a specific network.
    pub fn network_task_ids(&self, network: &str) -> Vec<u32> {
        self.tasks
            .iter()
            .filter(|t| {
                self.task_networks[t.id as usize]
                    .iter()
                    .any(|n| n == network)
            })
            .map(|t| t.id)
            .collect()
    }

    /// Latencies (seconds) of a record index set.
    pub fn latencies(&self, idx: &[usize]) -> Vec<f64> {
        idx.iter().map(|&i| self.records[i].latency_s).collect()
    }
}

/// Tiny FNV-style hash for deriving per-device noise seeds.
fn fxhash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::zoo;

    fn tiny_config() -> GenConfig {
        GenConfig {
            batch: 1,
            schedules_per_task: 3,
            devices: vec![devsim::t4(), devsim::epyc_7452()],
            seed: 7,
            noise_sigma: 0.02,
        }
    }

    fn tiny_networks() -> Vec<Network> {
        vec![zoo::bert_tiny(1), zoo::mlp_mixer(1)]
    }

    #[test]
    fn generation_produces_expected_record_count() {
        let ds = Dataset::generate_with_networks(tiny_config(), tiny_networks());
        let expect = ds.tasks.len() * 3 * 2; // tasks × schedules × devices
        assert_eq!(ds.records.len(), expect);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate_with_networks(tiny_config(), tiny_networks());
        let b = Dataset::generate_with_networks(tiny_config(), tiny_networks());
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(b.records.iter()) {
            assert_eq!(ra.latency_s, rb.latency_s);
            assert_eq!(ra.task_id, rb.task_id);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate_with_networks(tiny_config(), tiny_networks());
        let mut cfg = tiny_config();
        cfg.seed = 8;
        let b = Dataset::generate_with_networks(cfg, tiny_networks());
        assert!(a
            .records
            .iter()
            .zip(b.records.iter())
            .any(|(x, y)| x.latency_s != y.latency_s));
    }

    #[test]
    fn same_program_different_latency_across_devices() {
        let ds = Dataset::generate_with_networks(tiny_config(), tiny_networks());
        let t4_recs = ds.device_records("T4");
        let cpu_recs = ds.device_records("EPYC-7452");
        assert_eq!(t4_recs.len(), cpu_recs.len());
        // Same (task, schedule) pairs exist on both devices with different
        // latencies.
        let mut diffs = 0;
        for (&a, &b) in t4_recs.iter().zip(cpu_recs.iter()) {
            let (ra, rb) = (&ds.records[a], &ds.records[b]);
            assert_eq!(ra.task_id, rb.task_id);
            assert_eq!(ra.schedule_id, rb.schedule_id);
            if (ra.latency_s - rb.latency_s).abs() / ra.latency_s > 0.05 {
                diffs += 1;
            }
        }
        assert!(
            diffs > t4_recs.len() / 2,
            "devices must shift the distribution"
        );
    }

    #[test]
    fn latencies_positive_and_spread() {
        let ds = Dataset::generate_with_networks(tiny_config(), tiny_networks());
        let lats = ds.latencies(&ds.device_records("T4"));
        assert!(lats.iter().all(|&l| l > 0.0 && l.is_finite()));
        let max = lats.iter().cloned().fold(f64::MIN, f64::max);
        let min = lats.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 10.0, "latency range too narrow: {min}..{max}");
    }

    #[test]
    fn task_network_mapping() {
        let ds = Dataset::generate_with_networks(tiny_config(), tiny_networks());
        let bert_tasks = ds.network_task_ids("bert_tiny");
        assert!(!bert_tasks.is_empty());
        for tid in &bert_tasks {
            assert!(ds.task_in_networks(*tid, &["bert_tiny"]));
        }
        assert!(!ds.task_in_networks(bert_tasks[0], &["no_such_net"]));
    }
}
