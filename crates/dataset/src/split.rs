//! Train/validation/test and hold-out splitting (§7.1).
//!
//! The paper holds out three networks (ResNet-50, MobileNet-V2, BERT-tiny)
//! per device for cross-model evaluation, and randomly splits the rest
//! 8:1:1 into `S_train`/`S_valid`/`S_test`. A record is held out if its
//! task is used by any hold-out network, so hold-out tensor programs are
//! genuinely unseen at training time.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::gen::Dataset;

/// The paper's 8:1:1 split ratio.
pub const SPLIT_RATIO: (usize, usize, usize) = (8, 1, 1);

/// Record-index splits for one device (or a set of devices).
#[derive(Debug, Clone, Default)]
pub struct SplitIndices {
    /// Training records.
    pub train: Vec<usize>,
    /// Validation records.
    pub valid: Vec<usize>,
    /// Test records.
    pub test: Vec<usize>,
    /// Hold-out records (tasks used by the hold-out networks).
    pub hold_out: Vec<usize>,
}

impl SplitIndices {
    /// Splits the records of one device, holding out `hold_out_networks`.
    pub fn for_device(
        ds: &Dataset,
        device: &str,
        hold_out_networks: &[&str],
        seed: u64,
    ) -> SplitIndices {
        Self::from_indices(ds, ds.device_records(device), hold_out_networks, seed)
    }

    /// Splits an arbitrary record-index set.
    pub fn from_indices(
        ds: &Dataset,
        indices: Vec<usize>,
        hold_out_networks: &[&str],
        seed: u64,
    ) -> SplitIndices {
        let mut hold_out = Vec::new();
        let mut rest = Vec::new();
        for i in indices {
            if ds.task_in_networks(ds.records[i].task_id, hold_out_networks) {
                hold_out.push(i);
            } else {
                rest.push(i);
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        rest.shuffle(&mut rng);
        let n = rest.len();
        let (tr, va, te) = SPLIT_RATIO;
        let total = tr + va + te;
        let n_train = n * tr / total;
        let n_valid = n * va / total;
        let train = rest[..n_train].to_vec();
        let valid = rest[n_train..n_train + n_valid].to_vec();
        let test = rest[n_train + n_valid..].to_vec();
        SplitIndices {
            train,
            valid,
            test,
            hold_out,
        }
    }

    /// Total records covered.
    pub fn len(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len() + self.hold_out.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;
    use tir::zoo;

    fn dataset() -> Dataset {
        Dataset::generate_with_networks(
            GenConfig {
                batch: 1,
                schedules_per_task: 3,
                devices: vec![devsim::t4()],
                seed: 3,
                noise_sigma: 0.0,
            },
            vec![zoo::bert_tiny(1), zoo::mlp_mixer(1), zoo::resnet18(1)],
        )
    }

    #[test]
    fn split_partitions_all_records() {
        let ds = dataset();
        let s = SplitIndices::for_device(&ds, "T4", &["bert_tiny"], 1);
        assert_eq!(s.len(), ds.device_records("T4").len());
        // Disjointness.
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.valid)
            .chain(&s.test)
            .chain(&s.hold_out)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), s.len());
    }

    #[test]
    fn ratios_are_roughly_8_1_1() {
        let ds = dataset();
        let s = SplitIndices::for_device(&ds, "T4", &[], 1);
        let n = s.len() as f64;
        assert!((s.train.len() as f64 / n - 0.8).abs() < 0.05);
        assert!((s.valid.len() as f64 / n - 0.1).abs() < 0.05);
        assert!((s.test.len() as f64 / n - 0.1).abs() < 0.05);
        assert!(s.hold_out.is_empty());
    }

    #[test]
    fn hold_out_tasks_never_in_train() {
        let ds = dataset();
        let s = SplitIndices::for_device(&ds, "T4", &["bert_tiny"], 1);
        assert!(!s.hold_out.is_empty());
        for &i in s.train.iter().chain(&s.valid).chain(&s.test) {
            assert!(
                !ds.task_in_networks(ds.records[i].task_id, &["bert_tiny"]),
                "hold-out task leaked into train/valid/test"
            );
        }
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let ds = dataset();
        let a = SplitIndices::for_device(&ds, "T4", &[], 5);
        let b = SplitIndices::for_device(&ds, "T4", &[], 5);
        assert_eq!(a.train, b.train);
        let c = SplitIndices::for_device(&ds, "T4", &[], 6);
        assert_ne!(a.train, c.train);
    }
}
