//! The tensor-program AST (Fig 1c) and its pre-order serialization (Fig 1d).

use serde::{Deserialize, Serialize};

use crate::expr::{AxisId, Buffer, LeafStmt};

/// Annotation on a loop, mirroring TVM/Ansor schedule annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoopKind {
    /// Plain sequential loop.
    Serial,
    /// Parallelized across cores / thread blocks.
    Parallel,
    /// Mapped to SIMD lanes / vector units.
    Vectorize,
    /// Fully unrolled by the code generator.
    Unroll,
}

impl LoopKind {
    /// Stable numeric code used in feature vectors.
    pub fn code(self) -> u32 {
        match self {
            LoopKind::Serial => 0,
            LoopKind::Parallel => 1,
            LoopKind::Vectorize => 2,
            LoopKind::Unroll => 3,
        }
    }
}

/// A loop variable: one non-leaf AST node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopVar {
    /// Axis identity (stable across schedule rewrites of accesses).
    pub axis: AxisId,
    /// Iteration count.
    pub extent: u64,
    /// Annotation.
    pub kind: LoopKind,
    /// Whether this axis is a reduction axis (affects parallelizability).
    pub is_reduction: bool,
}

/// A node of the tensor-program AST.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AstNode {
    /// A loop over `var` containing `body`.
    Loop {
        /// The loop variable.
        var: LoopVar,
        /// Child nodes (inner loops and/or leaf statements).
        body: Vec<AstNode>,
    },
    /// A computation leaf.
    Leaf(LeafStmt),
}

/// A complete tensor program: buffers plus a forest of loop nests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorProgram {
    /// All buffers referenced by leaves.
    pub buffers: Vec<Buffer>,
    /// Top-level nodes, executed in order.
    pub roots: Vec<AstNode>,
}

/// One entry of the pre-order serialization: either a node id or the `-1`
/// marker emitted after each leaf (Fig 1d).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SerEntry {
    /// A loop node, identified by its pre-order index.
    Loop(u32),
    /// A leaf node, identified by its pre-order index.
    Leaf(u32),
    /// The special marker appended after each leaf.
    Marker,
}

impl TensorProgram {
    /// Total number of AST nodes (loops + leaves).
    pub fn node_count(&self) -> usize {
        fn walk(n: &AstNode) -> usize {
            match n {
                AstNode::Loop { body, .. } => 1 + body.iter().map(walk).sum::<usize>(),
                AstNode::Leaf(_) => 1,
            }
        }
        self.roots.iter().map(walk).sum()
    }

    /// Number of leaf (computation) nodes.
    pub fn leaf_count(&self) -> usize {
        fn walk(n: &AstNode) -> usize {
            match n {
                AstNode::Loop { body, .. } => body.iter().map(walk).sum::<usize>(),
                AstNode::Leaf(_) => 1,
            }
        }
        self.roots.iter().map(walk).sum()
    }

    /// Visits every leaf together with its enclosing loop stack
    /// (outermost-first).
    pub fn visit_leaves<'a>(&'a self, mut f: impl FnMut(&'a LeafStmt, &[&'a LoopVar])) {
        fn walk<'a>(
            n: &'a AstNode,
            stack: &mut Vec<&'a LoopVar>,
            f: &mut impl FnMut(&'a LeafStmt, &[&'a LoopVar]),
        ) {
            match n {
                AstNode::Loop { var, body } => {
                    stack.push(var);
                    for c in body {
                        walk(c, stack, f);
                    }
                    stack.pop();
                }
                AstNode::Leaf(leaf) => f(leaf, stack),
            }
        }
        let mut stack = Vec::new();
        for r in &self.roots {
            walk(r, &mut stack, &mut f);
        }
    }

    /// Pre-order serialization with a marker after each leaf (Fig 1d).
    ///
    /// Node ids are assigned in pre-order visit order, so the positions of
    /// [`SerEntry::Leaf`] entries form the paper's *ordering vector*.
    pub fn serialize_preorder(&self) -> Vec<SerEntry> {
        fn walk(n: &AstNode, next_id: &mut u32, out: &mut Vec<SerEntry>) {
            match n {
                AstNode::Loop { body, .. } => {
                    out.push(SerEntry::Loop(*next_id));
                    *next_id += 1;
                    for c in body {
                        walk(c, next_id, out);
                    }
                }
                AstNode::Leaf(_) => {
                    out.push(SerEntry::Leaf(*next_id));
                    *next_id += 1;
                    out.push(SerEntry::Marker);
                }
            }
        }
        let mut out = Vec::new();
        let mut id = 0;
        for r in &self.roots {
            walk(r, &mut id, &mut out);
        }
        out
    }

    /// The ordering vector: for each leaf (in pre-order), its position in
    /// the serialized traversal. This drives the positional encoding.
    pub fn ordering_vector(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.ordering_vector_into(&mut out);
        out
    }

    /// Allocation-free variant of [`ordering_vector`](Self::ordering_vector):
    /// clears `out` and refills it, reusing its capacity. Positions are
    /// computed directly from the traversal shape — a loop occupies one
    /// serialized slot, a leaf occupies two (entry + marker) — so no
    /// intermediate [`SerEntry`] buffer is built.
    pub fn ordering_vector_into(&self, out: &mut Vec<u32>) {
        fn walk(n: &AstNode, pos: &mut u32, out: &mut Vec<u32>) {
            match n {
                AstNode::Loop { body, .. } => {
                    *pos += 1;
                    for c in body {
                        walk(c, pos, out);
                    }
                }
                AstNode::Leaf(_) => {
                    out.push(*pos);
                    *pos += 2;
                }
            }
        }
        out.clear();
        let mut pos = 0;
        for r in &self.roots {
            walk(r, &mut pos, out);
        }
    }

    /// Total iterations executed by the whole program (sum over leaves of
    /// the product of enclosing loop extents).
    pub fn total_iterations(&self) -> f64 {
        let mut total = 0.0;
        self.visit_leaves(|_, stack| {
            total += stack.iter().map(|l| l.extent as f64).product::<f64>();
        });
        total
    }

    /// Maximum loop nesting depth.
    pub fn max_depth(&self) -> usize {
        fn walk(n: &AstNode, d: usize) -> usize {
            match n {
                AstNode::Loop { body, .. } => {
                    body.iter().map(|c| walk(c, d + 1)).max().unwrap_or(d + 1)
                }
                AstNode::Leaf(_) => d,
            }
        }
        self.roots.iter().map(|r| walk(r, 0)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ComputeKind, MemAccess};

    fn leaf(kind: ComputeKind) -> AstNode {
        AstNode::Leaf(LeafStmt {
            kind,
            flops_per_iter: 1.0,
            accesses: vec![MemAccess::write(0, vec![(0, 1)])],
            domain: vec![0],
        })
    }

    fn lv(axis: AxisId, extent: u64) -> LoopVar {
        LoopVar {
            axis,
            extent,
            kind: LoopKind::Serial,
            is_reduction: false,
        }
    }

    /// `for a { init; for b { mac } }` — the Fig 1 shape in miniature.
    fn sample() -> TensorProgram {
        TensorProgram {
            buffers: vec![Buffer::f32("c", 64)],
            roots: vec![AstNode::Loop {
                var: lv(0, 4),
                body: vec![
                    leaf(ComputeKind::Init),
                    AstNode::Loop {
                        var: lv(1, 8),
                        body: vec![leaf(ComputeKind::Mac)],
                    },
                ],
            }],
        }
    }

    #[test]
    fn counts() {
        let p = sample();
        assert_eq!(p.node_count(), 4); // 2 loops + 2 leaves
        assert_eq!(p.leaf_count(), 2);
        assert_eq!(p.max_depth(), 2);
    }

    #[test]
    fn preorder_serialization_layout() {
        let p = sample();
        let s = p.serialize_preorder();
        // loop0, leaf1, marker, loop2, leaf3, marker
        assert_eq!(
            s,
            vec![
                SerEntry::Loop(0),
                SerEntry::Leaf(1),
                SerEntry::Marker,
                SerEntry::Loop(2),
                SerEntry::Leaf(3),
                SerEntry::Marker,
            ]
        );
    }

    #[test]
    fn ordering_vector_positions() {
        let p = sample();
        // Leaf entries sit at serialized positions 1 and 4.
        assert_eq!(p.ordering_vector(), vec![1, 4]);
    }

    #[test]
    fn ordering_vector_into_matches_serialization() {
        // The direct position arithmetic must agree with the definition via
        // serialize_preorder for arbitrary shapes, and reuse the buffer.
        let flat = TensorProgram {
            buffers: vec![],
            roots: vec![leaf(ComputeKind::Init), leaf(ComputeKind::Mac)],
        };
        let nested = sample();
        let mut buf = vec![99u32; 16];
        for p in [&flat, &nested] {
            let expect: Vec<u32> = p
                .serialize_preorder()
                .iter()
                .enumerate()
                .filter_map(|(pos, e)| match e {
                    SerEntry::Leaf(_) => Some(pos as u32),
                    _ => None,
                })
                .collect();
            p.ordering_vector_into(&mut buf);
            assert_eq!(buf, expect);
            assert_eq!(p.ordering_vector(), expect);
        }
    }

    #[test]
    fn visit_leaves_sees_stacks() {
        let p = sample();
        let mut stacks = Vec::new();
        p.visit_leaves(|leaf, stack| {
            stacks.push((leaf.kind, stack.iter().map(|l| l.axis).collect::<Vec<_>>()));
        });
        assert_eq!(stacks.len(), 2);
        assert_eq!(stacks[0], (ComputeKind::Init, vec![0]));
        assert_eq!(stacks[1], (ComputeKind::Mac, vec![0, 1]));
    }

    #[test]
    fn total_iterations_sums_leaf_domains() {
        let p = sample();
        // init runs 4 times, mac runs 4*8 = 32 times.
        assert_eq!(p.total_iterations(), 36.0);
    }

    #[test]
    fn serde_roundtrip() {
        let p = sample();
        let json = serde_json::to_string(&p).unwrap();
        let back: TensorProgram = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
