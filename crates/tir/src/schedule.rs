//! Schedule primitives and lowering to tensor programs.
//!
//! This mirrors TVM/Ansor's schedule space at the granularity the cost model
//! cares about: loop splitting (tiling), reordering, and the
//! parallel/vectorize/unroll annotations. Applying a [`Schedule`] to a
//! task's canonical [`Nest`] yields a concrete [`TensorProgram`] whose AST
//! structure (and therefore performance) depends on the schedule — one
//! subgraph can expand into thousands of distinct tensor programs, exactly
//! the space Tenset samples.

use rand::seq::{IndexedRandom, SliceRandom};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ast::{AstNode, LoopKind, LoopVar, TensorProgram};
use crate::expr::{AxisId, LeafStmt};
use crate::task::{AxisInfo, Nest};

/// A single schedule transformation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Primitive {
    /// Splits `axis` into an outer and inner loop; the inner has `factor`
    /// iterations. `factor` must divide the axis extent.
    Split {
        /// Axis to split.
        axis: AxisId,
        /// Inner extent.
        factor: u64,
    },
    /// Reorders the loop nest to the given axis order (must be a
    /// permutation of the current axes).
    Reorder {
        /// New outermost-first order.
        order: Vec<AxisId>,
    },
    /// Annotates an axis with a loop kind.
    Annotate {
        /// Axis to annotate.
        axis: AxisId,
        /// The annotation.
        kind: LoopKind,
    },
}

/// An ordered list of schedule primitives.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schedule {
    /// Primitives applied in order.
    pub primitives: Vec<Primitive>,
}

impl Schedule {
    /// A stable 64-bit identity hash over the primitive sequence (FNV-1a).
    ///
    /// Two schedules with equal primitive lists hash equally; the search
    /// uses this to dedup candidates within a round before encoding them,
    /// confirming collisions with `PartialEq`.
    pub fn identity_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: u64, v: u64) -> u64 {
            let mut h = h;
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
            h
        }
        let mut h = OFFSET;
        for p in &self.primitives {
            h = match p {
                Primitive::Split { axis, factor } => mix(mix(mix(h, 0), *axis as u64), *factor),
                Primitive::Reorder { order } => {
                    let mut h = mix(mix(h, 1), order.len() as u64);
                    for &a in order {
                        h = mix(h, a as u64);
                    }
                    h
                }
                Primitive::Annotate { axis, kind } => {
                    mix(mix(mix(h, 2), *axis as u64), kind.code() as u64)
                }
            };
        }
        h
    }
}

/// Errors from schedule application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Referenced axis does not exist.
    UnknownAxis(AxisId),
    /// Split factor does not divide the extent.
    BadFactor {
        /// Offending axis.
        axis: AxisId,
        /// Extent of the axis.
        extent: u64,
        /// Requested factor.
        factor: u64,
    },
    /// Reorder list is not a permutation of the current axes.
    BadReorder,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::UnknownAxis(a) => write!(f, "unknown axis {a}"),
            ScheduleError::BadFactor {
                axis,
                extent,
                factor,
            } => {
                write!(
                    f,
                    "factor {factor} does not divide extent {extent} of axis {axis}"
                )
            }
            ScheduleError::BadReorder => write!(f, "reorder is not a permutation"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Mutable lowering state: the nest plus the global loop order and
/// annotations, evolved by primitives.
struct LowerState {
    axes: Vec<AxisInfo>,
    order: Vec<AxisId>,
    leaves: Vec<(LeafStmt, Vec<AxisId>)>,
    annotations: Vec<(AxisId, LoopKind)>,
    next_axis: AxisId,
}

impl LowerState {
    fn new(nest: &Nest) -> Self {
        let order = nest.axes.iter().map(|a| a.id).collect();
        let next_axis = nest.axes.iter().map(|a| a.id).max().map_or(0, |m| m + 1);
        LowerState {
            axes: nest.axes.clone(),
            order,
            leaves: nest
                .leaves
                .iter()
                .map(|l| (l.clone(), l.domain.clone()))
                .collect(),
            annotations: Vec::new(),
            next_axis,
        }
    }

    fn axis(&self, id: AxisId) -> Option<&AxisInfo> {
        self.axes.iter().find(|a| a.id == id)
    }

    fn apply(&mut self, p: &Primitive) -> Result<(), ScheduleError> {
        match p {
            Primitive::Split { axis, factor } => self.split(*axis, *factor),
            Primitive::Reorder { order } => self.reorder(order),
            Primitive::Annotate { axis, kind } => {
                if self.axis(*axis).is_none() {
                    return Err(ScheduleError::UnknownAxis(*axis));
                }
                self.annotations.retain(|&(a, _)| a != *axis);
                self.annotations.push((*axis, *kind));
                Ok(())
            }
        }
    }

    fn split(&mut self, axis: AxisId, factor: u64) -> Result<(), ScheduleError> {
        let info = self
            .axis(axis)
            .ok_or(ScheduleError::UnknownAxis(axis))?
            .clone();
        if factor == 0 || info.extent % factor != 0 {
            return Err(ScheduleError::BadFactor {
                axis,
                extent: info.extent,
                factor,
            });
        }
        let outer = self.next_axis;
        let inner = self.next_axis + 1;
        self.next_axis += 2;
        // Replace the axis record.
        self.axes.retain(|a| a.id != axis);
        self.axes.push(AxisInfo {
            id: outer,
            extent: info.extent / factor,
            is_reduction: info.is_reduction,
        });
        self.axes.push(AxisInfo {
            id: inner,
            extent: factor,
            is_reduction: info.is_reduction,
        });
        // Replace in the global order: outer takes the old slot, inner
        // follows immediately (Reorder can move it later).
        let pos = self
            .order
            .iter()
            .position(|&a| a == axis)
            .expect("axis in order");
        self.order.splice(pos..=pos, [outer, inner]);
        // Rewrite leaf domains and accesses.
        for (leaf, domain) in &mut self.leaves {
            if let Some(dpos) = domain.iter().position(|&a| a == axis) {
                domain.splice(dpos..=dpos, [outer, inner]);
                for acc in &mut leaf.accesses {
                    acc.split_axis(axis, outer, inner, factor as i64);
                }
            }
        }
        // Annotations on the split axis transfer to the inner loop.
        for ann in &mut self.annotations {
            if ann.0 == axis {
                ann.0 = inner;
            }
        }
        Ok(())
    }

    fn reorder(&mut self, order: &[AxisId]) -> Result<(), ScheduleError> {
        if order.len() != self.order.len() {
            return Err(ScheduleError::BadReorder);
        }
        let mut sorted_new: Vec<_> = order.to_vec();
        let mut sorted_old = self.order.clone();
        sorted_new.sort_unstable();
        sorted_old.sort_unstable();
        if sorted_new != sorted_old {
            return Err(ScheduleError::BadReorder);
        }
        self.order = order.to_vec();
        Ok(())
    }

    fn annotation(&self, axis: AxisId) -> LoopKind {
        self.annotations
            .iter()
            .find(|&&(a, _)| a == axis)
            .map(|&(_, k)| k)
            .unwrap_or(LoopKind::Serial)
    }

    /// Builds the AST forest. Leaves are placed under the loops of their
    /// domain following the global order; when the order forces a leaf
    /// apart from its neighbours (e.g. a reduction axis hoisted above an
    /// init statement's domain), the nest fissions into siblings.
    fn build(&self) -> Vec<AstNode> {
        let leaves: Vec<(LeafStmt, Vec<AxisId>)> = self.leaves.clone();
        self.build_rec(&self.order, leaves)
    }

    fn build_rec(&self, order: &[AxisId], leaves: Vec<(LeafStmt, Vec<AxisId>)>) -> Vec<AstNode> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < leaves.len() {
            let first_needed = order.iter().copied().find(|a| leaves[i].1.contains(a));
            match first_needed {
                None => {
                    out.push(AstNode::Leaf(leaves[i].0.clone()));
                    i += 1;
                }
                Some(a) => {
                    // Group consecutive leaves whose own first-needed axis is `a`.
                    let mut group = Vec::new();
                    while i < leaves.len() {
                        let fni = order.iter().copied().find(|x| leaves[i].1.contains(x));
                        if fni != Some(a) {
                            break;
                        }
                        let (leaf, mut dom) = leaves[i].clone();
                        dom.retain(|&x| x != a);
                        group.push((leaf, dom));
                        i += 1;
                    }
                    let sub_order: Vec<AxisId> =
                        order.iter().copied().filter(|&x| x != a).collect();
                    let info = self.axis(a).expect("axis exists");
                    let var = LoopVar {
                        axis: a,
                        extent: info.extent,
                        kind: self.annotation(a),
                        is_reduction: info.is_reduction,
                    };
                    let body = self.build_rec(&sub_order, group);
                    out.push(AstNode::Loop { var, body });
                }
            }
        }
        out
    }
}

/// Applies `schedule` to `nest`, producing a tensor program.
pub fn lower(nest: &Nest, schedule: &Schedule) -> Result<TensorProgram, ScheduleError> {
    let mut state = LowerState::new(nest);
    for p in &schedule.primitives {
        state.apply(p)?;
    }
    Ok(TensorProgram {
        buffers: nest.buffers.clone(),
        roots: state.build(),
    })
}

/// Divisors of `n` in `[2, max]`, used by the random tiler.
fn divisors(n: u64, max: u64) -> Vec<u64> {
    (2..=n.min(max)).filter(|d| n.is_multiple_of(*d)).collect()
}

/// Samples a random Ansor-style schedule for a nest.
///
/// The sampler mixes sensible multi-level tilings with occasional bad
/// choices (hoisted reductions, missing vectorization) so the dataset spans
/// the performance range a real auto-tuner explores.
pub fn sample_schedule(nest: &Nest, rng: &mut impl Rng) -> Schedule {
    let mut primitives = Vec::new();
    let mut state = LowerState::new(nest);
    // 1) Tiling: split large axes once or twice.
    let axis_ids: Vec<AxisId> = state.axes.iter().map(|a| a.id).collect();
    for id in axis_ids {
        let extent = state.axis(id).map(|a| a.extent).unwrap_or(1);
        if extent >= 4 && rng.random_bool(0.7) {
            let divs = divisors(extent, 64);
            if let Some(&f) = divs.as_slice().choose(rng) {
                let p = Primitive::Split {
                    axis: id,
                    factor: f,
                };
                if state.apply(&p).is_ok() {
                    primitives.push(p);
                }
            }
        }
    }
    // Occasionally add a second-level split on one inner axis.
    if rng.random_bool(0.4) {
        let candidates: Vec<(AxisId, u64)> = state
            .axes
            .iter()
            .filter(|a| a.extent >= 8)
            .map(|a| (a.id, a.extent))
            .collect();
        if let Some(&(id, extent)) = candidates.as_slice().choose(rng) {
            let divs = divisors(extent, 16);
            if let Some(&f) = divs.as_slice().choose(rng) {
                let p = Primitive::Split {
                    axis: id,
                    factor: f,
                };
                if state.apply(&p).is_ok() {
                    primitives.push(p);
                }
            }
        }
    }
    // 2) Reorder.
    let mut order = state.order.clone();
    if rng.random_bool(0.85) {
        // Mild shuffle: swap a few adjacent-ish pairs, keeping a mostly
        // sane structure.
        let swaps = rng.random_range(0..=order.len().min(4));
        for _ in 0..swaps {
            if order.len() >= 2 {
                let i = rng.random_range(0..order.len() - 1);
                let j =
                    (i + 1 + rng.random_range(0..2.min(order.len() - i - 1))).min(order.len() - 1);
                order.swap(i, j);
            }
        }
    } else {
        // Full random permutation — occasionally produces terrible
        // schedules (reduction hoisted out, strided innermost loops).
        order.shuffle(rng);
    }
    let p = Primitive::Reorder { order };
    if state.apply(&p).is_ok() {
        primitives.push(p);
    }
    // 3) Annotations.
    let order = state.order.clone();
    if let Some(&last) = order.last() {
        let extent = state.axis(last).map(|a| a.extent).unwrap_or(1);
        if (2..=64).contains(&extent) && rng.random_bool(0.55) {
            let p = Primitive::Annotate {
                axis: last,
                kind: LoopKind::Vectorize,
            };
            if state.apply(&p).is_ok() {
                primitives.push(p);
            }
        }
    }
    if let Some(&first) = order.first() {
        let is_red = state.axis(first).map(|a| a.is_reduction).unwrap_or(false);
        if !is_red && rng.random_bool(0.7) {
            let p = Primitive::Annotate {
                axis: first,
                kind: LoopKind::Parallel,
            };
            if state.apply(&p).is_ok() {
                primitives.push(p);
            }
        }
    }
    // Unroll a random small inner axis.
    if rng.random_bool(0.4) {
        let candidates: Vec<AxisId> = state
            .axes
            .iter()
            .filter(|a| a.extent >= 2 && a.extent <= 16)
            .map(|a| a.id)
            .collect();
        if let Some(&id) = candidates.as_slice().choose(rng) {
            if state.annotation(id) == LoopKind::Serial {
                let p = Primitive::Annotate {
                    axis: id,
                    kind: LoopKind::Unroll,
                };
                if state.apply(&p).is_ok() {
                    primitives.push(p);
                }
            }
        }
    }
    Schedule { primitives }
}

/// Enumerates light mutations of a schedule (used by the Ansor-lite
/// evolutionary search in `cdmpp-core`).
pub fn mutate_schedule(nest: &Nest, schedule: &Schedule, rng: &mut impl Rng) -> Schedule {
    // Mutation = re-sampling with a bias toward keeping the old primitives:
    // with probability 0.5 keep the old schedule's splits and resample the
    // rest, otherwise sample fresh.
    if rng.random_bool(0.5) {
        let mut kept = Schedule::default();
        let mut state = LowerState::new(nest);
        for p in &schedule.primitives {
            if matches!(p, Primitive::Split { .. }) && state.apply(p).is_ok() {
                kept.primitives.push(p.clone());
            }
        }
        // New reorder + annotations on top of the kept splits.
        let mut order = state.order.clone();
        if rng.random_bool(0.5) {
            order.shuffle(rng);
        }
        let p = Primitive::Reorder { order };
        if state.apply(&p).is_ok() {
            kept.primitives.push(p);
        }
        if let Some(&last) = state.order.clone().last() {
            if rng.random_bool(0.5) {
                let p = Primitive::Annotate {
                    axis: last,
                    kind: LoopKind::Vectorize,
                };
                if state.apply(&p).is_ok() {
                    kept.primitives.push(p);
                }
            }
        }
        kept
    } else {
        sample_schedule(nest, rng)
    }
}

/// Crossover by schedule stage: takes the *tiling* (all `Split`s) from one
/// parent and grafts the other parent's *order and annotations* onto the
/// resulting axis set. Deterministic — no randomness — so the generational
/// search stays reproducible.
///
/// Because the two parents evolve the nest's axis set independently, the
/// second parent's `Reorder` generally names axes that do not exist after
/// the first parent's splits. The reorder is therefore projected as an
/// order-crossover: axes shared between the two sets keep the relative
/// order the second parent gave them, while axes unique to the first
/// parent's tiling stay in their canonical slots. Annotations transfer
/// wherever their axis survived; the rest are dropped.
pub fn crossover_schedule(nest: &Nest, splits_from: &Schedule, rest_from: &Schedule) -> Schedule {
    let mut out = Schedule::default();
    let mut state = LowerState::new(nest);
    for p in &splits_from.primitives {
        if matches!(p, Primitive::Split { .. }) && state.apply(p).is_ok() {
            out.primitives.push(p.clone());
        }
    }
    // Project the second parent's reorder (its last one, if any) onto the
    // current axis set via order-crossover.
    let donor_order = rest_from.primitives.iter().rev().find_map(|p| match p {
        Primitive::Reorder { order } => Some(order.as_slice()),
        _ => None,
    });
    if let Some(donor) = donor_order {
        let shared: Vec<AxisId> = donor
            .iter()
            .copied()
            .filter(|a| state.axis(*a).is_some())
            .collect();
        if !shared.is_empty() {
            let mut next_shared = shared.iter().copied();
            let order: Vec<AxisId> = state
                .order
                .iter()
                .map(|&a| {
                    if shared.contains(&a) {
                        next_shared.next().expect("one shared axis per slot")
                    } else {
                        a
                    }
                })
                .collect();
            let p = Primitive::Reorder { order };
            if state.apply(&p).is_ok() {
                out.primitives.push(p);
            }
        }
    }
    for p in &rest_from.primitives {
        if matches!(p, Primitive::Annotate { .. }) && state.apply(p).is_ok() {
            out.primitives.push(p.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::OpSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dense_nest() -> Nest {
        OpSpec::Dense {
            m: 16,
            n: 16,
            k: 16,
        }
        .canonical_nest()
    }

    #[test]
    fn lower_default_schedule_matches_canonical() {
        let nest = dense_nest();
        let p = lower(&nest, &Schedule::default()).unwrap();
        // for i { for j { init; for k { mac } ; relu } }
        assert_eq!(p.leaf_count(), 3);
        assert_eq!(p.node_count(), 3 + 3); // 3 loops + 3 leaves
        assert_eq!(p.max_depth(), 3);
        // Iterations preserved: 256 + 4096 + 256.
        assert_eq!(p.total_iterations(), nest.total_iterations());
    }

    #[test]
    fn split_preserves_iterations_and_leaf_count() {
        let nest = dense_nest();
        let s = Schedule {
            primitives: vec![
                Primitive::Split { axis: 0, factor: 4 },
                Primitive::Split { axis: 2, factor: 8 },
            ],
        };
        let p = lower(&nest, &s).unwrap();
        assert_eq!(p.leaf_count(), 3);
        assert_eq!(p.total_iterations(), nest.total_iterations());
        // Two splits add two loops: 5 loops total.
        assert_eq!(p.node_count() - p.leaf_count(), 5);
    }

    #[test]
    fn split_requires_dividing_factor() {
        let nest = dense_nest();
        let s = Schedule {
            primitives: vec![Primitive::Split { axis: 0, factor: 5 }],
        };
        assert!(matches!(
            lower(&nest, &s),
            Err(ScheduleError::BadFactor { .. })
        ));
    }

    #[test]
    fn split_unknown_axis_errors() {
        let nest = dense_nest();
        let s = Schedule {
            primitives: vec![Primitive::Split {
                axis: 99,
                factor: 2,
            }],
        };
        assert_eq!(lower(&nest, &s), Err(ScheduleError::UnknownAxis(99)));
    }

    #[test]
    fn reorder_validates_permutation() {
        let nest = dense_nest();
        let bad = Schedule {
            primitives: vec![Primitive::Reorder { order: vec![0, 1] }],
        };
        assert_eq!(lower(&nest, &bad), Err(ScheduleError::BadReorder));
        let dup = Schedule {
            primitives: vec![Primitive::Reorder {
                order: vec![0, 1, 1],
            }],
        };
        assert_eq!(lower(&nest, &dup), Err(ScheduleError::BadReorder));
    }

    #[test]
    fn hoisting_reduction_fissions_the_nest() {
        let nest = dense_nest();
        // Put the reduction axis k (=2) outermost: init/relu (domain {i,j})
        // must fission out of the k-nest.
        let s = Schedule {
            primitives: vec![Primitive::Reorder {
                order: vec![2, 0, 1],
            }],
        };
        let p = lower(&nest, &s).unwrap();
        assert_eq!(p.leaf_count(), 3);
        // Three sibling nests at the root: init-nest, k-nest, relu-nest.
        assert_eq!(p.roots.len(), 3);
        assert_eq!(p.total_iterations(), nest.total_iterations());
    }

    #[test]
    fn annotations_show_up_in_ast() {
        let nest = dense_nest();
        let s = Schedule {
            primitives: vec![
                Primitive::Annotate {
                    axis: 0,
                    kind: LoopKind::Parallel,
                },
                Primitive::Annotate {
                    axis: 1,
                    kind: LoopKind::Vectorize,
                },
            ],
        };
        let p = lower(&nest, &s).unwrap();
        let mut kinds = Vec::new();
        fn walk(n: &AstNode, out: &mut Vec<LoopKind>) {
            if let AstNode::Loop { var, body } = n {
                out.push(var.kind);
                for c in body {
                    walk(c, out);
                }
            }
        }
        for r in &p.roots {
            walk(r, &mut kinds);
        }
        assert!(kinds.contains(&LoopKind::Parallel));
        assert!(kinds.contains(&LoopKind::Vectorize));
    }

    #[test]
    fn annotation_transfers_to_inner_on_split() {
        let nest = dense_nest();
        let s = Schedule {
            primitives: vec![
                Primitive::Annotate {
                    axis: 1,
                    kind: LoopKind::Vectorize,
                },
                Primitive::Split { axis: 1, factor: 4 },
            ],
        };
        let p = lower(&nest, &s).unwrap();
        // Find the vectorized loop; its extent must be the inner factor 4.
        let mut found = None;
        fn walk(n: &AstNode, found: &mut Option<u64>) {
            if let AstNode::Loop { var, body } = n {
                if var.kind == LoopKind::Vectorize {
                    *found = Some(var.extent);
                }
                for c in body {
                    walk(c, found);
                }
            }
        }
        for r in &p.roots {
            walk(r, &mut found);
        }
        assert_eq!(found, Some(4));
    }

    #[test]
    fn split_rewrites_access_strides() {
        let nest = dense_nest();
        let s = Schedule {
            primitives: vec![Primitive::Split { axis: 1, factor: 4 }],
        };
        let p = lower(&nest, &s).unwrap();
        // Find the mac leaf; its B access now strides 1 on the inner j axis
        // and 4 on the outer j axis.
        let mut checked = false;
        p.visit_leaves(|leaf, _| {
            if leaf.kind == crate::expr::ComputeKind::Mac {
                let b_acc = &leaf.accesses[1];
                let strides: Vec<i64> = b_acc.strides.iter().map(|&(_, s)| s).collect();
                assert!(strides.contains(&1));
                assert!(strides.contains(&4));
                checked = true;
            }
        });
        assert!(checked);
    }

    #[test]
    fn sampled_schedules_always_lower() {
        let mut rng = StdRng::seed_from_u64(7);
        for spec in [
            OpSpec::Dense {
                m: 64,
                n: 64,
                k: 64,
            },
            OpSpec::Conv2d {
                n: 1,
                cin: 16,
                hw: 16,
                cout: 32,
                khw: 3,
                stride: 1,
            },
            OpSpec::Softmax {
                rows: 64,
                cols: 128,
            },
            OpSpec::Elementwise {
                n: 1024,
                kind: crate::task::EwKind::Relu,
            },
        ] {
            let nest = spec.canonical_nest();
            for _ in 0..50 {
                let sched = sample_schedule(&nest, &mut rng);
                let p = lower(&nest, &sched).expect("sampled schedule lowers");
                assert_eq!(p.leaf_count(), nest.leaves.len());
                let diff = (p.total_iterations() - nest.total_iterations()).abs();
                assert!(diff < 1e-6, "iterations preserved for {spec:?}");
            }
        }
    }

    #[test]
    fn sampled_schedules_are_diverse() {
        let mut rng = StdRng::seed_from_u64(3);
        let nest = OpSpec::Dense {
            m: 64,
            n: 64,
            k: 64,
        }
        .canonical_nest();
        let mut node_counts = std::collections::HashSet::new();
        for _ in 0..100 {
            let sched = sample_schedule(&nest, &mut rng);
            let p = lower(&nest, &sched).unwrap();
            node_counts.insert(p.node_count());
        }
        assert!(
            node_counts.len() >= 4,
            "expected structural diversity, got {node_counts:?}"
        );
    }

    #[test]
    fn mutation_produces_valid_schedules() {
        let mut rng = StdRng::seed_from_u64(11);
        let nest = OpSpec::Dense {
            m: 32,
            n: 32,
            k: 32,
        }
        .canonical_nest();
        let base = sample_schedule(&nest, &mut rng);
        for _ in 0..30 {
            let m = mutate_schedule(&nest, &base, &mut rng);
            assert!(lower(&nest, &m).is_ok());
        }
    }

    #[test]
    fn divisors_helper() {
        assert_eq!(divisors(12, 64), vec![2, 3, 4, 6, 12]);
        assert_eq!(divisors(7, 64), vec![7]);
        assert!(divisors(1, 64).is_empty());
    }

    #[test]
    fn identity_hash_separates_and_matches() {
        let mut rng = StdRng::seed_from_u64(5);
        let nest = dense_nest();
        let a = sample_schedule(&nest, &mut rng);
        assert_eq!(a.identity_hash(), a.clone().identity_hash());
        // Distinct schedules should (overwhelmingly) hash apart.
        let mut hashes = std::collections::HashSet::new();
        let mut schedules = std::collections::HashSet::new();
        for _ in 0..200 {
            let s = sample_schedule(&nest, &mut rng);
            schedules.insert(format!("{s:?}"));
            hashes.insert(s.identity_hash());
        }
        assert_eq!(hashes.len(), schedules.len());
        // Order of primitives matters (it is an identity, not a set hash).
        let swapped = Schedule {
            primitives: vec![
                Primitive::Split { axis: 1, factor: 4 },
                Primitive::Split { axis: 0, factor: 2 },
            ],
        };
        let straight = Schedule {
            primitives: vec![
                Primitive::Split { axis: 0, factor: 2 },
                Primitive::Split { axis: 1, factor: 4 },
            ],
        };
        assert_ne!(swapped.identity_hash(), straight.identity_hash());
    }

    #[test]
    fn crossover_always_lowers_and_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(21);
        for spec in [
            OpSpec::Dense {
                m: 64,
                n: 64,
                k: 64,
            },
            OpSpec::Conv2d {
                n: 1,
                cin: 16,
                hw: 16,
                cout: 32,
                khw: 3,
                stride: 1,
            },
            OpSpec::Softmax {
                rows: 64,
                cols: 128,
            },
        ] {
            let nest = spec.canonical_nest();
            for _ in 0..30 {
                let a = sample_schedule(&nest, &mut rng);
                let b = sample_schedule(&nest, &mut rng);
                let c = crossover_schedule(&nest, &a, &b);
                assert_eq!(c, crossover_schedule(&nest, &a, &b));
                let p = lower(&nest, &c).expect("crossover lowers");
                assert_eq!(p.leaf_count(), nest.leaves.len());
                let diff = (p.total_iterations() - nest.total_iterations()).abs();
                assert!(diff < 1e-6);
            }
        }
    }

    #[test]
    fn crossover_takes_splits_from_first_parent() {
        let nest = dense_nest();
        let a = Schedule {
            primitives: vec![Primitive::Split { axis: 0, factor: 4 }],
        };
        let b = Schedule {
            primitives: vec![
                Primitive::Split { axis: 1, factor: 8 },
                Primitive::Reorder {
                    order: vec![2, 3, 4, 0],
                },
            ],
        };
        let c = crossover_schedule(&nest, &a, &b);
        let splits: Vec<&Primitive> = c
            .primitives
            .iter()
            .filter(|p| matches!(p, Primitive::Split { .. }))
            .collect();
        assert_eq!(splits, vec![&Primitive::Split { axis: 0, factor: 4 }]);
        lower(&nest, &c).unwrap();
    }

    #[test]
    fn crossover_projects_shared_axis_order_from_second_parent() {
        let nest = dense_nest();
        // No splits anywhere: both parents share the full axis set, so the
        // child's order must be exactly the donor's.
        let a = Schedule::default();
        let b = Schedule {
            primitives: vec![
                Primitive::Reorder {
                    order: vec![2, 0, 1],
                },
                Primitive::Annotate {
                    axis: 1,
                    kind: LoopKind::Vectorize,
                },
            ],
        };
        let c = crossover_schedule(&nest, &a, &b);
        assert!(c.primitives.contains(&Primitive::Reorder {
            order: vec![2, 0, 1]
        }));
        assert!(c.primitives.contains(&Primitive::Annotate {
            axis: 1,
            kind: LoopKind::Vectorize,
        }));
    }
}
