//! Model zoo: DNN architectures lowered to task graphs.
//!
//! Mirrors the paper's dataset composition (§7.1): convolutional networks
//! (ResNet-50, VGG-16, Inception-V3, MobileNet-V2), Transformers (BERT-tiny,
//! BERT-base) and a few extra variants. Each network is a data-flow graph of
//! [`OpSpec`] nodes; deduplicated specs become the task set used for both
//! dataset generation and end-to-end replay.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::task::{EwKind, OpSpec, Task};

/// One node of a network's data-flow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerNode {
    /// The operator this node executes.
    pub spec: OpSpec,
    /// Indices of producer nodes this node depends on.
    pub deps: Vec<usize>,
}

/// A DNN model: a named DAG of operators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Model name, e.g. `"resnet50"`.
    pub name: String,
    /// Batch size the graph was instantiated with.
    pub batch: u64,
    /// Topologically-ordered layer nodes.
    pub layers: Vec<LayerNode>,
}

/// Builder that accumulates layers with dependency tracking.
struct NetBuilder {
    name: String,
    batch: u64,
    layers: Vec<LayerNode>,
}

impl NetBuilder {
    fn new(name: &str, batch: u64) -> Self {
        NetBuilder {
            name: name.into(),
            batch,
            layers: Vec::new(),
        }
    }

    fn push(&mut self, spec: OpSpec, deps: &[usize]) -> usize {
        self.layers.push(LayerNode {
            spec,
            deps: deps.to_vec(),
        });
        self.layers.len() - 1
    }

    fn finish(self) -> Network {
        Network {
            name: self.name,
            batch: self.batch,
            layers: self.layers,
        }
    }
}

impl Network {
    /// Distinct operator specs used by this network.
    pub fn unique_specs(&self) -> Vec<OpSpec> {
        let mut seen = HashMap::new();
        let mut out = Vec::new();
        for l in &self.layers {
            if seen.insert(l.spec, ()).is_none() {
                out.push(l.spec);
            }
        }
        out
    }

    /// Validates that dependencies are topological (deps point backwards).
    pub fn is_topological(&self) -> bool {
        self.layers
            .iter()
            .enumerate()
            .all(|(i, l)| l.deps.iter().all(|&d| d < i))
    }
}

/// ResNet-50 at the given batch size (bottleneck blocks approximated by
/// their distinct conv shapes; real spatial sizes 56/28/14/7).
pub fn resnet50(batch: u64) -> Network {
    let mut b = NetBuilder::new("resnet50", batch);
    // Stem: 7x7 conv approximated at hw=56 then pool.
    let stem = b.push(
        OpSpec::Conv2d {
            n: batch,
            cin: 4,
            hw: 112,
            cout: 64,
            khw: 7,
            stride: 2,
        },
        &[],
    );
    let pool0 = b.push(
        OpSpec::Pool {
            n: batch,
            c: 64,
            hw: 56,
            khw: 2,
            stride: 2,
        },
        &[stem],
    );
    // Stage configuration: (cin, cmid, cout, hw, blocks).
    let stages: [(u64, u64, u64, u64, usize); 4] = [
        (64, 64, 256, 28, 3),
        (256, 128, 512, 14, 4),
        (512, 256, 1024, 7, 6),
        (1024, 512, 2048, 7, 3),
    ];
    let mut prev = pool0;
    for (cin, cmid, cout, hw, blocks) in stages {
        for blk in 0..blocks {
            let cin_b = if blk == 0 { cin } else { cout };
            let c1 = b.push(
                OpSpec::Conv2d {
                    n: batch,
                    cin: cin_b,
                    hw,
                    cout: cmid,
                    khw: 1,
                    stride: 1,
                },
                &[prev],
            );
            let c2 = b.push(
                OpSpec::Conv2d {
                    n: batch,
                    cin: cmid,
                    hw,
                    cout: cmid,
                    khw: 3,
                    stride: 1,
                },
                &[c1],
            );
            let c3 = b.push(
                OpSpec::Conv2d {
                    n: batch,
                    cin: cmid,
                    hw,
                    cout,
                    khw: 1,
                    stride: 1,
                },
                &[c2],
            );
            let add = b.push(
                OpSpec::Elementwise {
                    n: batch * cout * hw * hw,
                    kind: EwKind::Add,
                },
                &[c3, prev],
            );
            prev = add;
        }
    }
    let pool = b.push(
        OpSpec::Pool {
            n: batch,
            c: 2048,
            hw: 7,
            khw: 7,
            stride: 7,
        },
        &[prev],
    );
    b.push(
        OpSpec::Dense {
            m: batch,
            n: 1000,
            k: 2048,
        },
        &[pool],
    );
    b.finish()
}

/// ResNet-18 (smaller variant, adds model diversity).
pub fn resnet18(batch: u64) -> Network {
    let mut b = NetBuilder::new("resnet18", batch);
    let stem = b.push(
        OpSpec::Conv2d {
            n: batch,
            cin: 4,
            hw: 112,
            cout: 64,
            khw: 7,
            stride: 2,
        },
        &[],
    );
    let mut prev = b.push(
        OpSpec::Pool {
            n: batch,
            c: 64,
            hw: 56,
            khw: 2,
            stride: 2,
        },
        &[stem],
    );
    let stages: [(u64, u64, usize); 4] = [(64, 28, 2), (128, 14, 2), (256, 7, 2), (512, 7, 2)];
    let mut cin = 64;
    for (c, hw, blocks) in stages {
        for _ in 0..blocks {
            let c1 = b.push(
                OpSpec::Conv2d {
                    n: batch,
                    cin,
                    hw,
                    cout: c,
                    khw: 3,
                    stride: 1,
                },
                &[prev],
            );
            let c2 = b.push(
                OpSpec::Conv2d {
                    n: batch,
                    cin: c,
                    hw,
                    cout: c,
                    khw: 3,
                    stride: 1,
                },
                &[c1],
            );
            let add = b.push(
                OpSpec::Elementwise {
                    n: batch * c * hw * hw,
                    kind: EwKind::Add,
                },
                &[c2, prev],
            );
            prev = add;
            cin = c;
        }
    }
    let pool = b.push(
        OpSpec::Pool {
            n: batch,
            c: 512,
            hw: 7,
            khw: 7,
            stride: 7,
        },
        &[prev],
    );
    b.push(
        OpSpec::Dense {
            m: batch,
            n: 1000,
            k: 512,
        },
        &[pool],
    );
    b.finish()
}

/// MobileNet-V2: inverted residuals = pointwise expand, depthwise, pointwise
/// project.
pub fn mobilenet_v2(batch: u64) -> Network {
    let mut b = NetBuilder::new("mobilenet_v2", batch);
    let stem = b.push(
        OpSpec::Conv2d {
            n: batch,
            cin: 4,
            hw: 112,
            cout: 32,
            khw: 3,
            stride: 2,
        },
        &[],
    );
    // (cin, cout, hw, expansion, blocks).
    let stages: [(u64, u64, u64, u64, usize); 5] = [
        (32, 16, 56, 1, 1),
        (16, 24, 56, 6, 2),
        (24, 32, 28, 6, 3),
        (32, 96, 14, 6, 3),
        (96, 160, 7, 6, 3),
    ];
    let mut prev = stem;
    for (cin0, cout, hw, exp, blocks) in stages {
        let mut cin = cin0;
        for blk in 0..blocks {
            let cmid = cin * exp;
            let e = b.push(
                OpSpec::Conv2d {
                    n: batch,
                    cin,
                    hw,
                    cout: cmid,
                    khw: 1,
                    stride: 1,
                },
                &[prev],
            );
            let d = b.push(
                OpSpec::DepthwiseConv {
                    n: batch,
                    c: cmid,
                    hw,
                    khw: 3,
                    stride: 1,
                },
                &[e],
            );
            let p = b.push(
                OpSpec::Conv2d {
                    n: batch,
                    cin: cmid,
                    hw,
                    cout,
                    khw: 1,
                    stride: 1,
                },
                &[d],
            );
            prev = if blk > 0 && cin == cout {
                b.push(
                    OpSpec::Elementwise {
                        n: batch * cout * hw * hw,
                        kind: EwKind::Add,
                    },
                    &[p, prev],
                )
            } else {
                p
            };
            cin = cout;
        }
    }
    let head = b.push(
        OpSpec::Conv2d {
            n: batch,
            cin: 160,
            hw: 7,
            cout: 1280,
            khw: 1,
            stride: 1,
        },
        &[prev],
    );
    let pool = b.push(
        OpSpec::Pool {
            n: batch,
            c: 1280,
            hw: 7,
            khw: 7,
            stride: 7,
        },
        &[head],
    );
    b.push(
        OpSpec::Dense {
            m: batch,
            n: 1000,
            k: 1280,
        },
        &[pool],
    );
    b.finish()
}

/// A BERT encoder stack with the given hidden size / layer count / heads.
fn bert(name: &str, batch: u64, hidden: u64, layers: usize, heads: u64, seq: u64) -> Network {
    let mut b = NetBuilder::new(name, batch);
    let tokens = batch * seq;
    let dh = hidden / heads;
    let mut prev = b.push(
        OpSpec::Dense {
            m: tokens,
            n: hidden,
            k: hidden,
        },
        &[],
    ); // embedding proj
    for _ in 0..layers {
        let q = b.push(
            OpSpec::Dense {
                m: tokens,
                n: hidden,
                k: hidden,
            },
            &[prev],
        );
        let k = b.push(
            OpSpec::Dense {
                m: tokens,
                n: hidden,
                k: hidden,
            },
            &[prev],
        );
        let v = b.push(
            OpSpec::Dense {
                m: tokens,
                n: hidden,
                k: hidden,
            },
            &[prev],
        );
        let scores = b.push(
            OpSpec::BatchMatmul {
                b: batch * heads,
                m: seq,
                n: seq,
                k: dh,
            },
            &[q, k],
        );
        let probs = b.push(
            OpSpec::Softmax {
                rows: batch * heads * seq,
                cols: seq,
            },
            &[scores],
        );
        let ctx = b.push(
            OpSpec::BatchMatmul {
                b: batch * heads,
                m: seq,
                n: dh,
                k: seq,
            },
            &[probs, v],
        );
        let proj = b.push(
            OpSpec::Dense {
                m: tokens,
                n: hidden,
                k: hidden,
            },
            &[ctx],
        );
        let add1 = b.push(
            OpSpec::Elementwise {
                n: tokens * hidden,
                kind: EwKind::Add,
            },
            &[proj, prev],
        );
        let ln1 = b.push(
            OpSpec::LayerNorm {
                rows: tokens,
                cols: hidden,
            },
            &[add1],
        );
        let ff1 = b.push(
            OpSpec::Dense {
                m: tokens,
                n: 4 * hidden,
                k: hidden,
            },
            &[ln1],
        );
        let gelu = b.push(
            OpSpec::Elementwise {
                n: tokens * 4 * hidden,
                kind: EwKind::Gelu,
            },
            &[ff1],
        );
        let ff2 = b.push(
            OpSpec::Dense {
                m: tokens,
                n: hidden,
                k: 4 * hidden,
            },
            &[gelu],
        );
        let add2 = b.push(
            OpSpec::Elementwise {
                n: tokens * hidden,
                kind: EwKind::Add,
            },
            &[ff2, ln1],
        );
        let ln2 = b.push(
            OpSpec::LayerNorm {
                rows: tokens,
                cols: hidden,
            },
            &[add2],
        );
        prev = ln2;
    }
    b.push(
        OpSpec::Dense {
            m: batch,
            n: 2,
            k: hidden,
        },
        &[prev],
    );
    b.finish()
}

/// BERT-tiny (2 layers, hidden 128).
pub fn bert_tiny(batch: u64) -> Network {
    bert("bert_tiny", batch, 128, 2, 2, 128)
}

/// BERT-base (12 layers, hidden 768).
pub fn bert_base(batch: u64) -> Network {
    bert("bert_base", batch, 768, 12, 12, 128)
}

/// VGG-16: plain conv stacks plus large dense classifier layers.
pub fn vgg16(batch: u64) -> Network {
    let mut b = NetBuilder::new("vgg16", batch);
    let cfg: [(u64, u64, usize); 5] = [
        (64, 112, 2),
        (128, 56, 2),
        (256, 28, 3),
        (512, 14, 3),
        (512, 7, 3),
    ];
    let mut prev = None;
    let mut cin = 4;
    for (c, hw, reps) in cfg {
        for _ in 0..reps {
            let deps: Vec<usize> = prev.into_iter().collect();
            let conv = b.push(
                OpSpec::Conv2d {
                    n: batch,
                    cin,
                    hw,
                    cout: c,
                    khw: 3,
                    stride: 1,
                },
                &deps,
            );
            prev = Some(conv);
            cin = c;
        }
        let pool = b.push(
            OpSpec::Pool {
                n: batch,
                c,
                hw,
                khw: 2,
                stride: 2,
            },
            &[prev.unwrap()],
        );
        prev = Some(pool);
    }
    let f1 = b.push(
        OpSpec::Dense {
            m: batch,
            n: 4096,
            k: 512 * 3 * 3,
        },
        &[prev.unwrap()],
    );
    let f2 = b.push(
        OpSpec::Dense {
            m: batch,
            n: 4096,
            k: 4096,
        },
        &[f1],
    );
    b.push(
        OpSpec::Dense {
            m: batch,
            n: 1000,
            k: 4096,
        },
        &[f2],
    );
    b.finish()
}

/// Inception-V3 approximation: mixed blocks with parallel branches
/// (exercises the replayer's DAG scheduling).
pub fn inception_v3(batch: u64) -> Network {
    let mut b = NetBuilder::new("inception_v3", batch);
    let stem = b.push(
        OpSpec::Conv2d {
            n: batch,
            cin: 4,
            hw: 112,
            cout: 32,
            khw: 3,
            stride: 2,
        },
        &[],
    );
    let c2 = b.push(
        OpSpec::Conv2d {
            n: batch,
            cin: 32,
            hw: 56,
            cout: 64,
            khw: 3,
            stride: 2,
        },
        &[stem],
    );
    let mut prev = b.push(
        OpSpec::Pool {
            n: batch,
            c: 64,
            hw: 28,
            khw: 2,
            stride: 2,
        },
        &[c2],
    );
    let mut cin = 64;
    for (hw, c) in [(14u64, 128u64), (14, 256), (7, 256), (7, 512)] {
        // Four parallel branches.
        let b1 = b.push(
            OpSpec::Conv2d {
                n: batch,
                cin,
                hw,
                cout: c / 4,
                khw: 1,
                stride: 1,
            },
            &[prev],
        );
        let b2a = b.push(
            OpSpec::Conv2d {
                n: batch,
                cin,
                hw,
                cout: c / 4,
                khw: 1,
                stride: 1,
            },
            &[prev],
        );
        let b2 = b.push(
            OpSpec::Conv2d {
                n: batch,
                cin: c / 4,
                hw,
                cout: c / 4,
                khw: 3,
                stride: 1,
            },
            &[b2a],
        );
        let b3a = b.push(
            OpSpec::Conv2d {
                n: batch,
                cin,
                hw,
                cout: c / 4,
                khw: 1,
                stride: 1,
            },
            &[prev],
        );
        let b3 = b.push(
            OpSpec::Conv2d {
                n: batch,
                cin: c / 4,
                hw,
                cout: c / 4,
                khw: 5,
                stride: 1,
            },
            &[b3a],
        );
        let b4a = b.push(
            OpSpec::Pool {
                n: batch,
                c: cin,
                hw,
                khw: 1,
                stride: 1,
            },
            &[prev],
        );
        let b4 = b.push(
            OpSpec::Conv2d {
                n: batch,
                cin,
                hw,
                cout: c / 4,
                khw: 1,
                stride: 1,
            },
            &[b4a],
        );
        // Concat is free; model it as an element-wise pass over the output.
        let cat = b.push(
            OpSpec::Elementwise {
                n: batch * c * hw * hw,
                kind: EwKind::Add,
            },
            &[b1, b2, b3, b4],
        );
        prev = cat;
        cin = c;
    }
    let pool = b.push(
        OpSpec::Pool {
            n: batch,
            c: 512,
            hw: 7,
            khw: 7,
            stride: 7,
        },
        &[prev],
    );
    b.push(
        OpSpec::Dense {
            m: batch,
            n: 1000,
            k: 512,
        },
        &[pool],
    );
    b.finish()
}

/// A GPT-2-small-like decoder stack (extra transformer diversity).
pub fn gpt2_small(batch: u64) -> Network {
    bert("gpt2_small", batch, 768, 6, 12, 64)
}

/// A small fully-dense MLP network (op-distribution outlier).
pub fn mlp_mixer(batch: u64) -> Network {
    let mut b = NetBuilder::new("mlp_mixer", batch);
    let tokens = batch * 64;
    let mut prev = b.push(
        OpSpec::Dense {
            m: tokens,
            n: 256,
            k: 192,
        },
        &[],
    );
    for _ in 0..6 {
        let d1 = b.push(
            OpSpec::Dense {
                m: tokens,
                n: 512,
                k: 256,
            },
            &[prev],
        );
        let g = b.push(
            OpSpec::Elementwise {
                n: tokens * 512,
                kind: EwKind::Gelu,
            },
            &[d1],
        );
        let d2 = b.push(
            OpSpec::Dense {
                m: tokens,
                n: 256,
                k: 512,
            },
            &[g],
        );
        let ln = b.push(
            OpSpec::LayerNorm {
                rows: tokens,
                cols: 256,
            },
            &[d2],
        );
        prev = ln;
    }
    b.push(
        OpSpec::Dense {
            m: batch,
            n: 1000,
            k: 256,
        },
        &[prev],
    );
    b.finish()
}

/// All zoo networks at a batch size.
pub fn all_networks(batch: u64) -> Vec<Network> {
    vec![
        resnet50(batch),
        resnet18(batch),
        mobilenet_v2(batch),
        bert_tiny(batch),
        bert_base(batch),
        vgg16(batch),
        inception_v3(batch),
        gpt2_small(batch),
        mlp_mixer(batch),
    ]
}

/// The paper's hold-out networks for cross-model evaluation (§7.1).
pub const HOLD_OUT: [&str; 3] = ["resnet50", "mobilenet_v2", "bert_tiny"];

/// Builds the deduplicated task list for a set of networks, tagging each
/// task with the first network that uses it.
pub fn build_tasks(networks: &[Network]) -> Vec<Task> {
    let mut seen: HashMap<OpSpec, u32> = HashMap::new();
    let mut out = Vec::new();
    for net in networks {
        for (i, layer) in net.layers.iter().enumerate() {
            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(layer.spec) {
                let id = out.len() as u32;
                e.insert(id);
                out.push(Task {
                    id,
                    spec: layer.spec,
                    name: format!("{}.{}.{}", net.name, layer.spec.kind_name(), i),
                });
            }
        }
    }
    out
}

/// Maps each layer of a network to its task id within `tasks`.
pub fn layer_task_ids(net: &Network, tasks: &[Task]) -> Vec<u32> {
    let index: HashMap<OpSpec, u32> = tasks.iter().map(|t| (t.spec, t.id)).collect();
    net.layers
        .iter()
        .map(|l| *index.get(&l.spec).expect("task exists for layer"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_networks_are_topological() {
        for net in all_networks(1) {
            assert!(net.is_topological(), "{}", net.name);
            assert!(net.layers.len() >= 10, "{} too small", net.name);
        }
    }

    #[test]
    fn networks_have_distinct_op_mixes() {
        let nets = all_networks(1);
        let mobilenet = nets.iter().find(|n| n.name == "mobilenet_v2").unwrap();
        let bert = nets.iter().find(|n| n.name == "bert_base").unwrap();
        let has_depthwise = |n: &Network| {
            n.layers
                .iter()
                .any(|l| matches!(l.spec, OpSpec::DepthwiseConv { .. }))
        };
        let has_bmm = |n: &Network| {
            n.layers
                .iter()
                .any(|l| matches!(l.spec, OpSpec::BatchMatmul { .. }))
        };
        assert!(has_depthwise(mobilenet));
        assert!(!has_depthwise(bert));
        assert!(has_bmm(bert));
        assert!(!has_bmm(mobilenet));
    }

    #[test]
    fn task_dedup_is_consistent() {
        let nets = all_networks(1);
        let tasks = build_tasks(&nets);
        // Ids are dense and unique.
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.id as usize, i);
        }
        // Every layer of every network maps to a task.
        for net in &nets {
            let ids = layer_task_ids(net, &tasks);
            assert_eq!(ids.len(), net.layers.len());
        }
        // Dedup: fewer tasks than total layers.
        let total_layers: usize = nets.iter().map(|n| n.layers.len()).sum();
        assert!(tasks.len() < total_layers);
        assert!(
            tasks.len() > 50,
            "want a rich task set, got {}",
            tasks.len()
        );
    }

    #[test]
    fn batch_size_scales_shapes() {
        let n1 = resnet50(1);
        let n4 = resnet50(4);
        let f1: f64 = n1.layers.iter().map(|l| l.spec.flops()).sum();
        let f4: f64 = n4.layers.iter().map(|l| l.spec.flops()).sum();
        assert!(f4 > 3.5 * f1 && f4 < 4.5 * f1);
    }

    #[test]
    fn every_spec_produces_a_lowerable_nest() {
        use crate::schedule::{lower, Schedule};
        let nets = all_networks(1);
        let tasks = build_tasks(&nets);
        for t in &tasks {
            let nest = t.spec.canonical_nest();
            lower(&nest, &Schedule::default()).expect("canonical nest lowers");
        }
    }

    #[test]
    fn inception_has_parallel_branches() {
        let net = inception_v3(1);
        // Some node must be depended on by more than one consumer.
        let mut consumers = vec![0usize; net.layers.len()];
        for l in &net.layers {
            for &d in &l.deps {
                consumers[d] += 1;
            }
        }
        assert!(consumers.iter().any(|&c| c >= 3));
    }

    #[test]
    fn hold_out_networks_exist() {
        let nets = all_networks(1);
        for h in HOLD_OUT {
            assert!(nets.iter().any(|n| n.name == h), "{h}");
        }
    }
}
