//! A loop-nest tensor IR: the TVM-TIR substitute for the CDMPP reproduction.
//!
//! The paper extracts features from TVM tensor programs (TIR). This crate
//! provides the equivalent substrate built from scratch:
//!
//! * [`expr`]: leaf computation statements with symbolic memory accesses.
//! * [`ast`]: the loop-nest AST (Fig 1c) with pre-order serialization
//!   (Fig 1d) that drives the compact-AST features.
//! * [`task`]: operator specs ([`OpSpec`]) and their canonical loop nests.
//! * [`schedule`]: Ansor-style schedule primitives (split / reorder /
//!   annotate), lowering, and a random schedule sampler.
//! * [`zoo`]: DNN architectures (ResNet, MobileNet, BERT, VGG, Inception…)
//!   as task DAGs for dataset generation and end-to-end replay.

pub mod ast;
pub mod expr;
pub mod schedule;
pub mod task;
pub mod zoo;

pub use ast::{AstNode, LoopKind, LoopVar, SerEntry, TensorProgram};
pub use expr::{AxisId, Buffer, BufferId, ComputeKind, LeafStmt, MemAccess};
pub use schedule::{
    crossover_schedule, lower, mutate_schedule, sample_schedule, Primitive, Schedule, ScheduleError,
};
pub use task::{AxisInfo, EwKind, Nest, OpSpec, Task};
pub use zoo::{all_networks, build_tasks, layer_task_ids, LayerNode, Network, HOLD_OUT};
