//! Tasks: computational subgraphs lowered to canonical loop nests.
//!
//! In TVM terms a *task* is one computational subgraph (one or a few fused
//! operators) for which the auto-scheduler searches tensor programs. Each
//! [`OpSpec`] here defines the canonical (untransformed) loop nest; the
//! `schedule` module then derives concrete tensor programs from it.

use serde::{Deserialize, Serialize};

use crate::expr::{AxisId, Buffer, ComputeKind, LeafStmt, MemAccess};

/// Element-wise operator flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EwKind {
    /// `max(x, 0)`.
    Relu,
    /// Binary addition (residual connections).
    Add,
    /// Bias broadcast-add.
    BiasAdd,
    /// GELU approximation (uses transcendentals).
    Gelu,
}

/// Operator specification: the shape-parameterized computation of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpSpec {
    /// Dense / fully-connected: `C[m,n] = sum_k A[m,k] B[k,n]` (+ ReLU).
    Dense {
        /// Rows of the output.
        m: u64,
        /// Columns of the output.
        n: u64,
        /// Reduction length.
        k: u64,
    },
    /// Batched matrix multiplication (attention scores / context).
    BatchMatmul {
        /// Batch size (e.g. heads × sequence blocks).
        b: u64,
        /// Rows.
        m: u64,
        /// Columns.
        n: u64,
        /// Reduction length.
        k: u64,
    },
    /// 2-D convolution with square kernel and "same"-style padding.
    Conv2d {
        /// Batch.
        n: u64,
        /// Input channels.
        cin: u64,
        /// Spatial height = width of the input.
        hw: u64,
        /// Output channels.
        cout: u64,
        /// Kernel height = width.
        khw: u64,
        /// Stride.
        stride: u64,
    },
    /// Depthwise 2-D convolution (MobileNet).
    DepthwiseConv {
        /// Batch.
        n: u64,
        /// Channels.
        c: u64,
        /// Spatial size.
        hw: u64,
        /// Kernel size.
        khw: u64,
        /// Stride.
        stride: u64,
    },
    /// Max pooling.
    Pool {
        /// Batch.
        n: u64,
        /// Channels.
        c: u64,
        /// Spatial size.
        hw: u64,
        /// Window size.
        khw: u64,
        /// Stride.
        stride: u64,
    },
    /// Row-wise softmax over a `[rows, cols]` matrix.
    Softmax {
        /// Number of independent rows.
        rows: u64,
        /// Row width.
        cols: u64,
    },
    /// Layer normalization over the trailing axis of `[rows, cols]`.
    LayerNorm {
        /// Number of independent rows.
        rows: u64,
        /// Row width.
        cols: u64,
    },
    /// Element-wise map over `n` elements.
    Elementwise {
        /// Number of elements.
        n: u64,
        /// Flavor.
        kind: EwKind,
    },
}

/// A canonical axis of a task's iteration domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AxisInfo {
    /// Axis identity.
    pub id: AxisId,
    /// Iteration count.
    pub extent: u64,
    /// Whether this is a reduction axis.
    pub is_reduction: bool,
}

/// A canonical loop nest: axes, leaves (with iteration domains) and buffers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nest {
    /// All axes, in canonical outermost-first order.
    pub axes: Vec<AxisInfo>,
    /// Leaf statements in program order; `LeafStmt::domain` lists the axes
    /// each statement ranges over.
    pub leaves: Vec<LeafStmt>,
    /// Buffers referenced by the leaves.
    pub buffers: Vec<Buffer>,
}

impl OpSpec {
    /// Total floating-point operations of this operator.
    pub fn flops(&self) -> f64 {
        match *self {
            OpSpec::Dense { m, n, k } => 2.0 * (m * n * k) as f64,
            OpSpec::BatchMatmul { b, m, n, k } => 2.0 * (b * m * n * k) as f64,
            OpSpec::Conv2d {
                n,
                cin,
                hw,
                cout,
                khw,
                stride,
            } => {
                let o = hw / stride;
                2.0 * (n * cout * o * o * cin * khw * khw) as f64
            }
            OpSpec::DepthwiseConv {
                n,
                c,
                hw,
                khw,
                stride,
            } => {
                let o = hw / stride;
                2.0 * (n * c * o * o * khw * khw) as f64
            }
            OpSpec::Pool {
                n,
                c,
                hw,
                khw,
                stride,
            } => {
                let o = hw / stride;
                (n * c * o * o * khw * khw) as f64
            }
            OpSpec::Softmax { rows, cols } => 5.0 * (rows * cols) as f64,
            OpSpec::LayerNorm { rows, cols } => 8.0 * (rows * cols) as f64,
            OpSpec::Elementwise { n, kind } => {
                let per = match kind {
                    EwKind::Gelu => 8.0,
                    _ => 1.0,
                };
                per * n as f64
            }
        }
    }

    /// Short kind name for reporting.
    pub fn kind_name(&self) -> &'static str {
        match self {
            OpSpec::Dense { .. } => "dense",
            OpSpec::BatchMatmul { .. } => "batch_matmul",
            OpSpec::Conv2d { .. } => "conv2d",
            OpSpec::DepthwiseConv { .. } => "depthwise_conv",
            OpSpec::Pool { .. } => "pool",
            OpSpec::Softmax { .. } => "softmax",
            OpSpec::LayerNorm { .. } => "layer_norm",
            OpSpec::Elementwise { .. } => "elementwise",
        }
    }

    /// Numeric id of the operator class (used by op-id-based baselines).
    pub fn class_id(&self) -> usize {
        match self {
            OpSpec::Dense { .. } => 0,
            OpSpec::BatchMatmul { .. } => 1,
            OpSpec::Conv2d { .. } => 2,
            OpSpec::DepthwiseConv { .. } => 3,
            OpSpec::Pool { .. } => 4,
            OpSpec::Softmax { .. } => 5,
            OpSpec::LayerNorm { .. } => 6,
            OpSpec::Elementwise { .. } => 7,
        }
    }

    /// Up-to-six shape parameters (zero-padded), for op-level baselines.
    pub fn shape_params(&self) -> [u64; 6] {
        match *self {
            OpSpec::Dense { m, n, k } => [m, n, k, 0, 0, 0],
            OpSpec::BatchMatmul { b, m, n, k } => [b, m, n, k, 0, 0],
            OpSpec::Conv2d {
                n,
                cin,
                hw,
                cout,
                khw,
                stride,
            } => [n, cin, hw, cout, khw, stride],
            OpSpec::DepthwiseConv {
                n,
                c,
                hw,
                khw,
                stride,
            } => [n, c, hw, khw, stride, 0],
            OpSpec::Pool {
                n,
                c,
                hw,
                khw,
                stride,
            } => [n, c, hw, khw, stride, 0],
            OpSpec::Softmax { rows, cols } => [rows, cols, 0, 0, 0, 0],
            OpSpec::LayerNorm { rows, cols } => [rows, cols, 0, 0, 0, 0],
            OpSpec::Elementwise { n, kind } => [n, kind as u64, 0, 0, 0, 0],
        }
    }

    /// Builds the canonical (untransformed) loop nest for this operator.
    pub fn canonical_nest(&self) -> Nest {
        match *self {
            OpSpec::Dense { m, n, k } => dense_nest(m, n, k),
            OpSpec::BatchMatmul { b, m, n, k } => batch_matmul_nest(b, m, n, k),
            OpSpec::Conv2d {
                n,
                cin,
                hw,
                cout,
                khw,
                stride,
            } => conv2d_nest(n, cin, hw, cout, khw, stride),
            OpSpec::DepthwiseConv {
                n,
                c,
                hw,
                khw,
                stride,
            } => depthwise_nest(n, c, hw, khw, stride),
            OpSpec::Pool {
                n,
                c,
                hw,
                khw,
                stride,
            } => pool_nest(n, c, hw, khw, stride),
            OpSpec::Softmax { rows, cols } => softmax_nest(rows, cols),
            OpSpec::LayerNorm { rows, cols } => layer_norm_nest(rows, cols),
            OpSpec::Elementwise { n, kind } => elementwise_nest(n, kind),
        }
    }
}

fn axis(id: AxisId, extent: u64, is_reduction: bool) -> AxisInfo {
    AxisInfo {
        id,
        extent,
        is_reduction,
    }
}

fn dense_nest(m: u64, n: u64, k: u64) -> Nest {
    // Axes: 0=i(m) 1=j(n) 2=k(K).
    let axes = vec![axis(0, m, false), axis(1, n, false), axis(2, k, true)];
    let buffers = vec![
        Buffer::f32("a", m * k),
        Buffer::f32("b", k * n),
        Buffer::f32("c", m * n),
    ];
    let init = LeafStmt {
        kind: ComputeKind::Init,
        flops_per_iter: ComputeKind::Init.op_cost(),
        accesses: vec![MemAccess::write(2, vec![(0, n as i64), (1, 1)])],
        domain: vec![0, 1],
    };
    let mac = LeafStmt {
        kind: ComputeKind::Mac,
        flops_per_iter: ComputeKind::Mac.op_cost(),
        accesses: vec![
            MemAccess::read(0, vec![(0, k as i64), (2, 1)]),
            MemAccess::read(1, vec![(2, n as i64), (1, 1)]),
            MemAccess::write(2, vec![(0, n as i64), (1, 1)]),
        ],
        domain: vec![0, 1, 2],
    };
    let relu = LeafStmt {
        kind: ComputeKind::Max,
        flops_per_iter: ComputeKind::Max.op_cost(),
        accesses: vec![MemAccess::write(2, vec![(0, n as i64), (1, 1)])],
        domain: vec![0, 1],
    };
    Nest {
        axes,
        leaves: vec![init, mac, relu],
        buffers,
    }
}

fn batch_matmul_nest(b: u64, m: u64, n: u64, k: u64) -> Nest {
    // Axes: 0=b 1=i 2=j 3=k.
    let axes = vec![
        axis(0, b, false),
        axis(1, m, false),
        axis(2, n, false),
        axis(3, k, true),
    ];
    let buffers = vec![
        Buffer::f32("a", b * m * k),
        Buffer::f32("b", b * k * n),
        Buffer::f32("c", b * m * n),
    ];
    let c_str = vec![(0, (m * n) as i64), (1, n as i64), (2, 1)];
    let init = LeafStmt {
        kind: ComputeKind::Init,
        flops_per_iter: ComputeKind::Init.op_cost(),
        accesses: vec![MemAccess::write(2, c_str.clone())],
        domain: vec![0, 1, 2],
    };
    let mac = LeafStmt {
        kind: ComputeKind::Mac,
        flops_per_iter: ComputeKind::Mac.op_cost(),
        accesses: vec![
            MemAccess::read(0, vec![(0, (m * k) as i64), (1, k as i64), (3, 1)]),
            MemAccess::read(1, vec![(0, (k * n) as i64), (3, n as i64), (2, 1)]),
            MemAccess::write(2, c_str),
        ],
        domain: vec![0, 1, 2, 3],
    };
    Nest {
        axes,
        leaves: vec![init, mac],
        buffers,
    }
}

fn conv2d_nest(n: u64, cin: u64, hw: u64, cout: u64, khw: u64, stride: u64) -> Nest {
    let o = hw / stride;
    // Axes: 0=n 1=oc 2=oh 3=ow 4=ic 5=kh 6=kw.
    let axes = vec![
        axis(0, n, false),
        axis(1, cout, false),
        axis(2, o, false),
        axis(3, o, false),
        axis(4, cin, true),
        axis(5, khw, true),
        axis(6, khw, true),
    ];
    let buffers = vec![
        Buffer::f32("input", n * cin * hw * hw),
        Buffer::f32("weight", cout * cin * khw * khw),
        Buffer::f32("output", n * cout * o * o),
    ];
    let out_str = vec![
        (0, (cout * o * o) as i64),
        (1, (o * o) as i64),
        (2, o as i64),
        (3, 1),
    ];
    let init = LeafStmt {
        kind: ComputeKind::Init,
        flops_per_iter: ComputeKind::Init.op_cost(),
        accesses: vec![MemAccess::write(2, out_str.clone())],
        domain: vec![0, 1, 2, 3],
    };
    let mac = LeafStmt {
        kind: ComputeKind::Mac,
        flops_per_iter: ComputeKind::Mac.op_cost(),
        accesses: vec![
            MemAccess::read(
                0,
                vec![
                    (0, (cin * hw * hw) as i64),
                    (4, (hw * hw) as i64),
                    (2, (stride * hw) as i64),
                    (5, hw as i64),
                    (3, stride as i64),
                    (6, 1),
                ],
            ),
            MemAccess::read(
                1,
                vec![
                    (1, (cin * khw * khw) as i64),
                    (4, (khw * khw) as i64),
                    (5, khw as i64),
                    (6, 1),
                ],
            ),
            MemAccess::write(2, out_str.clone()),
        ],
        domain: vec![0, 1, 2, 3, 4, 5, 6],
    };
    let relu = LeafStmt {
        kind: ComputeKind::Max,
        flops_per_iter: ComputeKind::Max.op_cost(),
        accesses: vec![MemAccess::write(2, out_str)],
        domain: vec![0, 1, 2, 3],
    };
    Nest {
        axes,
        leaves: vec![init, mac, relu],
        buffers,
    }
}

fn depthwise_nest(n: u64, c: u64, hw: u64, khw: u64, stride: u64) -> Nest {
    let o = hw / stride;
    // Axes: 0=n 1=c 2=oh 3=ow 4=kh 5=kw.
    let axes = vec![
        axis(0, n, false),
        axis(1, c, false),
        axis(2, o, false),
        axis(3, o, false),
        axis(4, khw, true),
        axis(5, khw, true),
    ];
    let buffers = vec![
        Buffer::f32("input", n * c * hw * hw),
        Buffer::f32("weight", c * khw * khw),
        Buffer::f32("output", n * c * o * o),
    ];
    let out_str = vec![
        (0, (c * o * o) as i64),
        (1, (o * o) as i64),
        (2, o as i64),
        (3, 1),
    ];
    let init = LeafStmt {
        kind: ComputeKind::Init,
        flops_per_iter: ComputeKind::Init.op_cost(),
        accesses: vec![MemAccess::write(2, out_str.clone())],
        domain: vec![0, 1, 2, 3],
    };
    let mac = LeafStmt {
        kind: ComputeKind::Mac,
        flops_per_iter: ComputeKind::Mac.op_cost(),
        accesses: vec![
            MemAccess::read(
                0,
                vec![
                    (0, (c * hw * hw) as i64),
                    (1, (hw * hw) as i64),
                    (2, (stride * hw) as i64),
                    (4, hw as i64),
                    (3, stride as i64),
                    (5, 1),
                ],
            ),
            MemAccess::read(1, vec![(1, (khw * khw) as i64), (4, khw as i64), (5, 1)]),
            MemAccess::write(2, out_str),
        ],
        domain: vec![0, 1, 2, 3, 4, 5],
    };
    Nest {
        axes,
        leaves: vec![init, mac],
        buffers,
    }
}

fn pool_nest(n: u64, c: u64, hw: u64, khw: u64, stride: u64) -> Nest {
    let o = hw / stride;
    // Axes: 0=n 1=c 2=oh 3=ow 4=kh 5=kw.
    let axes = vec![
        axis(0, n, false),
        axis(1, c, false),
        axis(2, o, false),
        axis(3, o, false),
        axis(4, khw, true),
        axis(5, khw, true),
    ];
    let buffers = vec![
        Buffer::f32("input", n * c * hw * hw),
        Buffer::f32("output", n * c * o * o),
    ];
    let out_str = vec![
        (0, (c * o * o) as i64),
        (1, (o * o) as i64),
        (2, o as i64),
        (3, 1),
    ];
    let init = LeafStmt {
        kind: ComputeKind::Init,
        flops_per_iter: ComputeKind::Init.op_cost(),
        accesses: vec![MemAccess::write(1, out_str.clone())],
        domain: vec![0, 1, 2, 3],
    };
    let reduce = LeafStmt {
        kind: ComputeKind::Max,
        flops_per_iter: ComputeKind::Max.op_cost(),
        accesses: vec![
            MemAccess::read(
                0,
                vec![
                    (0, (c * hw * hw) as i64),
                    (1, (hw * hw) as i64),
                    (2, (stride * hw) as i64),
                    (4, hw as i64),
                    (3, stride as i64),
                    (5, 1),
                ],
            ),
            MemAccess::write(1, out_str),
        ],
        domain: vec![0, 1, 2, 3, 4, 5],
    };
    Nest {
        axes,
        leaves: vec![init, reduce],
        buffers,
    }
}

fn softmax_nest(rows: u64, cols: u64) -> Nest {
    // Four passes, each with its own column axis (loop fission is the
    // canonical TIR form): 0=i, 1..=4 = per-pass column axes.
    let axes = vec![
        axis(0, rows, false),
        axis(1, cols, true),
        axis(2, cols, false),
        axis(3, cols, true),
        axis(4, cols, false),
    ];
    let buffers = vec![
        Buffer::f32("x", rows * cols),
        Buffer::f32("rowstat", rows),
        Buffer::f32("y", rows * cols),
    ];
    let maxr = LeafStmt {
        kind: ComputeKind::Max,
        flops_per_iter: ComputeKind::Max.op_cost(),
        accesses: vec![
            MemAccess::read(0, vec![(0, cols as i64), (1, 1)]),
            MemAccess::write(1, vec![(0, 1)]),
        ],
        domain: vec![0, 1],
    };
    let expm = LeafStmt {
        kind: ComputeKind::Exp,
        flops_per_iter: ComputeKind::Exp.op_cost(),
        accesses: vec![
            MemAccess::read(0, vec![(0, cols as i64), (2, 1)]),
            MemAccess::read(1, vec![(0, 1)]),
            MemAccess::write(2, vec![(0, cols as i64), (2, 1)]),
        ],
        domain: vec![0, 2],
    };
    let sumr = LeafStmt {
        kind: ComputeKind::Sum,
        flops_per_iter: ComputeKind::Sum.op_cost(),
        accesses: vec![
            MemAccess::read(2, vec![(0, cols as i64), (3, 1)]),
            MemAccess::write(1, vec![(0, 1)]),
        ],
        domain: vec![0, 3],
    };
    let divr = LeafStmt {
        kind: ComputeKind::Div,
        flops_per_iter: ComputeKind::Div.op_cost(),
        accesses: vec![
            MemAccess::read(1, vec![(0, 1)]),
            MemAccess::write(2, vec![(0, cols as i64), (4, 1)]),
        ],
        domain: vec![0, 4],
    };
    Nest {
        axes,
        leaves: vec![maxr, expm, sumr, divr],
        buffers,
    }
}

fn layer_norm_nest(rows: u64, cols: u64) -> Nest {
    // Three passes: mean, variance, normalize. 0=i, 1..=3 per-pass cols.
    let axes = vec![
        axis(0, rows, false),
        axis(1, cols, true),
        axis(2, cols, true),
        axis(3, cols, false),
    ];
    let buffers = vec![
        Buffer::f32("x", rows * cols),
        Buffer::f32("stats", rows * 2),
        Buffer::f32("y", rows * cols),
    ];
    let mean = LeafStmt {
        kind: ComputeKind::Sum,
        flops_per_iter: ComputeKind::Sum.op_cost(),
        accesses: vec![
            MemAccess::read(0, vec![(0, cols as i64), (1, 1)]),
            MemAccess::write(1, vec![(0, 2)]),
        ],
        domain: vec![0, 1],
    };
    let var = LeafStmt {
        kind: ComputeKind::Ewise,
        flops_per_iter: 3.0,
        accesses: vec![
            MemAccess::read(0, vec![(0, cols as i64), (2, 1)]),
            MemAccess::read(1, vec![(0, 2)]),
            MemAccess::write(1, vec![(0, 2)]),
        ],
        domain: vec![0, 2],
    };
    let norm = LeafStmt {
        kind: ComputeKind::Div,
        flops_per_iter: ComputeKind::Div.op_cost(),
        accesses: vec![
            MemAccess::read(0, vec![(0, cols as i64), (3, 1)]),
            MemAccess::read(1, vec![(0, 2)]),
            MemAccess::write(2, vec![(0, cols as i64), (3, 1)]),
        ],
        domain: vec![0, 3],
    };
    Nest {
        axes,
        leaves: vec![mean, var, norm],
        buffers,
    }
}

fn elementwise_nest(n: u64, kind: EwKind) -> Nest {
    let axes = vec![axis(0, n, false)];
    let buffers = vec![Buffer::f32("x", n), Buffer::f32("y", n)];
    let (ck, flops, extra_read) = match kind {
        EwKind::Relu => (ComputeKind::Max, 1.0, false),
        EwKind::Add => (ComputeKind::Ewise, 1.0, true),
        EwKind::BiasAdd => (ComputeKind::Ewise, 1.0, true),
        EwKind::Gelu => (ComputeKind::Exp, 8.0, false),
    };
    let mut accesses = vec![
        MemAccess::read(0, vec![(0, 1)]),
        MemAccess::write(1, vec![(0, 1)]),
    ];
    if extra_read {
        accesses.push(MemAccess::read(1, vec![(0, 1)]));
    }
    let leaf = LeafStmt {
        kind: ck,
        flops_per_iter: flops,
        accesses,
        domain: vec![0],
    };
    Nest {
        axes,
        leaves: vec![leaf],
        buffers,
    }
}

impl Nest {
    /// Looks up an axis by id.
    pub fn axis(&self, id: AxisId) -> Option<&AxisInfo> {
        self.axes.iter().find(|a| a.id == id)
    }

    /// Sum over leaves of the product of their domain extents — the total
    /// iteration count, invariant under valid schedules.
    pub fn total_iterations(&self) -> f64 {
        self.leaves
            .iter()
            .map(|l| {
                l.domain
                    .iter()
                    .map(|&a| self.axis(a).map(|ax| ax.extent).unwrap_or(1) as f64)
                    .product::<f64>()
            })
            .sum()
    }
}

/// A task: an operator spec plus identity metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Stable id within a dataset.
    pub id: u32,
    /// Operator specification.
    pub spec: OpSpec,
    /// Name, e.g. `"resnet50.conv2d.3"`.
    pub name: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_nest_structure() {
        let nest = OpSpec::Dense { m: 16, n: 32, k: 8 }.canonical_nest();
        assert_eq!(nest.axes.len(), 3);
        assert_eq!(nest.leaves.len(), 3); // init, mac, relu
        assert_eq!(nest.buffers.len(), 3);
        // The mac leaf ranges over all three axes.
        assert_eq!(nest.leaves[1].domain, vec![0, 1, 2]);
        // Reduction axis marked.
        assert!(nest.axes[2].is_reduction);
        assert!(!nest.axes[0].is_reduction);
    }

    #[test]
    fn dense_total_iterations() {
        let nest = OpSpec::Dense { m: 4, n: 4, k: 4 }.canonical_nest();
        // init 16 + mac 64 + relu 16.
        assert_eq!(nest.total_iterations(), 96.0);
    }

    #[test]
    fn conv_flops_formula() {
        let spec = OpSpec::Conv2d {
            n: 1,
            cin: 3,
            hw: 8,
            cout: 4,
            khw: 3,
            stride: 1,
        };
        // 2 * N*Cout*OH*OW*Cin*KH*KW = 2*1*4*8*8*3*3*3
        assert_eq!(spec.flops(), 2.0 * (4 * 64 * 27) as f64);
    }

    #[test]
    fn conv_stride_shrinks_output() {
        let s1 = OpSpec::Conv2d {
            n: 1,
            cin: 8,
            hw: 16,
            cout: 8,
            khw: 3,
            stride: 1,
        };
        let s2 = OpSpec::Conv2d {
            n: 1,
            cin: 8,
            hw: 16,
            cout: 8,
            khw: 3,
            stride: 2,
        };
        assert!(s2.flops() < s1.flops());
        let nest = s2.canonical_nest();
        assert_eq!(nest.axis(2).unwrap().extent, 8); // oh = 16/2
    }

    #[test]
    fn softmax_has_four_passes() {
        let nest = OpSpec::Softmax { rows: 8, cols: 16 }.canonical_nest();
        assert_eq!(nest.leaves.len(), 4);
        // Passes use distinct column axes (fissioned form).
        let cols: Vec<_> = nest.leaves.iter().map(|l| l.domain[1]).collect();
        let mut unique = cols.clone();
        unique.dedup();
        assert_eq!(cols.len(), unique.len());
    }

    #[test]
    fn innermost_access_is_contiguous_for_dense() {
        let nest = OpSpec::Dense { m: 8, n: 8, k: 8 }.canonical_nest();
        let mac = &nest.leaves[1];
        // B access strides by 1 along j (axis 1).
        assert_eq!(mac.accesses[1].stride(1), 1);
        // A access strides by 1 along k (axis 2).
        assert_eq!(mac.accesses[0].stride(2), 1);
    }

    #[test]
    fn all_specs_produce_consistent_nests() {
        let specs = [
            OpSpec::Dense { m: 8, n: 8, k: 8 },
            OpSpec::BatchMatmul {
                b: 2,
                m: 4,
                n: 4,
                k: 4,
            },
            OpSpec::Conv2d {
                n: 1,
                cin: 4,
                hw: 8,
                cout: 4,
                khw: 3,
                stride: 1,
            },
            OpSpec::DepthwiseConv {
                n: 1,
                c: 8,
                hw: 8,
                khw: 3,
                stride: 1,
            },
            OpSpec::Pool {
                n: 1,
                c: 8,
                hw: 8,
                khw: 2,
                stride: 2,
            },
            OpSpec::Softmax { rows: 4, cols: 8 },
            OpSpec::LayerNorm { rows: 4, cols: 8 },
            OpSpec::Elementwise {
                n: 64,
                kind: EwKind::Relu,
            },
        ];
        for spec in specs {
            let nest = spec.canonical_nest();
            assert!(!nest.leaves.is_empty(), "{spec:?}");
            // Every leaf's domain references real axes.
            for leaf in &nest.leaves {
                for &a in &leaf.domain {
                    assert!(nest.axis(a).is_some(), "{spec:?} axis {a}");
                }
                // Every access's axes are within the leaf's domain.
                for acc in &leaf.accesses {
                    for &(a, _) in &acc.strides {
                        assert!(leaf.domain.contains(&a), "{spec:?} access axis {a}");
                    }
                }
            }
            assert!(spec.flops() > 0.0);
        }
    }

    #[test]
    fn shape_params_padded() {
        let p = OpSpec::Softmax { rows: 3, cols: 7 }.shape_params();
        assert_eq!(p, [3, 7, 0, 0, 0, 0]);
    }
}
