//! Leaf-level computation statements and memory accesses.
//!
//! A *leaf* in the paper's AST terminology (Fig 1c) is a computation
//! expression: the innermost statement of a loop nest, where arithmetic and
//! memory traffic happen. Everything the device simulator and the feature
//! extractor need about a leaf is captured here symbolically, in terms of the
//! loop axes that surround it, so schedule transformations (split/reorder)
//! can rewrite accesses without re-deriving them.

use serde::{Deserialize, Serialize};

/// Identifier of a loop axis within one tensor program.
pub type AxisId = u32;

/// Identifier of a buffer within one tensor program.
pub type BufferId = u32;

/// The kind of computation a leaf performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComputeKind {
    /// Zero/constant initialization of an accumulator.
    Init,
    /// Multiply-accumulate (`C += A * B`), the core of GEMM/conv.
    Mac,
    /// Element-wise arithmetic (add/mul/bias).
    Ewise,
    /// Max-style select (ReLU, max-pool, softmax max-reduce).
    Max,
    /// Transcendental (exp, used by softmax / GELU).
    Exp,
    /// Division / reciprocal (softmax normalize, mean).
    Div,
    /// Plain sum reduction.
    Sum,
    /// Data movement only (copy / layout change).
    Copy,
}

impl ComputeKind {
    /// All kinds, in a stable order (used for one-hot feature encoding).
    pub const ALL: [ComputeKind; 8] = [
        ComputeKind::Init,
        ComputeKind::Mac,
        ComputeKind::Ewise,
        ComputeKind::Max,
        ComputeKind::Exp,
        ComputeKind::Div,
        ComputeKind::Sum,
        ComputeKind::Copy,
    ];

    /// Index of this kind in [`ComputeKind::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind present in ALL")
    }

    /// Relative cost weight of one operation of this kind, in "flop units".
    ///
    /// Transcendentals are far more expensive than fused multiply-adds on
    /// every device family; the simulator scales compute time by this.
    pub fn op_cost(self) -> f64 {
        match self {
            ComputeKind::Init => 0.5,
            ComputeKind::Mac => 2.0,
            ComputeKind::Ewise => 1.0,
            ComputeKind::Max => 1.0,
            ComputeKind::Exp => 12.0,
            ComputeKind::Div => 6.0,
            ComputeKind::Sum => 1.0,
            ComputeKind::Copy => 0.0,
        }
    }
}

/// A buffer (tensor storage) referenced by leaf statements.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Buffer {
    /// Human-readable name (e.g. `"weight"`).
    pub name: String,
    /// Total number of elements.
    pub elems: u64,
    /// Bytes per element (4 for `f32`).
    pub elem_bytes: u32,
}

impl Buffer {
    /// Creates an `f32` buffer with the given element count.
    pub fn f32(name: impl Into<String>, elems: u64) -> Self {
        Buffer {
            name: name.into(),
            elems,
            elem_bytes: 4,
        }
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        self.elems * self.elem_bytes as u64
    }
}

/// One memory access made by a leaf, symbolic in the surrounding loop axes.
///
/// `strides` maps axis → element stride: moving one iteration along that
/// axis moves the address by `stride` elements. Axes absent from the map do
/// not move the access (i.e. the access is *reused* across that axis).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Which buffer is touched.
    pub buffer: BufferId,
    /// Whether this access writes (stores) rather than reads.
    pub is_write: bool,
    /// Per-axis element strides, sorted by axis id.
    pub strides: Vec<(AxisId, i64)>,
}

impl MemAccess {
    /// Creates a read access.
    pub fn read(buffer: BufferId, strides: Vec<(AxisId, i64)>) -> Self {
        let mut strides = strides;
        strides.sort_by_key(|&(a, _)| a);
        MemAccess {
            buffer,
            is_write: false,
            strides,
        }
    }

    /// Creates a write access.
    pub fn write(buffer: BufferId, strides: Vec<(AxisId, i64)>) -> Self {
        let mut strides = strides;
        strides.sort_by_key(|&(a, _)| a);
        MemAccess {
            buffer,
            is_write: true,
            strides,
        }
    }

    /// Stride along `axis` (0 if the access is invariant to it).
    pub fn stride(&self, axis: AxisId) -> i64 {
        self.strides
            .iter()
            .find(|&&(a, _)| a == axis)
            .map(|&(_, s)| s)
            .unwrap_or(0)
    }

    /// Rewrites axis `old` into `(outer, inner)` after a split by `factor`:
    /// the inner axis keeps the old stride, the outer axis strides by
    /// `factor × old_stride`.
    pub fn split_axis(&mut self, old: AxisId, outer: AxisId, inner: AxisId, factor: i64) {
        if let Some(pos) = self.strides.iter().position(|&(a, _)| a == old) {
            let (_, s) = self.strides[pos];
            self.strides.remove(pos);
            self.strides.push((inner, s));
            self.strides.push((outer, s * factor));
            self.strides.sort_by_key(|&(a, _)| a);
        }
    }
}

/// A leaf statement: the computation expression of Fig 1(c).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeafStmt {
    /// What kind of computation this is.
    pub kind: ComputeKind,
    /// Scalar operations per innermost iteration.
    pub flops_per_iter: f64,
    /// All memory accesses per iteration.
    pub accesses: Vec<MemAccess>,
    /// Iteration domain: the axes this statement ranges over, in canonical
    /// (outermost-first) order.
    pub domain: Vec<AxisId>,
}

impl LeafStmt {
    /// Bytes read per innermost iteration (before any cache reuse).
    pub fn bytes_read_per_iter(&self, elem_bytes: u32) -> f64 {
        self.accesses.iter().filter(|a| !a.is_write).count() as f64 * elem_bytes as f64
    }

    /// Bytes written per innermost iteration.
    pub fn bytes_written_per_iter(&self, elem_bytes: u32) -> f64 {
        self.accesses.iter().filter(|a| a.is_write).count() as f64 * elem_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_kind_index_roundtrip() {
        for (i, k) in ComputeKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn exp_costs_more_than_mac() {
        assert!(ComputeKind::Exp.op_cost() > ComputeKind::Mac.op_cost());
    }

    #[test]
    fn buffer_bytes() {
        let b = Buffer::f32("x", 100);
        assert_eq!(b.bytes(), 400);
    }

    #[test]
    fn access_stride_lookup() {
        let a = MemAccess::read(0, vec![(2, 1), (0, 16)]);
        assert_eq!(a.stride(0), 16);
        assert_eq!(a.stride(1), 0);
        assert_eq!(a.stride(2), 1);
        // Strides stay sorted by axis.
        assert_eq!(a.strides, vec![(0, 16), (2, 1)]);
    }

    #[test]
    fn split_axis_rewrites_strides() {
        let mut a = MemAccess::read(0, vec![(0, 4)]);
        a.split_axis(0, 10, 11, 8);
        assert_eq!(a.stride(10), 32); // outer = factor * old
        assert_eq!(a.stride(11), 4); // inner keeps old
        assert_eq!(a.stride(0), 0);
    }

    #[test]
    fn split_axis_noop_when_absent() {
        let mut a = MemAccess::read(0, vec![(1, 2)]);
        let before = a.clone();
        a.split_axis(0, 10, 11, 8);
        assert_eq!(a, before);
    }

    #[test]
    fn leaf_bytes_per_iter() {
        let leaf = LeafStmt {
            kind: ComputeKind::Mac,
            flops_per_iter: 2.0,
            accesses: vec![
                MemAccess::read(0, vec![(0, 1)]),
                MemAccess::read(1, vec![(1, 1)]),
                MemAccess::write(2, vec![(0, 1)]),
            ],
            domain: vec![0, 1],
        };
        assert_eq!(leaf.bytes_read_per_iter(4), 8.0);
        assert_eq!(leaf.bytes_written_per_iter(4), 4.0);
    }
}
