//! Property-based invariants of schedule lowering.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tir::{lower, sample_schedule, OpSpec, Schedule, SerEntry};

fn arb_spec() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        (1u64..5, 1u64..5, 1u64..5).prop_map(|(m, n, k)| OpSpec::Dense {
            m: m * 8,
            n: n * 8,
            k: k * 8
        }),
        (1u64..4, 1u64..4).prop_map(|(r, c)| OpSpec::Softmax {
            rows: r * 16,
            cols: c * 16
        }),
        (1u64..3, 1u64..3).prop_map(|(c, h)| OpSpec::Conv2d {
            n: 1,
            cin: c * 8,
            hw: h * 8,
            cout: 16,
            khw: 3,
            stride: 1
        }),
        (1u64..6,).prop_map(|(n,)| OpSpec::Elementwise {
            n: n * 256,
            kind: tir::EwKind::Relu
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sampled_schedules_preserve_semantics(spec in arb_spec(), seed in 0u64..10_000) {
        let nest = spec.canonical_nest();
        let mut rng = StdRng::seed_from_u64(seed);
        let sched = sample_schedule(&nest, &mut rng);
        let prog = lower(&nest, &sched).unwrap();
        // Leaf count and total iteration count are schedule-invariant.
        prop_assert_eq!(prog.leaf_count(), nest.leaves.len());
        let diff = (prog.total_iterations() - nest.total_iterations()).abs();
        prop_assert!(diff / nest.total_iterations() < 1e-9);
    }

    #[test]
    fn preorder_serialization_is_consistent(spec in arb_spec(), seed in 0u64..10_000) {
        let nest = spec.canonical_nest();
        let mut rng = StdRng::seed_from_u64(seed);
        let sched = sample_schedule(&nest, &mut rng);
        let prog = lower(&nest, &sched).unwrap();
        let ser = prog.serialize_preorder();
        // Exactly one marker per leaf, directly after it.
        let leaves = ser.iter().filter(|e| matches!(e, SerEntry::Leaf(_))).count();
        let markers = ser.iter().filter(|e| matches!(e, SerEntry::Marker)).count();
        prop_assert_eq!(leaves, prog.leaf_count());
        prop_assert_eq!(markers, leaves);
        for w in ser.windows(2) {
            if matches!(w[0], SerEntry::Leaf(_)) {
                prop_assert!(matches!(w[1], SerEntry::Marker));
            }
        }
        // Node ids are consecutive pre-order ids.
        let ids: Vec<u32> = ser.iter().filter_map(|e| match e {
            SerEntry::Loop(i) | SerEntry::Leaf(i) => Some(*i),
            SerEntry::Marker => None,
        }).collect();
        for (expect, &got) in ids.iter().enumerate().map(|(i, v)| (i as u32, v)) {
            prop_assert_eq!(expect, got);
        }
        // Ordering vector entries are strictly increasing.
        let ov = prog.ordering_vector();
        for w in ov.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn default_schedule_is_always_valid(spec in arb_spec()) {
        let nest = spec.canonical_nest();
        let prog = lower(&nest, &Schedule::default()).unwrap();
        prop_assert!(prog.node_count() >= nest.leaves.len());
        prop_assert!(prog.max_depth() <= nest.axes.len());
    }
}
