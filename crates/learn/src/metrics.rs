//! Evaluation metrics reported in §7: MAPE, RMSE, `k%`-accuracy and
//! Spearman rank correlation (used to judge schedule-search cost models).

/// Mean absolute percentage error: `mean(|ŷ − y| / y)`.
pub fn mape(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(truth.iter())
        .map(|(&p, &t)| (p - t).abs() / t.abs().max(1e-300))
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    (pred
        .iter()
        .zip(truth.iter())
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64)
        .sqrt()
}

/// Fraction of predictions within `frac` relative error (the paper's
/// `20%accuracy` / `10%accuracy` / `5%accuracy` training-log metrics).
pub fn accuracy_within(pred: &[f64], truth: &[f64], frac: f64) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    let hits = pred
        .iter()
        .zip(truth.iter())
        .filter(|(&p, &t)| (p - t).abs() / t.abs().max(1e-300) <= frac)
        .count();
    hits as f64 / pred.len() as f64
}

fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        // Average ranks over ties.
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.len() < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    let ma = ra.iter().sum::<f64>() / ra.len() as f64;
    let mb = rb.iter().sum::<f64>() / rb.len() as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..ra.len() {
        cov += (ra[i] - ma) * (rb[i] - mb);
        va += (ra[i] - ma).powi(2);
        vb += (rb[i] - mb).powi(2);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_known() {
        assert!((mape(&[2.0, 4.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
        assert_eq!(mape(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn rmse_known() {
        assert!((rmse(&[2.0, 4.0], &[1.0, 2.0]) - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn accuracy_within_thresholds() {
        let pred = [1.05, 1.5, 0.99, 2.0];
        let truth = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(accuracy_within(&pred, &truth, 0.10), 0.5);
        assert_eq!(accuracy_within(&pred, &truth, 0.60), 0.75);
        assert_eq!(accuracy_within(&pred, &truth, 2.00), 1.0);
    }

    #[test]
    fn spearman_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &up) - 1.0).abs() < 1e-12);
        assert!((spearman(&a, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_is_rank_based() {
        // A monotone nonlinear map preserves Spearman exactly.
        let a = [0.1, 0.5, 1.0, 2.0, 5.0];
        let b: Vec<f64> = a.iter().map(|&x: &f64| x.powi(3)).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }
}
