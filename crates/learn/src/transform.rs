//! Label normalization (§5.4): Box-Cox, Yeo-Johnson and quantile
//! transforms, compared in Fig 5 and ablated in Table 3.
//!
//! Box-Cox and Yeo-Johnson fit their λ parameter by maximum likelihood
//! (golden-section search over the profile log-likelihood), matching what
//! scikit-learn's `PowerTransformer` does. The quantile transform maps the
//! empirical CDF onto a standard normal.

use crate::stats::{norm_cdf, norm_ppf};

/// A fitted, invertible label transform.
pub trait LabelTransform {
    /// Maps a raw label into the transformed space.
    fn forward(&self, y: f64) -> f64;
    /// Maps a transformed value back to the raw space.
    fn inverse(&self, z: f64) -> f64;
    /// Transforms a whole slice.
    fn forward_all(&self, ys: &[f64]) -> Vec<f64> {
        ys.iter().map(|&y| self.forward(y)).collect()
    }
}

/// Which normalization to use (the Table 3 ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformKind {
    /// Box-Cox power transform (the paper's choice).
    BoxCox,
    /// Yeo-Johnson power transform.
    YeoJohnson,
    /// Quantile-to-normal transform.
    Quantile,
    /// No normalization (raw labels).
    None,
}

impl TransformKind {
    /// Human-readable name matching Table 3's column headers.
    pub fn name(self) -> &'static str {
        match self {
            TransformKind::BoxCox => "Box-Cox",
            TransformKind::YeoJohnson => "Yeo-Johnson",
            TransformKind::Quantile => "Quantile",
            TransformKind::None => "original Y",
        }
    }

    /// Fits the chosen transform on training labels.
    pub fn fit(self, ys: &[f64]) -> FittedTransform {
        match self {
            TransformKind::BoxCox => FittedTransform::BoxCox(BoxCox::fit(ys)),
            TransformKind::YeoJohnson => FittedTransform::YeoJohnson(YeoJohnson::fit(ys)),
            TransformKind::Quantile => FittedTransform::Quantile(Quantile::fit(ys)),
            TransformKind::None => FittedTransform::Identity,
        }
    }
}

/// A fitted transform of any kind (cloneable, unlike a trait object).
/// Serializable so trained models can persist their label normalization in
/// snapshots.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum FittedTransform {
    /// Fitted Box-Cox.
    BoxCox(BoxCox),
    /// Fitted Yeo-Johnson.
    YeoJohnson(YeoJohnson),
    /// Fitted quantile transform.
    Quantile(Quantile),
    /// Identity (raw labels).
    Identity,
}

impl FittedTransform {
    /// Checks a (possibly deserialized) transform is usable: all fitted
    /// constants finite, scales non-zero, quantile tables non-empty and
    /// sorted. Snapshot loading runs this so a hostile file cannot smuggle
    /// in a transform that panics or poisons predictions with NaN.
    pub fn validate(&self) -> Result<(), String> {
        let finite_scale = |name: &str, lambda: f64, mean: f64, std: f64| {
            if !(lambda.is_finite() && mean.is_finite() && std.is_finite()) {
                return Err(format!("{name} transform has non-finite parameters"));
            }
            if std <= 0.0 {
                return Err(format!("{name} transform has non-positive scale {std}"));
            }
            Ok(())
        };
        match self {
            FittedTransform::BoxCox(t) => finite_scale("Box-Cox", t.lambda, t.mean, t.std),
            FittedTransform::YeoJohnson(t) => finite_scale("Yeo-Johnson", t.lambda, t.mean, t.std),
            FittedTransform::Quantile(t) => {
                if t.sorted.is_empty() {
                    return Err("quantile transform has an empty table".into());
                }
                if t.sorted.iter().any(|v| !v.is_finite()) {
                    return Err("quantile transform has non-finite entries".into());
                }
                if t.sorted.windows(2).any(|w| w[0] > w[1]) {
                    return Err("quantile transform table is not sorted".into());
                }
                Ok(())
            }
            FittedTransform::Identity => Ok(()),
        }
    }
}

impl LabelTransform for FittedTransform {
    fn forward(&self, y: f64) -> f64 {
        match self {
            FittedTransform::BoxCox(t) => t.forward(y),
            FittedTransform::YeoJohnson(t) => t.forward(y),
            FittedTransform::Quantile(t) => t.forward(y),
            FittedTransform::Identity => y,
        }
    }

    fn inverse(&self, z: f64) -> f64 {
        match self {
            FittedTransform::BoxCox(t) => t.inverse(z),
            FittedTransform::YeoJohnson(t) => t.inverse(z),
            FittedTransform::Quantile(t) => t.inverse(z),
            FittedTransform::Identity => z,
        }
    }
}

/// The identity transform (for the "original Y" ablation arm).
#[derive(Debug, Clone, Copy)]
pub struct Identity;

impl LabelTransform for Identity {
    fn forward(&self, y: f64) -> f64 {
        y
    }
    fn inverse(&self, z: f64) -> f64 {
        z
    }
}

/// Golden-section maximization of a unimodal function on `[lo, hi]`.
fn golden_max(lo: f64, hi: f64, iters: usize, f: impl Fn(f64) -> f64) -> f64 {
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let (mut fc, mut fd) = (f(c), f(d));
    for _ in 0..iters {
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = f(d);
        }
    }
    (a + b) / 2.0
}

/// Box-Cox transform with standardization:
/// `z = ((y^λ − 1)/λ − μ) / σ` (λ = 0 degenerates to `ln y`).
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct BoxCox {
    /// Fitted power parameter.
    pub lambda: f64,
    mean: f64,
    std: f64,
}

fn boxcox_raw(y: f64, lambda: f64) -> f64 {
    if lambda.abs() < 1e-9 {
        y.ln()
    } else {
        (y.powf(lambda) - 1.0) / lambda
    }
}

fn boxcox_raw_inv(z: f64, lambda: f64) -> f64 {
    if lambda.abs() < 1e-9 {
        z.exp()
    } else {
        let base = lambda * z + 1.0;
        // Clamp to the transform's domain to keep the inverse total.
        base.max(1e-12).powf(1.0 / lambda)
    }
}

impl BoxCox {
    /// Fits λ by maximizing the Box-Cox profile log-likelihood on strictly
    /// positive labels, then standardizes.
    ///
    /// # Panics
    ///
    /// Panics if `ys` is empty or contains non-positive values (latencies
    /// are always positive).
    pub fn fit(ys: &[f64]) -> Self {
        assert!(!ys.is_empty(), "Box-Cox fit on empty labels");
        assert!(
            ys.iter().all(|&y| y > 0.0),
            "Box-Cox requires positive labels"
        );
        let n = ys.len() as f64;
        let log_sum: f64 = ys.iter().map(|&y| y.ln()).sum();
        let ll = |lambda: f64| {
            let t: Vec<f64> = ys.iter().map(|&y| boxcox_raw(y, lambda)).collect();
            let var = crate::stats::variance(&t).max(1e-300);
            -0.5 * n * var.ln() + (lambda - 1.0) * log_sum
        };
        let lambda = golden_max(-2.0, 2.0, 60, ll);
        let t: Vec<f64> = ys.iter().map(|&y| boxcox_raw(y, lambda)).collect();
        let mean = crate::stats::mean(&t);
        let std = crate::stats::variance(&t).sqrt().max(1e-12);
        BoxCox { lambda, mean, std }
    }
}

impl LabelTransform for BoxCox {
    fn forward(&self, y: f64) -> f64 {
        (boxcox_raw(y.max(1e-300), self.lambda) - self.mean) / self.std
    }
    fn inverse(&self, z: f64) -> f64 {
        boxcox_raw_inv(z * self.std + self.mean, self.lambda)
    }
}

/// Yeo-Johnson transform with standardization (handles all reals).
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct YeoJohnson {
    /// Fitted power parameter.
    pub lambda: f64,
    mean: f64,
    std: f64,
}

fn yj_raw(y: f64, l: f64) -> f64 {
    if y >= 0.0 {
        if l.abs() < 1e-9 {
            (y + 1.0).ln()
        } else {
            ((y + 1.0).powf(l) - 1.0) / l
        }
    } else if (l - 2.0).abs() < 1e-9 {
        -(-y + 1.0).ln()
    } else {
        -((-y + 1.0).powf(2.0 - l) - 1.0) / (2.0 - l)
    }
}

fn yj_raw_inv(z: f64, l: f64) -> f64 {
    if z >= 0.0 {
        if l.abs() < 1e-9 {
            z.exp() - 1.0
        } else {
            (l * z + 1.0).max(1e-12).powf(1.0 / l) - 1.0
        }
    } else if (l - 2.0).abs() < 1e-9 {
        1.0 - (-z).exp()
    } else {
        1.0 - (-(2.0 - l) * z + 1.0).max(1e-12).powf(1.0 / (2.0 - l))
    }
}

impl YeoJohnson {
    /// Fits λ by profile likelihood, then standardizes.
    pub fn fit(ys: &[f64]) -> Self {
        assert!(!ys.is_empty(), "Yeo-Johnson fit on empty labels");
        let n = ys.len() as f64;
        let ll = |l: f64| {
            let t: Vec<f64> = ys.iter().map(|&y| yj_raw(y, l)).collect();
            let var = crate::stats::variance(&t).max(1e-300);
            let jac: f64 = ys
                .iter()
                .map(|&y| (y.abs() + 1.0).ln() * (l - 1.0) * y.signum())
                .sum();
            -0.5 * n * var.ln() + jac
        };
        let lambda = golden_max(-2.0, 2.0, 60, ll);
        let t: Vec<f64> = ys.iter().map(|&y| yj_raw(y, lambda)).collect();
        let mean = crate::stats::mean(&t);
        let std = crate::stats::variance(&t).sqrt().max(1e-12);
        YeoJohnson { lambda, mean, std }
    }
}

impl LabelTransform for YeoJohnson {
    fn forward(&self, y: f64) -> f64 {
        (yj_raw(y, self.lambda) - self.mean) / self.std
    }
    fn inverse(&self, z: f64) -> f64 {
        yj_raw_inv(z * self.std + self.mean, self.lambda)
    }
}

/// Quantile transform onto a standard normal, with linear interpolation
/// between stored training quantiles.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Quantile {
    sorted: Vec<f64>,
}

impl Quantile {
    /// Fits on training labels (stores the sorted sample).
    pub fn fit(ys: &[f64]) -> Self {
        assert!(!ys.is_empty(), "Quantile fit on empty labels");
        let mut sorted = ys.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite labels"));
        Quantile { sorted }
    }

    fn ecdf(&self, y: f64) -> f64 {
        let n = self.sorted.len() as f64;
        let idx = self.sorted.partition_point(|&s| s <= y);
        // Hazen plotting position ((i - 0.5)/n), chosen so that
        // `inverse(forward(y)) == y` exactly for every training point.
        let p = (idx as f64 - 0.5) / n;
        p.clamp(0.5 / n, 1.0 - 0.5 / n)
    }
}

impl LabelTransform for Quantile {
    fn forward(&self, y: f64) -> f64 {
        norm_ppf(self.ecdf(y))
    }

    fn inverse(&self, z: f64) -> f64 {
        let n = self.sorted.len();
        let p = norm_cdf(z);
        // Inverse of the Hazen position: pos = p·n − ½.
        let pos = (p * n as f64 - 0.5).clamp(0.0, n as f64 - 1.0);
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(n - 1);
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::skewness;

    /// Long-tailed synthetic latencies like Fig 5(a).
    fn skewed_labels() -> Vec<f64> {
        (0..500)
            .map(|i| {
                let u = (i as f64 + 0.5) / 500.0;
                // Inverse-CDF sample of a lognormal.
                (2.0 * crate::stats::norm_ppf(u)).exp() * 1e-4
            })
            .collect()
    }

    #[test]
    fn boxcox_reduces_skewness() {
        let ys = skewed_labels();
        let t = BoxCox::fit(&ys);
        let zs = t.forward_all(&ys);
        assert!(skewness(&ys) > 2.0, "input must be skewed");
        assert!(skewness(&zs).abs() < 0.3, "Box-Cox output near-symmetric");
    }

    #[test]
    fn boxcox_lognormal_lambda_near_zero() {
        // For lognormal data the MLE λ is ≈ 0 (log transform).
        let ys = skewed_labels();
        let t = BoxCox::fit(&ys);
        assert!(t.lambda.abs() < 0.15, "lambda = {}", t.lambda);
    }

    #[test]
    fn boxcox_roundtrip() {
        let ys = skewed_labels();
        let t = BoxCox::fit(&ys);
        for &y in ys.iter().step_by(37) {
            let z = t.forward(y);
            let back = t.inverse(z);
            assert!((back - y).abs() / y < 1e-6, "{y} -> {z} -> {back}");
        }
    }

    #[test]
    fn boxcox_output_standardized() {
        let ys = skewed_labels();
        let t = BoxCox::fit(&ys);
        let zs = t.forward_all(&ys);
        assert!(crate::stats::mean(&zs).abs() < 1e-6);
        assert!((crate::stats::variance(&zs) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn boxcox_rejects_nonpositive() {
        BoxCox::fit(&[1.0, 0.0, 2.0]);
    }

    #[test]
    fn yeo_johnson_roundtrip_with_negatives() {
        let ys: Vec<f64> = (-20..20).map(|i| i as f64 * 0.3).collect();
        let t = YeoJohnson::fit(&ys);
        for &y in &ys {
            let back = t.inverse(t.forward(y));
            assert!((back - y).abs() < 1e-6, "{y} -> {back}");
        }
    }

    #[test]
    fn quantile_output_is_normalish() {
        let ys = skewed_labels();
        let t = Quantile::fit(&ys);
        let zs = t.forward_all(&ys);
        assert!(skewness(&zs).abs() < 0.1);
        assert!(crate::stats::mean(&zs).abs() < 0.05);
    }

    #[test]
    fn quantile_roundtrip_approximately() {
        let ys = skewed_labels();
        let t = Quantile::fit(&ys);
        for &y in ys.iter().step_by(41) {
            let back = t.inverse(t.forward(y));
            assert!((back - y).abs() / y < 0.05, "{y} -> {back}");
        }
    }

    #[test]
    fn quantile_monotonic() {
        let ys = skewed_labels();
        let t = Quantile::fit(&ys);
        let mut prev = f64::NEG_INFINITY;
        for &y in &ys {
            let z = t.forward(y);
            assert!(z >= prev - 1e-12);
            prev = z;
        }
    }

    #[test]
    fn kind_fit_dispatches() {
        let ys = skewed_labels();
        for kind in [
            TransformKind::BoxCox,
            TransformKind::YeoJohnson,
            TransformKind::Quantile,
            TransformKind::None,
        ] {
            let t = kind.fit(&ys);
            let z = t.forward(ys[10]);
            assert!(z.is_finite(), "{}", kind.name());
            if kind == TransformKind::None {
                assert_eq!(z, ys[10]);
            }
        }
    }
}
