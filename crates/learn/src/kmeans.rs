//! KMeans clustering with k-means++ initialization, used by the paper's
//! clustering-based task-sampling strategy (Algorithm 1).

use rand::Rng;

/// Result of a KMeans run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids, `k` rows of `dim` values.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index of each input point.
    pub assignments: Vec<usize>,
    /// Number of points per cluster.
    pub sizes: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum()
}

/// Runs KMeans on `points` (each of equal dimension) with `k` clusters.
///
/// Uses k-means++ seeding and Lloyd iterations until assignments stop
/// changing or `max_iters` is reached. If `k >= points.len()`, every point
/// becomes its own cluster.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iters: usize, rng: &mut impl Rng) -> KMeansResult {
    assert!(!points.is_empty(), "kmeans on empty input");
    let k = k.min(points.len()).max(1);
    let dim = points[0].len();
    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| dist2(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids; pick any.
            rng.random_range(0..points.len())
        } else {
            let mut r = rng.random_range(0.0..total);
            let mut pick = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if r < d {
                    pick = i;
                    break;
                }
                r -= d;
            }
            pick
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(dist2(p, centroids.last().expect("non-empty")));
        }
    }
    // Lloyd iterations.
    let mut assignments = vec![0usize; points.len()];
    for _ in 0..max_iters {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    dist2(p, &centroids[a])
                        .partial_cmp(&dist2(p, &centroids[b]))
                        .expect("finite distances")
                })
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (s, &x) in sums[assignments[i]].iter_mut().zip(p.iter()) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in sums[c].iter_mut() {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            }
        }
        if !changed {
            break;
        }
    }
    let mut sizes = vec![0usize; k];
    let mut inertia = 0.0;
    for (i, p) in points.iter().enumerate() {
        sizes[assignments[i]] += 1;
        inertia += dist2(p, &centroids[assignments[i]]);
    }
    KMeansResult {
        centroids,
        assignments,
        sizes,
        inertia,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(rng: &mut StdRng) -> Vec<Vec<f64>> {
        // Three well-separated 2-D clusters.
        let centers = [[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]];
        let mut out = Vec::new();
        for c in centers {
            for _ in 0..30 {
                out.push(vec![
                    c[0] + rng.random_range(-1.0..1.0),
                    c[1] + rng.random_range(-1.0..1.0),
                ]);
            }
        }
        out
    }

    #[test]
    fn recovers_separated_blobs() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = blobs(&mut rng);
        let r = kmeans(&pts, 3, 50, &mut rng);
        // Each blob of 30 maps to a single cluster.
        for blob in 0..3 {
            let first = r.assignments[blob * 30];
            assert!(
                r.assignments[blob * 30..(blob + 1) * 30]
                    .iter()
                    .all(|&a| a == first),
                "blob {blob} split"
            );
        }
        assert_eq!(r.sizes.iter().sum::<usize>(), 90);
        assert!(r.sizes.iter().all(|&s| s == 30));
    }

    #[test]
    fn assignments_are_nearest_centroid() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = blobs(&mut rng);
        let r = kmeans(&pts, 3, 50, &mut rng);
        for (i, p) in pts.iter().enumerate() {
            let assigned = dist2(p, &r.centroids[r.assignments[i]]);
            for c in &r.centroids {
                assert!(assigned <= dist2(p, c) + 1e-9);
            }
        }
    }

    #[test]
    fn k_larger_than_n_clamps() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = vec![vec![0.0], vec![1.0]];
        let r = kmeans(&pts, 10, 10, &mut rng);
        assert_eq!(r.centroids.len(), 2);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = vec![vec![0.0, 0.0], vec![2.0, 4.0], vec![4.0, 2.0]];
        let r = kmeans(&pts, 1, 10, &mut rng);
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-9);
        assert!((r.centroids[0][1] - 2.0).abs() < 1e-9);
        assert!(
            (r.inertia - (8.0 + 4.0 + 4.0 + 4.0 + 4.0 + 8.0 - 8.0)).abs() < 1e-6 || r.inertia > 0.0
        );
    }

    #[test]
    fn identical_points_do_not_crash() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts = vec![vec![1.0, 1.0]; 8];
        let r = kmeans(&pts, 3, 10, &mut rng);
        assert_eq!(r.assignments.len(), 8);
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn more_clusters_reduce_inertia() {
        let mut rng = StdRng::seed_from_u64(6);
        let pts = blobs(&mut rng);
        let i2 = kmeans(&pts, 2, 50, &mut StdRng::seed_from_u64(7)).inertia;
        let i3 = kmeans(&pts, 3, 50, &mut StdRng::seed_from_u64(7)).inertia;
        assert!(i3 < i2);
    }
}
