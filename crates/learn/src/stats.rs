//! Small statistics helpers: error function, normal quantile, moments.

/// Abramowitz–Stegun style approximation of the error function
/// (max absolute error ≈ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile (inverse CDF), Acklam's rational approximation.
pub fn norm_ppf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0, "p in (0,1)");
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (population, divisor n).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample skewness (Fisher's definition, population form).
pub fn skewness(xs: &[f64]) -> f64 {
    let m = mean(xs);
    let v = variance(xs);
    if v <= 0.0 || xs.is_empty() {
        return 0.0;
    }
    let m3 = xs.iter().map(|&x| (x - m).powi(3)).sum::<f64>() / xs.len() as f64;
    m3 / v.powf(1.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn norm_ppf_inverts_cdf() {
        for p in [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = norm_ppf(p);
            assert!((norm_cdf(x) - p).abs() < 2e-4, "p={p}, x={x}");
        }
    }

    #[test]
    fn norm_ppf_median_is_zero() {
        assert!(norm_ppf(0.5).abs() < 1e-9);
    }

    #[test]
    fn moments_of_known_data() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(variance(&xs), 1.25);
        // Symmetric data: zero skew.
        assert!(skewness(&xs).abs() < 1e-12);
        // Right-tailed data: positive skew.
        let tail = [1.0, 1.0, 1.0, 1.0, 10.0];
        assert!(skewness(&tail) > 1.0);
    }
}
