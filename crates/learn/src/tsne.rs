//! Exact t-SNE (van der Maaten & Hinton) for the hidden-representation
//! visualizations of Figs 8, 11 and 16.
//!
//! O(n²) pairwise implementation — fine for the few hundred latent points
//! those figures plot. Returns 2-D coordinates; the experiment binaries
//! print them as series for external plotting, and tests assert on
//! cluster-separation statistics instead of pixels.

use rand::Rng;

/// Runs t-SNE on `points` (rows of equal dimension) down to 2-D.
///
/// `perplexity` is the usual effective-neighbour-count knob; `iters`
/// gradient steps are taken with momentum and early exaggeration.
pub fn tsne(
    points: &[Vec<f64>],
    perplexity: f64,
    iters: usize,
    rng: &mut impl Rng,
) -> Vec<[f64; 2]> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![[0.0, 0.0]];
    }
    // Pairwise squared distances.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d: f64 = points[i]
                .iter()
                .zip(points[j].iter())
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            d2[i * n + j] = d;
            d2[j * n + i] = d;
        }
    }
    // Binary-search per-point precision to hit the target perplexity.
    let target_h = perplexity.max(2.0).ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let (mut beta, mut lo, mut hi) = (1.0f64, 0.0f64, f64::INFINITY);
        for _ in 0..50 {
            let mut sum = 0.0;
            let mut h = 0.0;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let pij = (-beta * d2[i * n + j]).exp();
                sum += pij;
                h += beta * d2[i * n + j] * pij;
            }
            let (h, sum) = if sum > 0.0 {
                (h / sum + sum.ln(), sum)
            } else {
                (0.0, 1.0)
            };
            if (h - target_h).abs() < 1e-5 {
                break;
            }
            if h > target_h {
                lo = beta;
                beta = if hi.is_finite() {
                    (beta + hi) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                hi = beta;
                beta = (beta + lo) / 2.0;
            }
            let _ = sum;
        }
        let mut sum = 0.0;
        for j in 0..n {
            if j != i {
                p[i * n + j] = (-beta * d2[i * n + j]).exp();
                sum += p[i * n + j];
            }
        }
        if sum > 0.0 {
            for j in 0..n {
                p[i * n + j] /= sum;
            }
        }
    }
    // Symmetrize.
    let mut pm = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            pm[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }
    // Gradient descent on 2-D embedding.
    let mut y: Vec<[f64; 2]> = (0..n)
        .map(|_| [rng.random_range(-1e-4..1e-4), rng.random_range(-1e-4..1e-4)])
        .collect();
    let mut vel = vec![[0.0f64; 2]; n];
    let lr = 50.0;
    for it in 0..iters {
        let exaggeration = if it < iters / 4 { 4.0 } else { 1.0 };
        // Q distribution (Student-t).
        let mut qnum = vec![0.0f64; n * n];
        let mut qsum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let dy0 = y[i][0] - y[j][0];
                let dy1 = y[i][1] - y[j][1];
                let q = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
                qnum[i * n + j] = q;
                qnum[j * n + i] = q;
                qsum += 2.0 * q;
            }
        }
        let qsum = qsum.max(1e-12);
        let momentum = if it < 20 { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut grad = [0.0f64; 2];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let pij = pm[i * n + j] * exaggeration;
                let qij = (qnum[i * n + j] / qsum).max(1e-12);
                let mult = (pij - qij) * qnum[i * n + j];
                grad[0] += 4.0 * mult * (y[i][0] - y[j][0]);
                grad[1] += 4.0 * mult * (y[i][1] - y[j][1]);
            }
            for d in 0..2 {
                vel[i][d] = momentum * vel[i][d] - lr * grad[d];
                // Clamp the step to keep the descent stable at small n.
                y[i][d] += vel[i][d].clamp(-5.0, 5.0);
            }
        }
    }
    y
}

/// Mean embedding distance between two groups relative to their internal
/// spread — a scalar summary of "how separated two domains look" in a
/// t-SNE plot (higher = more separated).
pub fn separation_score(emb: &[[f64; 2]], group: &[usize]) -> f64 {
    let g0: Vec<&[f64; 2]> = emb
        .iter()
        .zip(group)
        .filter(|(_, &g)| g == 0)
        .map(|(e, _)| e)
        .collect();
    let g1: Vec<&[f64; 2]> = emb
        .iter()
        .zip(group)
        .filter(|(_, &g)| g == 1)
        .map(|(e, _)| e)
        .collect();
    if g0.is_empty() || g1.is_empty() {
        return 0.0;
    }
    let centroid = |g: &[&[f64; 2]]| {
        let n = g.len() as f64;
        [
            g.iter().map(|e| e[0]).sum::<f64>() / n,
            g.iter().map(|e| e[1]).sum::<f64>() / n,
        ]
    };
    let c0 = centroid(&g0);
    let c1 = centroid(&g1);
    let between = ((c0[0] - c1[0]).powi(2) + (c0[1] - c1[1]).powi(2)).sqrt();
    let spread = |g: &[&[f64; 2]], c: [f64; 2]| {
        g.iter()
            .map(|e| ((e[0] - c[0]).powi(2) + (e[1] - c[1]).powi(2)).sqrt())
            .sum::<f64>()
            / g.len() as f64
    };
    let within = (spread(&g0, c0) + spread(&g1, c1)) / 2.0;
    between / within.max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn separated_clusters_stay_separated() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut pts = Vec::new();
        let mut groups = Vec::new();
        for i in 0..40 {
            let base = if i < 20 { 0.0 } else { 20.0 };
            pts.push(vec![
                base + rng.random_range(-0.5..0.5),
                base + rng.random_range(-0.5..0.5),
                rng.random_range(-0.5..0.5),
            ]);
            groups.push((i >= 20) as usize);
        }
        // 400 iterations: enough for the embedding to converge from any
        // seed stream; 250 is borderline for unlucky initializations.
        let emb = tsne(&pts, 10.0, 400, &mut rng);
        assert_eq!(emb.len(), 40);
        let score = separation_score(&emb, &groups);
        assert!(
            score > 1.5,
            "separated inputs must embed separated: {score}"
        );
    }

    #[test]
    fn overlapping_clusters_score_low() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut pts = Vec::new();
        let mut groups = Vec::new();
        for i in 0..40 {
            pts.push(vec![
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            ]);
            groups.push((i % 2 == 0) as usize);
        }
        let emb = tsne(&pts, 10.0, 250, &mut rng);
        let score = separation_score(&emb, &groups);
        assert!(score < 1.0, "mixed inputs must embed mixed: {score}");
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(tsne(&[], 5.0, 10, &mut rng).is_empty());
        assert_eq!(tsne(&[vec![1.0, 2.0]], 5.0, 10, &mut rng), vec![[0.0, 0.0]]);
    }

    #[test]
    fn embeddings_are_finite() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.71).cos()])
            .collect();
        let emb = tsne(&pts, 8.0, 150, &mut rng);
        for e in &emb {
            assert!(e[0].is_finite() && e[1].is_finite());
        }
    }
}
