//! Classic ML utilities reimplemented from scratch (the scikit-learn
//! substitute): KMeans clustering for Algorithm 1, the Box-Cox /
//! Yeo-Johnson / quantile label transforms of §5.4, exact t-SNE for the
//! latent-space visualizations (Figs 8, 11, 16), and the evaluation metrics
//! reported throughout §7.

pub mod kmeans;
pub mod metrics;
pub mod stats;
pub mod transform;
pub mod tsne;

pub use kmeans::{kmeans, KMeansResult};
pub use metrics::{accuracy_within, mape, rmse, spearman};
pub use transform::{BoxCox, FittedTransform, LabelTransform, Quantile, TransformKind, YeoJohnson};
pub use tsne::tsne;
