//! Property-based invariants for transforms and clustering.

use learn::{kmeans, BoxCox, LabelTransform, Quantile};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn boxcox_roundtrips_arbitrary_positive_labels(
        raw in proptest::collection::vec(1e-6f64..1e3, 10..60),
    ) {
        // Skip degenerate all-equal inputs (zero variance).
        prop_assume!(raw.iter().any(|&x| (x - raw[0]).abs() > 1e-9));
        let t = BoxCox::fit(&raw);
        for &y in &raw {
            let back = t.inverse(t.forward(y));
            prop_assert!((back - y).abs() / y < 1e-4, "{} -> {}", y, back);
        }
    }

    #[test]
    fn boxcox_is_monotone(raw in proptest::collection::vec(1e-6f64..1e3, 10..40)) {
        prop_assume!(raw.iter().any(|&x| (x - raw[0]).abs() > 1e-9));
        let t = BoxCox::fit(&raw);
        let mut sorted = raw.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for &y in &sorted {
            let z = t.forward(y);
            prop_assert!(z >= prev - 1e-9);
            prev = z;
        }
    }

    #[test]
    fn quantile_forward_bounded(raw in proptest::collection::vec(1e-9f64..1e6, 5..50)) {
        let t = Quantile::fit(&raw);
        for &y in &raw {
            let z = t.forward(y);
            // Bounded by the normal quantiles of the Hazen positions.
            prop_assert!(z.abs() < 6.0);
        }
    }

    #[test]
    fn kmeans_inertia_never_exceeds_single_cluster(
        pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 6..40),
        k in 2usize..5,
    ) {
        let data: Vec<Vec<f64>> = pts.iter().map(|&(a, b)| vec![a, b]).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let one = kmeans(&data, 1, 30, &mut rng).inertia;
        let many = kmeans(&data, k, 30, &mut rng).inertia;
        prop_assert!(many <= one + 1e-6);
    }

    #[test]
    fn kmeans_assignments_in_range(
        pts in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 4..30),
        k in 1usize..6,
    ) {
        let data: Vec<Vec<f64>> = pts.iter().map(|&(a, b)| vec![a, b]).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let r = kmeans(&data, k, 20, &mut rng);
        prop_assert!(r.assignments.iter().all(|&a| a < r.centroids.len()));
        prop_assert_eq!(r.sizes.iter().sum::<usize>(), data.len());
    }
}
