//! Minimal std-only scoped thread pool.
//!
//! One pool serves both compute layers of the CDMPP stack:
//!
//! * the blocked GEMM kernels in `tensor` split large matrix products over
//!   row panels, and
//! * the data-parallel trainer in `cdmpp-core` runs gradient shards of one
//!   minibatch on worker threads.
//!
//! Design constraints, in order:
//!
//! 1. **No dependencies.** The build is offline; everything here is
//!    `std::thread` + channels + a condvar.
//! 2. **Determinism-friendly.** The pool never decides *how* work is split —
//!    callers fix the partition (by shape or shard size, never by thread
//!    count) and the pool only executes it. Nothing here reorders results.
//! 3. **No nested fan-out.** A task running on any pool worker (or a thread
//!    marked with [`mark_worker_thread`], e.g. the serving engine's workers)
//!    executes nested `spawn`s inline. This keeps one parallel layer active
//!    at a time: the trainer's shards don't oversubscribe cores by also
//!    splitting every GEMM, and a scope entered from a worker can never
//!    deadlock waiting on its own pool.
//! 4. **Composable budgets.** Threads that are *not* pool workers but still
//!    belong to a parallel ensemble (serving-engine workers) carry an
//!    explicit intra-op budget ([`set_intra_op_threads`]) instead of the
//!    all-or-nothing worker mark: `engine workers x per-worker GEMM
//!    threads` is capped at the core count by construction.
//!
//! Thread-count resolution is centralized in [`resolve_threads`]: an
//! explicit request wins, then the `PARALLEL_THREADS` environment variable,
//! then [`std::thread::available_parallelism`] — so CI boxes and laptops
//! behave predictably with one knob.

use std::cell::Cell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A lifetime-erased unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Per-thread intra-op parallelism budget: how many pool threads a
    /// kernel running on this thread may fan out over. `0` = unset
    /// (unlimited — bounded only by the pool size).
    static INTRA_OP: Cell<usize> = const { Cell::new(0) };
}

/// Marks the current thread as part of a parallel ensemble: any
/// [`Scope::spawn`] issued from it runs inline instead of fanning out.
///
/// Pool workers are marked automatically; external worker threads (e.g. the
/// serving engine's per-core workers) should call this once at startup so
/// kernels they execute stay single-threaded.
pub fn mark_worker_thread() {
    IS_WORKER.with(|c| c.set(true));
}

/// Whether the current thread is marked as a worker (see
/// [`mark_worker_thread`]).
pub fn is_worker_thread() -> bool {
    IS_WORKER.with(|c| c.get())
}

/// Sets this thread's intra-op parallelism budget: the maximum number of
/// pool threads a kernel invoked from this thread may split one operation
/// over. `0` clears the budget (unlimited).
///
/// This is how inter-op workers (the serving engine's per-request threads)
/// and intra-op kernels (the GEMM row-panel split) **compose** without
/// oversubscription: an engine running `w` workers on `c` cores gives each
/// worker a budget of `c / w`, so `workers x intra-op threads <= cores`.
/// A budget of `1` keeps kernels serial on this thread — the pre-budget
/// behavior of [`mark_worker_thread`] — without making it a pool worker
/// (nested scopes from it still fan out if the budget allows).
pub fn set_intra_op_threads(n: usize) {
    INTRA_OP.with(|c| c.set(n));
}

/// This thread's intra-op budget: the cap from [`set_intra_op_threads`],
/// `1` on pool workers (they own exactly one core of a split already), or
/// `usize::MAX` when unset. Kernels take `min(budget, pool.threads())`.
pub fn intra_op_threads() -> usize {
    if is_worker_thread() {
        return 1;
    }
    match INTRA_OP.with(|c| c.get()) {
        0 => usize::MAX,
        n => n,
    }
}

/// Resolves a thread count: `requested` if non-zero, else the
/// `PARALLEL_THREADS` environment variable, else available parallelism
/// (always at least 1).
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn env_threads() -> Option<usize> {
    std::env::var("PARALLEL_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// The process-wide pool, sized by [`resolve_threads`]`(0)` on first use.
///
/// The GEMM layer draws from this pool; code that needs an explicit size
/// (benchmarks, determinism tests) builds its own [`ThreadPool`].
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::new(resolve_threads(0)))
}

/// Bookkeeping shared between a scope and its in-flight tasks.
#[derive(Default)]
struct ScopeState {
    pending: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
}

impl ScopeState {
    fn add(&self) {
        *self.pending.lock().expect("scope lock") += 1;
    }

    fn done(&self) {
        let mut p = self.pending.lock().expect("scope lock");
        *p -= 1;
        if *p == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut p = self.pending.lock().expect("scope lock");
        while *p > 0 {
            p = self.all_done.wait(p).expect("scope lock");
        }
    }
}

/// A fixed-size pool of worker threads executing scoped tasks.
///
/// # Examples
///
/// ```
/// let pool = parallel::ThreadPool::new(4);
/// let mut halves = [0u64; 2];
/// let (lo, hi) = halves.split_at_mut(1);
/// pool.scope(|s| {
///     s.spawn(|| lo[0] = (0..1000).sum());
///     s.spawn(|| hi[0] = (1000..2000).sum());
/// });
/// assert_eq!(halves[0] + halves[1], (0..2000).sum());
/// ```
pub struct ThreadPool {
    job_tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = (0..threads)
            .map(|i| {
                let job_rx = Arc::clone(&job_rx);
                std::thread::Builder::new()
                    .name(format!("parallel-{i}"))
                    .spawn(move || worker_loop(&job_rx))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            job_tx: Some(job_tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    fn submit(&self, job: Job) {
        self.job_tx
            .as_ref()
            .expect("pool alive until drop")
            .send(job)
            .expect("pool workers alive until drop");
    }

    /// Runs `f` with a [`Scope`] on which borrowing tasks can be spawned;
    /// returns only after every spawned task has completed.
    ///
    /// If any task panics (or `f` itself does), the panic is re-raised here
    /// — after all tasks have finished, so borrowed data is never left
    /// aliased.
    pub fn scope<'pool, 'env, F, R>(&'pool self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState::default()),
            env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Always drain before returning: spawned jobs borrow the caller's
        // stack frame.
        scope.state.wait();
        match result {
            Ok(r) => {
                if scope.state.panicked.load(Ordering::SeqCst) {
                    panic!("a task spawned on a parallel scope panicked");
                }
                r
            }
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Evaluates `f(0..n)` across the pool, returning results in index
    /// order. The caller blocks until all results are in.
    ///
    /// Indices are submitted as `min(threads, n)` contiguous-range jobs
    /// (not one closure per index), so per-job dispatch cost is paid once
    /// per thread, and each result lands in its own cache-line-aligned
    /// slot so concurrent writers never false-share.
    pub fn run_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        /// One result, alone on its cache line(s).
        #[repr(align(128))]
        struct Slot<T>(Option<T>);
        if n == 0 {
            return Vec::new();
        }
        let mut out: Vec<Slot<T>> = (0..n).map(|_| Slot(None)).collect();
        let per = n.div_ceil(self.threads().min(n));
        self.scope(|s| {
            let f = &f;
            for (chunk, slots) in out.chunks_mut(per).enumerate() {
                s.spawn(move || {
                    for (off, slot) in slots.iter_mut().enumerate() {
                        slot.0 = Some(f(chunk * per + off));
                    }
                });
            }
        });
        out.into_iter()
            .map(|s| s.0.expect("scope completed every task"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.job_tx.take(); // close the channel; workers exit their loop
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(jobs: &Arc<Mutex<Receiver<Job>>>) {
    mark_worker_thread();
    loop {
        let job = {
            let rx = match jobs.lock() {
                Ok(rx) => rx,
                Err(_) => return,
            };
            match rx.recv() {
                Ok(job) => job,
                Err(_) => return, // channel closed: pool dropped
            }
        };
        job();
    }
}

/// Handle for spawning borrowing tasks inside [`ThreadPool::scope`].
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`: tasks may borrow from the caller's frame.
    env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Spawns a task that may borrow from the enclosing scope.
    ///
    /// Called from a worker thread (nested parallelism), the task runs
    /// inline instead — see the module docs.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        if is_worker_thread() {
            f();
            return;
        }
        self.state.add();
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                state.panicked.store(true, Ordering::SeqCst);
            }
            state.done();
        });
        // SAFETY: `scope` does not return before `ScopeState::wait` has
        // observed every spawned job complete, so all `'env` borrows inside
        // the job strictly outlive its execution; erasing the lifetime to
        // queue it on 'static workers is therefore sound.
        let job: Job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
        self.pool.submit(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_runs_borrowing_tasks_to_completion() {
        let pool = ThreadPool::new(3);
        let mut out = vec![0usize; 64];
        pool.scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = i * i);
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn run_indexed_preserves_order() {
        let pool = ThreadPool::new(4);
        let got = pool.run_indexed(100, |i| i as u64 * 3);
        assert_eq!(got, (0..100).map(|i| i * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn nested_scopes_run_inline_without_deadlock() {
        let pool = ThreadPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                // This runs on the single worker; the nested scope must not
                // wait on that same (busy) worker.
                pool.scope(|inner| {
                    for _ in 0..4 {
                        inner.spawn(|| {
                            hits.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        let pool = ThreadPool::new(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..8 {
                    let finished = Arc::clone(&finished);
                    s.spawn(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must surface to the scope caller");
        assert_eq!(finished.load(Ordering::SeqCst), 7, "other tasks still ran");
        // The pool stays usable after a task panic.
        assert_eq!(pool.run_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(5), 5);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn worker_threads_are_marked() {
        let pool = ThreadPool::new(1);
        let marked = pool.run_indexed(1, |_| is_worker_thread());
        assert!(marked[0]);
        assert!(!is_worker_thread(), "caller thread is not a worker");
    }

    #[test]
    fn run_indexed_handles_empty_and_undersized_inputs() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.run_indexed(0, |i| i), Vec::<usize>::new());
        // Fewer items than threads: every index still runs exactly once.
        assert_eq!(pool.run_indexed(2, |i| i * 7), vec![0, 7]);
    }

    #[test]
    fn intra_op_budget_defaults_and_overrides() {
        assert_eq!(intra_op_threads(), usize::MAX, "unset = unlimited");
        set_intra_op_threads(3);
        assert_eq!(intra_op_threads(), 3);
        set_intra_op_threads(0);
        assert_eq!(intra_op_threads(), usize::MAX);
        // Pool workers always report a budget of 1, whatever was set.
        let pool = ThreadPool::new(1);
        let on_worker = pool.run_indexed(1, |_| intra_op_threads());
        assert_eq!(on_worker[0], 1);
    }
}
