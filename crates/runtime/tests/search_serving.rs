//! Engine-backed schedule search: the [`EngineCostModel`] scoring path
//! must be bit-identical to the serial `TrainedModel` cost model (invalid
//! candidates ranking INFINITY per the engine convention), its encode
//! arena must stop allocating after warmup, and a generational search
//! driven through a fault-injected, window-batched engine must converge
//! to exactly the same trace as a clean serial run — faults heal, they
//! never change results.

use std::sync::Arc;

use cdmpp_core::batch::FeatScaler;
use cdmpp_core::{
    generational_search, CostModel, GenSearchConfig, InferenceModel, Predictor, PredictorConfig,
    TrainConfig, TrainedModel,
};
use learn::TransformKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use runtime::{EngineConfig, EngineCostModel, FaultPlan, InferenceEngine};
use tir::{lower, sample_schedule, OpSpec, TensorProgram};

fn trained(max_leaves: usize) -> TrainedModel {
    TrainedModel {
        predictor: Predictor::new(PredictorConfig {
            max_leaves,
            ..Default::default()
        }),
        transform: TransformKind::BoxCox.fit(&[0.5, 1.0, 2.0, 4.0]),
        scaler: FeatScaler::identity(),
        use_pe: true,
        train_config: TrainConfig::default(),
    }
}

fn frozen(max_leaves: usize) -> InferenceModel {
    trained(max_leaves).freeze()
}

/// Deterministic candidate mix across three op shapes (leaf counts 2-4),
/// like a search round's lowered proposals.
fn candidate_programs(seed: u64, count: usize) -> Vec<TensorProgram> {
    let mut rng = StdRng::seed_from_u64(seed);
    let specs = [
        OpSpec::Dense {
            m: 32,
            n: 32,
            k: 32,
        },
        OpSpec::Softmax { rows: 32, cols: 64 },
        OpSpec::BatchMatmul {
            b: 2,
            m: 16,
            n: 16,
            k: 16,
        },
    ];
    let mut out = Vec::new();
    'outer: loop {
        for spec in specs {
            let nest = spec.canonical_nest();
            let s = sample_schedule(&nest, &mut rng);
            out.push(lower(&nest, &s).unwrap());
            if out.len() == count {
                break 'outer;
            }
        }
    }
    out
}

#[test]
fn engine_cost_model_matches_trained_model_bitwise() {
    // max_leaves = 3: the 3-leaf Dense candidates are valid, the 4-leaf
    // Softmax ones are not — the mix exercises both branches.
    let reference = trained(3);
    // The serial reference serves f32 weights, so pin the engine's freeze
    // to f32 explicitly — under a forced CDMPP_QUANT the quantization
    // delta would otherwise (correctly) break bit-identity.
    let engine = Arc::new(InferenceEngine::new(
        trained(3).freeze_quantized(tensor::QuantMode::F32),
        EngineConfig {
            workers: 2,
            max_batch: 4,
            ..Default::default()
        },
    ));
    let cost = EngineCostModel::new(Arc::clone(&engine), 2);
    let progs = candidate_programs(11, 48);
    let refs: Vec<&TensorProgram> = progs.iter().collect();
    let dev = devsim::t4();

    let want = reference.score_batch(&refs, &dev);
    let (mut valid, mut invalid) = (0usize, 0usize);
    for round in 0..3 {
        let got = cost.score_batch(&refs, &dev);
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            if w.is_nan() {
                // TrainedModel NaNs unsupported leaf counts; the engine
                // convention ranks them INFINITY (sorts last either way,
                // but INFINITY composes with total_cmp ranking).
                assert_eq!(*g, f64::INFINITY, "round {round}, candidate {i}");
                invalid += 1;
            } else {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "round {round}, candidate {i}: engine-scored must be \
                     bit-identical to the serial cost model"
                );
                valid += 1;
            }
        }
    }
    assert!(valid > 0 && invalid > 0, "mix must exercise both branches");

    // Steady state: the warmed arena stops growing on repeat rounds of the
    // same (or smaller) workload.
    let warmed = cost.arena_growth();
    for _ in 0..5 {
        cost.score_batch(&refs, &dev);
        cost.score_batch(&refs[..16], &dev);
    }
    assert_eq!(
        cost.arena_growth(),
        warmed,
        "warmed encode arena must not grow across repeat score rounds"
    );

    let t = cost.timings();
    assert!(
        t.scored > 0 && t.encode_ns > 0 && t.dispatch_ns > 0,
        "{t:?}"
    );
}

#[test]
fn generational_search_converges_identically_under_faults_and_window() {
    // The CI fault plan + a 1ms batch window against a clean serial run:
    // injected panics retry to bit-exact scores and injected delays only
    // slow dispatch, so the search must converge to the *same trace* —
    // same per-round predictions, same measured latencies, same winner.
    let nest = OpSpec::Dense {
        m: 128,
        n: 128,
        k: 128,
    }
    .canonical_nest();
    let dev = devsim::t4();
    let cfg = GenSearchConfig {
        rounds: 4,
        candidates_per_round: 200,
        measure_per_round: 3,
        population: 8,
        seed: 7,
        ..Default::default()
    };

    let serial = frozen(8);
    let want = generational_search(&nest, &dev, &serial, &cfg);

    let engine = Arc::new(InferenceEngine::new(
        frozen(8),
        EngineConfig {
            workers: 2,
            max_batch: 2, // many small chunks -> the panic fault really fires
            max_retries: 20,
            batch_window: Some(runtime::BatchWindow::millis(1)),
            faults: Some(
                FaultPlan::parse("panic@replay:every=97;delay@replay:ms=1,every=13").unwrap(),
            ),
            ..Default::default()
        },
    ));
    let cost = EngineCostModel::new(Arc::clone(&engine), 0);
    let got = generational_search(&nest, &dev, &cost, &cfg);

    assert_eq!(got.best_schedule, want.best_schedule);
    assert_eq!(got.best_measured.to_bits(), want.best_measured.to_bits());
    assert_eq!(got.measurements, want.measurements);
    assert_eq!(got.rounds.len(), want.rounds.len());
    for (i, (g, w)) in got.rounds.iter().zip(&want.rounds).enumerate() {
        assert_eq!(g.unique, w.unique, "round {i}");
        assert_eq!(
            g.best_predicted.to_bits(),
            w.best_predicted.to_bits(),
            "round {i}: the faulty engine's ranking must be bit-identical"
        );
        assert_eq!(g.round_measured.to_bits(), w.round_measured.to_bits());
        assert_eq!(g.best_measured.to_bits(), w.best_measured.to_bits());
    }

    let s = engine.stats();
    assert!(
        s.worker_panics > 0,
        "the panic fault must actually have fired: {s}"
    );
    assert_eq!(
        s.score_sheds, 0,
        "healed faults never shed a candidate: {s}"
    );
    assert!(
        s.window_fill_flushes + s.window_timer_flushes > 0,
        "the batch window must actually have dispatched: {s}"
    );
}
