//! Fault-injection coverage for the hardened ingress: every fault kind ×
//! admission policy combination must resolve every request to exactly one
//! typed outcome — no hangs, no lost replies, no wrong results.
//!
//! The engine's own [`FaultPlan`] drives the failures deterministically
//! (per-engine counters), so these tests assert exact self-healing
//! behavior: injected worker panics retry to bit-exact results, injected
//! latency drives real deadline sheds, injected and real queue saturation
//! produce typed `Overloaded` rejections, and a model hot-swap under
//! sustained faulty traffic never serves a torn result.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use cdmpp_core::batch::{EncodedSample, FeatScaler};
use cdmpp_core::{Predictor, PredictorConfig, TrainConfig, TrainedModel};
use features::{N_DEVICE_FEATURES, N_ENTRY};
use learn::TransformKind;
use runtime::{
    AdmissionPolicy, ChunkPolicy, Deadline, EngineConfig, EngineError, FaultPlan, InferenceEngine,
    SubmitOptions,
};

fn trained(transform: TransformKind) -> TrainedModel {
    TrainedModel {
        predictor: Predictor::new(PredictorConfig::default()),
        transform: transform.fit(&[0.5, 1.0, 2.0, 4.0]),
        scaler: FeatScaler::identity(),
        use_pe: true,
        train_config: TrainConfig::default(),
    }
}

fn frozen(transform: TransformKind) -> cdmpp_core::InferenceModel {
    trained(transform).freeze()
}

fn stream(n: usize) -> Vec<EncodedSample> {
    (0..n)
        .map(|i| {
            let leaves = 1 + i % 7;
            EncodedSample {
                record_idx: i,
                leaf_count: leaves,
                x: (0..leaves * N_ENTRY)
                    .map(|j| ((i * 97 + j) as f32 * 0.0231).sin())
                    .collect(),
                dev: [0.25; N_DEVICE_FEATURES],
                y_raw: 1e-3,
            }
        })
        .collect()
}

fn engine_with(faults: &str, cfg: EngineConfig) -> InferenceEngine {
    InferenceEngine::new(
        frozen(TransformKind::None),
        EngineConfig {
            faults: Some(FaultPlan::parse(faults).unwrap()),
            ..cfg
        },
    )
}

#[test]
fn injected_panics_heal_to_bit_exact_results() {
    // Every 5th chunk replay panics; the default retry budget re-dispatches
    // each panicked chunk onto the respawned worker. The caller must see
    // results bit-identical to an undisturbed serial run, and the pool must
    // stay at full strength throughout.
    let model = frozen(TransformKind::None);
    let enc = stream(160);
    let want = model.predict_samples(&enc).unwrap();
    let engine = InferenceEngine::new(
        model,
        EngineConfig {
            workers: 2,
            max_batch: 4,
            // A retried chunk's replay passage can land on another multiple
            // of `every` (~1/5 odds under interleaving); a generous budget
            // makes budget exhaustion astronomically unlikely.
            max_retries: 20,
            faults: Some(FaultPlan::parse("panic@replay:every=5").unwrap()),
            ..Default::default()
        },
    );
    for _ in 0..3 {
        let got = engine.predict_samples(&enc).unwrap();
        assert_eq!(got, want, "retried chunks must be bit-exact");
    }
    let s = engine.stats();
    assert!(s.worker_panics > 0, "faults must actually have fired: {s}");
    assert_eq!(
        s.chunk_retries, s.worker_panics,
        "with the budget never exhausted, every caught panic is retried: {s}"
    );
    assert!(s.worker_restarts >= s.worker_panics);
    assert_eq!(engine.worker_count(), 2, "panics must not shrink the pool");
}

#[test]
fn exhausted_retries_surface_typed_per_sample_errors() {
    // One injected panic, zero retry budget, one worker: the first chunk
    // dispatched fails with a typed per-sample error; every other sample is
    // bit-exact. The legacy whole-call API collapses to the typed error.
    let model = frozen(TransformKind::None);
    let enc = stream(40);
    let want = model.predict_samples(&enc).unwrap();
    let mk = || {
        InferenceEngine::new(
            frozen(TransformKind::None),
            EngineConfig {
                workers: 1,
                max_batch: 4,
                max_retries: 0,
                faults: Some(FaultPlan::parse("panic@replay:times=1").unwrap()),
                ..Default::default()
            },
        )
    };

    let engine = mk();
    let per = engine
        .predict_samples_opts(&enc, &SubmitOptions::default())
        .unwrap();
    assert_eq!(per.len(), enc.len(), "exactly one outcome per sample");
    let mut panicked = 0usize;
    for (i, r) in per.iter().enumerate() {
        match r {
            Ok(p) => assert_eq!(*p, want[i], "unaffected sample {i} must be exact"),
            Err(EngineError::WorkerPanicked) => panicked += 1,
            Err(other) => panic!("unexpected error for sample {i}: {other}"),
        }
    }
    assert!(
        (1..=4).contains(&panicked),
        "exactly one chunk (<= max_batch samples) fails, got {panicked}"
    );
    let s = engine.stats();
    assert_eq!(s.worker_panics, 1);
    assert_eq!(s.chunk_retries, 0);
    assert_eq!(engine.worker_count(), 1);
    // The pool self-healed: the fault is spent, follow-ups are exact.
    assert_eq!(engine.predict_samples(&enc).unwrap(), want);

    // Same fault through the legacy API: the whole call fails typed.
    let engine = mk();
    match engine.predict_samples(&enc) {
        Err(EngineError::WorkerPanicked) => {}
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
}

#[test]
fn injected_latency_drives_real_deadline_sheds() {
    // One worker sleeping 100ms per chunk, a 250ms deadline, and 8 chunks:
    // the first chunk (starts immediately) must be served, the last chunk
    // (starts after >= 700ms of predecessor sleeps) must be shed. Served
    // samples are bit-exact; every sample resolves exactly once.
    let model = frozen(TransformKind::None);
    let enc: Vec<EncodedSample> = stream(32)
        .into_iter()
        .map(|mut s| {
            s.leaf_count = 3; // one leaf bucket -> deterministic chunking
            s.x.resize(3 * N_ENTRY, 0.1);
            s
        })
        .collect();
    let want = model.predict_samples(&enc).unwrap();
    let engine = InferenceEngine::new(
        model,
        EngineConfig {
            workers: 1,
            max_batch: 4,
            faults: Some(FaultPlan::parse("delay@replay:ms=100").unwrap()),
            ..Default::default()
        },
    );
    let per = engine
        .predict_samples_opts(
            &enc,
            &SubmitOptions::deadline_within(Duration::from_millis(250)),
        )
        .unwrap();
    assert_eq!(per.len(), enc.len(), "exactly one outcome per sample");
    let (mut served, mut shed) = (0usize, 0usize);
    for (i, r) in per.iter().enumerate() {
        match r {
            Ok(p) => {
                assert_eq!(*p, want[i], "served sample {i} must be bit-exact");
                served += 1;
            }
            Err(EngineError::DeadlineExceeded) => shed += 1,
            Err(other) => panic!("unexpected error for sample {i}: {other}"),
        }
    }
    assert!(served >= 4, "first chunk must beat the deadline ({served})");
    assert!(shed >= 4, "last chunk must be shed ({shed})");
    assert!(engine.stats().deadline_sheds >= 1);
    // Deadline-free traffic afterwards is exact (delay slows, not breaks).
    assert_eq!(engine.predict_samples(&enc).unwrap(), want);
}

#[test]
fn spent_latency_fault_sheds_every_sample_deterministically() {
    // The single worker sleeps once for 60ms against a 30ms deadline: the
    // slept-through chunk is shed post-delay, and every later chunk is shed
    // on its own expired deadline. All samples resolve DeadlineExceeded.
    let engine = engine_with(
        "delay@replay:ms=60,times=1",
        EngineConfig {
            workers: 1,
            max_batch: 4,
            ..Default::default()
        },
    );
    let enc = stream(24);
    let per = engine
        .predict_samples_opts(
            &enc,
            &SubmitOptions::deadline_within(Duration::from_millis(30)),
        )
        .unwrap();
    assert_eq!(per.len(), enc.len());
    for (i, r) in per.iter().enumerate() {
        match r {
            Err(EngineError::DeadlineExceeded) => {}
            other => panic!("sample {i}: expected DeadlineExceeded, got {other:?}"),
        }
    }
    // The fault is spent; an undeadlined follow-up is served in full.
    assert_eq!(engine.predict_samples(&enc).unwrap().len(), enc.len());
}

#[test]
fn forced_rejections_alternate_deterministically() {
    // reject@admit:every=2 fires on exactly every second call: admitted,
    // rejected, admitted, rejected — with the typed Overloaded error.
    let engine = engine_with(
        "reject@admit:every=2",
        EngineConfig {
            workers: 1,
            max_batch: 8,
            ..Default::default()
        },
    );
    let enc = stream(8);
    for call in 1..=6u64 {
        let res = engine.predict_samples(&enc);
        if call % 2 == 0 {
            match res {
                Err(EngineError::Overloaded { capacity, .. }) => {
                    assert_eq!(capacity, runtime::DEFAULT_QUEUE_CAPACITY)
                }
                other => panic!("call {call}: expected Overloaded, got {other:?}"),
            }
        } else {
            assert_eq!(res.unwrap().len(), enc.len(), "call {call}");
        }
    }
    let s = engine.stats();
    assert_eq!((s.admitted, s.rejected), (3, 3), "{s}");
}

#[test]
fn real_saturation_rejects_typed_and_recovers() {
    // A tiny queue, a slow worker, and four hammer threads: overloaded
    // calls must fail fast with the typed Overloaded error carrying the
    // real capacity, successful calls must be bit-exact, and the engine
    // must serve normally once the storm passes.
    let model = frozen(TransformKind::None);
    let enc = stream(24);
    let want = model.predict_samples(&enc).unwrap();
    let engine = InferenceEngine::new(
        model,
        EngineConfig {
            workers: 1,
            max_batch: 4,
            queue_capacity: 2,
            admission: AdmissionPolicy::Reject,
            faults: Some(FaultPlan::parse("delay@replay:ms=10").unwrap()),
            ..Default::default()
        },
    );
    let rejected = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..12 {
                    match engine.predict_samples(&enc) {
                        Ok(got) => assert_eq!(got, want, "served calls must be exact"),
                        Err(EngineError::Overloaded { capacity, .. }) => {
                            assert_eq!(capacity, 2);
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            });
        }
    });
    assert!(
        rejected.load(Ordering::Relaxed) > 0,
        "a 2-chunk queue against a 10ms/chunk worker and 4 hammers must \
         reject someone (stats: {})",
        engine.stats()
    );
    assert_eq!(engine.stats().rejected, rejected.load(Ordering::Relaxed));
    // Post-storm: the same engine serves cleanly.
    assert_eq!(engine.predict_samples(&enc).unwrap(), want);
}

#[test]
fn blocking_admission_waits_out_saturation() {
    // Same tiny queue and slow worker, but Block admission with a generous
    // timeout: nobody is rejected — calls queue up behind the drain and
    // every result is bit-exact.
    let model = frozen(TransformKind::None);
    let enc = stream(24);
    let want = model.predict_samples(&enc).unwrap();
    let engine = InferenceEngine::new(
        model,
        EngineConfig {
            workers: 1,
            max_batch: 4,
            queue_capacity: 2,
            admission: AdmissionPolicy::Block {
                timeout: Duration::from_secs(30),
            },
            faults: Some(FaultPlan::parse("delay@replay:ms=5").unwrap()),
            ..Default::default()
        },
    );
    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                for _ in 0..6 {
                    assert_eq!(engine.predict_samples(&enc).unwrap(), want);
                }
            });
        }
    });
    let s = engine.stats();
    assert_eq!(s.rejected, 0, "blocking admission must not reject: {s}");
    assert_eq!(s.admitted, 18);
}

#[test]
fn hot_swap_under_sustained_traffic_never_tears_a_call() {
    // Two models with distinguishable transforms. Hammer threads predict
    // continuously while the main thread swaps A -> B. Every single call's
    // full result vector must equal the serial reference of exactly one
    // model — a torn (mixed-generation) result is the failure mode this
    // guards against.
    let enc = stream(48);
    let model_a = frozen(TransformKind::None);
    let model_b = frozen(TransformKind::BoxCox);
    let ref_a = model_a.predict_samples(&enc).unwrap();
    let ref_b = model_b.predict_samples(&enc).unwrap();
    assert_ne!(ref_a, ref_b, "fixture models must be distinguishable");

    let engine = InferenceEngine::new(
        model_a,
        EngineConfig {
            workers: 3,
            max_batch: 8,
            faults: Some(FaultPlan::none()),
            ..Default::default()
        },
    );
    assert_eq!(engine.generation(), 0);
    assert_eq!(engine.predict_samples(&enc).unwrap(), ref_a);

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    let (mut saw_a, mut saw_b) = (0usize, 0usize);
                    for _ in 0..40 {
                        let got = engine.predict_samples(&enc).unwrap();
                        if got == ref_a {
                            saw_a += 1;
                        } else if got == ref_b {
                            saw_b += 1;
                        } else {
                            panic!("torn result: matches neither model's reference");
                        }
                    }
                    (saw_a, saw_b)
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(3));
        let generation = engine.swap_model(frozen(TransformKind::BoxCox)).unwrap();
        assert_eq!(generation, 1);
        for h in handles {
            let (saw_a, saw_b) = h.join().unwrap();
            assert_eq!(saw_a + saw_b, 40, "every call resolves exactly once");
        }
    });
    // After the swap returns, every new admission is on the new model.
    assert_eq!(engine.predict_samples(&enc).unwrap(), ref_b);
    assert_eq!(engine.generation(), 1);
    let s = engine.stats();
    assert_eq!(s.swaps, 1, "{s}");
}

#[test]
fn snapshot_file_swap_cuts_over_and_bad_files_leave_old_model_serving() {
    let enc = stream(32);
    let trained_b = trained(TransformKind::YeoJohnson);
    let ref_a = frozen(TransformKind::None).predict_samples(&enc).unwrap();
    let ref_b = trained_b.freeze().predict_samples(&enc).unwrap();
    assert_ne!(ref_a, ref_b);

    let dir = std::env::temp_dir().join(format!("cdmpp-swap-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("next.cdmppsnap");
    trained_b.save_snapshot(&path).unwrap();

    let engine = engine_with(
        "",
        EngineConfig {
            workers: 2,
            max_batch: 8,
            ..Default::default()
        },
    );
    assert_eq!(engine.predict_samples(&enc).unwrap(), ref_a);

    // A bad snapshot is a typed error and a no-op on the served model.
    let bad = dir.join("bad.cdmppsnap");
    std::fs::write(&bad, b"not a snapshot").unwrap();
    match engine.swap_snapshot(&bad) {
        Err(EngineError::Snapshot(_)) => {}
        other => panic!("expected Snapshot error, got {other:?}"),
    }
    assert_eq!(engine.generation(), 0);
    assert_eq!(engine.predict_samples(&enc).unwrap(), ref_a);

    // The good file cuts over atomically.
    let generation = engine.swap_snapshot(&path).unwrap();
    assert_eq!(generation, 1);
    assert_eq!(engine.predict_samples(&enc).unwrap(), ref_b);
    // Specialized plans were prewarmed before publication: serving the
    // swapped model recorded no plans on the hot path beyond the prewarm.
    let compiles_after_swap = engine.model().predictor.plan_compile_count();
    engine.predict_samples(&enc).unwrap();
    assert_eq!(
        engine.model().predictor.plan_compile_count(),
        compiles_after_swap,
        "post-swap serving must not hit a folding cliff"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_fault_and_policy_combination_resolves_cleanly() {
    // The full matrix: chunk policy x fault profile x admission policy.
    // With no deadline and the default retry budget, every combination
    // must serve bit-exact results, resolve every sample exactly once,
    // and tear down to a typed refusal.
    let model = frozen(TransformKind::None);
    let enc = stream(30);
    let want = model.predict_samples(&enc).unwrap();
    let policies = [
        ChunkPolicy::Ragged,
        ChunkPolicy::Stable,
        ChunkPolicy::PadToClass { min_fill_pct: 50 },
    ];
    let faults = ["panic@replay:every=3", "delay@replay:ms=2,every=2"];
    let admissions = [
        AdmissionPolicy::Reject,
        AdmissionPolicy::Block {
            timeout: Duration::from_secs(30),
        },
    ];
    for policy in policies {
        for fault in faults {
            for admission in admissions {
                let label = format!("{policy:?} / {fault} / {admission:?}");
                let engine = InferenceEngine::new(
                    frozen(TransformKind::None),
                    EngineConfig {
                        workers: 2,
                        max_batch: 4,
                        policy,
                        admission,
                        // See injected_panics_heal_to_bit_exact_results: a
                        // big budget keeps re-fired retries from exhausting.
                        max_retries: 20,
                        faults: Some(FaultPlan::parse(fault).unwrap()),
                        ..Default::default()
                    },
                );
                let per = engine
                    .predict_samples_opts(&enc, &SubmitOptions::default())
                    .unwrap();
                assert_eq!(per.len(), enc.len(), "{label}: one outcome per sample");
                for (i, r) in per.into_iter().enumerate() {
                    match r {
                        Ok(p) => assert_eq!(p, want[i], "{label}: sample {i}"),
                        Err(other) => panic!("{label}: sample {i} failed: {other}"),
                    }
                }
                engine.shutdown();
                match engine.predict_samples(&enc) {
                    Err(EngineError::WorkersUnavailable) => {}
                    other => panic!("{label}: expected refusal after shutdown, got {other:?}"),
                }
            }
        }
    }
}

#[test]
fn delay_faults_racing_the_batch_window_stay_bit_exact() {
    // Injected replay latency (2ms every 3rd chunk) against a 1ms batch
    // window: timer flushes race slowed workers, window merges race
    // fill flushes, and concurrent callers' partial chunks interleave in
    // the pending buffers. Every call must still come back bit-identical
    // to the serial reference — delays reorder *when* merged chunks
    // execute, never what they compute.
    let model = frozen(TransformKind::None);
    let enc = stream(21); // leaf mix -> several below-class partial chunks
    let want = model.predict_samples(&enc).unwrap();
    let engine = InferenceEngine::new(
        model,
        EngineConfig {
            workers: 2,
            max_batch: 8,
            batch_window: Some(runtime::BatchWindow::millis(1)),
            promote_after: 4,
            faults: Some(FaultPlan::parse("delay@replay:ms=2,every=3").unwrap()),
            ..Default::default()
        },
    );
    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                for _ in 0..8 {
                    assert_eq!(
                        engine.predict_samples(&enc).unwrap(),
                        want,
                        "windowed results must match serial under delay faults"
                    );
                }
            });
        }
    });
    let s = engine.stats();
    assert!(
        s.window_fill_flushes + s.window_timer_flushes > 0,
        "the window must actually have dispatched something: {s}"
    );
    // Teardown under the same faults: typed refusal, no hang.
    engine.shutdown();
    match engine.predict_samples(&enc) {
        Err(EngineError::WorkersUnavailable) => {}
        other => panic!("expected WorkersUnavailable after shutdown, got {other:?}"),
    }
}

#[test]
fn parked_window_segments_count_toward_admission() {
    // Samples held in BatchWindow pending buffers are backlog the engine
    // has accepted, but the pre-fix admission check only counted queued
    // chunks — a trickle flood could park unbounded work behind a long
    // window without ever tripping Overloaded. Parked segments now count:
    // with a 2-slot queue and a window that never times out, the third
    // single-sample call must be rejected while the queue itself is still
    // empty, and the parked calls must still complete bit-exact through
    // the injected replay delay once shutdown flushes them.
    let model = frozen(TransformKind::None);
    let one: Vec<EncodedSample> = stream(1)
        .into_iter()
        .map(|mut s| {
            s.leaf_count = 3;
            s.x.resize(3 * N_ENTRY, 0.1);
            s
        })
        .collect();
    let want = model.predict_samples(&one).unwrap();
    let engine = InferenceEngine::new(
        model,
        EngineConfig {
            workers: 1,
            max_batch: 8,
            queue_capacity: 2,
            admission: AdmissionPolicy::Reject,
            // Saturating delay: pending buffers flush only on fill or
            // shutdown, so parked segments stay parked for the probe.
            batch_window: Some(runtime::BatchWindow::millis(u64::MAX)),
            faults: Some(FaultPlan::parse("delay@replay:ms=1").unwrap()),
            ..Default::default()
        },
    );
    let wait_for_parked = |n: u64| {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while engine.stats().parked < n {
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for {n} parked segments: {}",
                engine.stats()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    };
    std::thread::scope(|s| {
        let h1 = s.spawn(|| engine.predict_samples(&one).unwrap());
        wait_for_parked(1);
        let h2 = s.spawn(|| engine.predict_samples(&one).unwrap());
        wait_for_parked(2);
        let st = engine.stats();
        assert_eq!(st.queue_depth, 0, "backlog is parked, not queued: {st}");
        match engine.predict_samples(&one) {
            Err(EngineError::Overloaded { depth, capacity }) => {
                assert_eq!(capacity, 2);
                assert!(depth >= 2, "depth must include parked segments: {depth}");
            }
            other => panic!("expected Overloaded from parked backlog, got {other:?}"),
        }
        // Shutdown flushes the pending buffer into the still-open queue:
        // the parked calls complete, merged, bit-exact.
        engine.shutdown();
        assert_eq!(h1.join().unwrap(), want);
        assert_eq!(h2.join().unwrap(), want);
    });
    let st = engine.stats();
    assert_eq!(st.parked, 0, "flush must unpark everything: {st}");
    assert!(st.rejected >= 1, "{st}");
}

#[test]
fn pre_expired_deadline_is_shed_before_admission() {
    let engine = engine_with(
        "",
        EngineConfig {
            workers: 1,
            max_batch: 8,
            ..Default::default()
        },
    );
    let enc = stream(8);
    let opts = SubmitOptions {
        deadline: Some(Deadline::at(std::time::Instant::now())),
    };
    match engine.predict_samples_opts(&enc, &opts) {
        Err(EngineError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let s = engine.stats();
    assert_eq!(s.admitted, 0, "expired calls never reach admission: {s}");
    assert!(s.deadline_sheds >= 1);
}
