//! Engine failure paths: a shut-down worker pool must surface
//! `EngineError::WorkersUnavailable` (never hang), and mixed valid/invalid
//! leaf counts through the `CostModel` must rank only the invalid
//! candidates as infinitely slow.

use cdmpp_core::batch::{EncodedSample, FeatScaler};
use cdmpp_core::{
    encode_programs, CostModel, Predictor, PredictorConfig, TrainConfig, TrainedModel,
};
use features::{N_DEVICE_FEATURES, N_ENTRY};
use learn::TransformKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use runtime::{EngineConfig, EngineError, FaultPlan, InferenceEngine};
use tir::{lower, sample_schedule, OpSpec};

fn frozen_model(max_leaves: usize) -> cdmpp_core::InferenceModel {
    let model = TrainedModel {
        predictor: Predictor::new(PredictorConfig {
            max_leaves,
            ..PredictorConfig::default()
        }),
        transform: TransformKind::None.fit(&[1.0, 2.0, 3.0]),
        scaler: FeatScaler::identity(),
        use_pe: true,
        train_config: TrainConfig::default(),
    };
    model.freeze()
}

fn stream(n: usize) -> Vec<EncodedSample> {
    (0..n)
        .map(|i| {
            let leaves = 1 + i % 7;
            EncodedSample {
                record_idx: i,
                leaf_count: leaves,
                x: (0..leaves * N_ENTRY)
                    .map(|j| ((i * 131 + j) as f32 * 0.0173).sin())
                    .collect(),
                dev: [0.25; N_DEVICE_FEATURES],
                y_raw: 1e-3,
            }
        })
        .collect()
}

#[test]
fn shutdown_surfaces_workers_unavailable_not_a_hang() {
    let engine = InferenceEngine::new(
        frozen_model(8),
        EngineConfig {
            workers: 2,
            max_batch: 8,
            ..Default::default()
        },
    );
    let enc = stream(24);
    // Healthy pool serves fine.
    assert!(engine.predict_samples(&enc).is_ok());
    engine.shutdown();
    assert_eq!(engine.worker_count(), 0);
    // Every request after shutdown is an immediate, descriptive error.
    match engine.predict_samples(&enc) {
        Err(EngineError::WorkersUnavailable) => {}
        other => panic!("expected WorkersUnavailable, got {other:?}"),
    }
    // Shutdown is idempotent.
    engine.shutdown();
}

#[test]
fn shutdown_racing_in_flight_requests_never_hangs() {
    // Threads hammer the engine while the main thread tears the pool down
    // mid-stream. Every request must complete — either with results or
    // with WorkersUnavailable; the test finishing at all proves no hang.
    let engine = InferenceEngine::new(
        frozen_model(8),
        EngineConfig {
            workers: 3,
            max_batch: 4,
            ..Default::default()
        },
    );
    let enc = stream(60);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = &engine;
                let enc = &enc;
                s.spawn(move || {
                    let mut outcomes = (0usize, 0usize); // (served, refused)
                    for _ in 0..30 {
                        match engine.predict_samples(enc) {
                            Ok(preds) => {
                                assert_eq!(preds.len(), enc.len());
                                outcomes.0 += 1;
                            }
                            Err(EngineError::WorkersUnavailable) => outcomes.1 += 1,
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                    outcomes
                })
            })
            .collect();
        // Let some requests land, then kill the pool under them.
        std::thread::sleep(std::time::Duration::from_millis(5));
        engine.shutdown();
        // Whether any hammer thread observed a refusal is a race (they may
        // all finish before the shutdown lands) — the hard guarantees are
        // that every call completed (the joins return) and that the pool
        // refuses deterministically once shutdown has returned.
        for h in handles {
            let (served, refused) = h.join().unwrap();
            assert_eq!(served + refused, 30, "every request must complete");
        }
    });
    match engine.predict_samples(&enc) {
        Err(EngineError::WorkersUnavailable) => {}
        other => panic!("expected WorkersUnavailable after shutdown, got {other:?}"),
    }
}

#[test]
fn score_batch_ranks_only_invalid_leaf_counts_as_infinity() {
    // A predictor with max_leaves = 2 rejects most real programs: generate
    // a mixed pool and check per-candidate granularity.
    let model = frozen_model(2);
    let theta = model.predictor.config().theta;
    let use_pe = model.use_pe;
    let engine = InferenceEngine::new(model, EngineConfig::single_worker());
    let mut rng = StdRng::seed_from_u64(9);
    let dev = devsim::t4();
    let mut progs = Vec::new();
    for spec in [
        OpSpec::Dense {
            m: 64,
            n: 64,
            k: 64,
        },
        OpSpec::Elementwise {
            n: 2048,
            kind: tir::EwKind::Relu,
        },
        OpSpec::Softmax { rows: 32, cols: 32 },
    ] {
        let nest = spec.canonical_nest();
        for _ in 0..8 {
            progs.push(lower(&nest, &sample_schedule(&nest, &mut rng)).unwrap());
        }
    }
    let refs: Vec<&tir::TensorProgram> = progs.iter().collect();
    let enc = encode_programs(&refs, &dev, theta, use_pe);
    let valid: Vec<bool> = enc
        .iter()
        .map(|s| (1..=2).contains(&s.leaf_count))
        .collect();
    assert!(
        valid.iter().any(|&v| v) && valid.iter().any(|&v| !v),
        "fixture must mix valid and invalid leaf counts (got {:?})",
        enc.iter().map(|s| s.leaf_count).collect::<Vec<_>>()
    );
    let scores = engine.score_batch(&refs, &dev);
    assert_eq!(scores.len(), progs.len());
    for (i, (&ok, score)) in valid.iter().zip(&scores).enumerate() {
        if ok {
            assert!(
                score.is_finite(),
                "candidate {i} (valid leaf count) must get a real score, got {score}"
            );
        } else {
            assert_eq!(
                *score,
                f64::INFINITY,
                "candidate {i} (invalid leaf count) must rank last"
            );
        }
    }
}

fn frozen_with(transform: TransformKind) -> cdmpp_core::InferenceModel {
    let model = TrainedModel {
        predictor: Predictor::new(PredictorConfig::default()),
        transform: transform.fit(&[0.5, 1.0, 2.0, 4.0]),
        scaler: FeatScaler::identity(),
        use_pe: true,
        train_config: TrainConfig::default(),
    };
    model.freeze()
}

#[test]
fn shutdown_racing_swap_reaches_a_consistent_terminal_state() {
    // Swap and shutdown from different threads, in both orders. Neither
    // can deadlock the other (swap touches the served slot, shutdown the
    // queue + pool); the terminal state is always: pool down, predicts
    // refused typed, generation reflecting exactly the swaps that
    // returned Ok.
    let enc = stream(24);
    for _ in 0..20 {
        let engine = InferenceEngine::new(
            frozen_model(8),
            EngineConfig {
                workers: 2,
                max_batch: 4,
                ..Default::default()
            },
        );
        std::thread::scope(|s| {
            let swapper = s.spawn(|| engine.swap_model(frozen_with(TransformKind::BoxCox)));
            let stopper = s.spawn(|| engine.shutdown());
            let swapped = swapper.join().unwrap().unwrap();
            stopper.join().unwrap();
            assert_eq!(swapped, 1, "swap succeeds regardless of pool state");
        });
        assert_eq!(engine.worker_count(), 0);
        assert_eq!(engine.generation(), 1);
        match engine.predict_samples(&enc) {
            Err(EngineError::WorkersUnavailable) => {}
            other => panic!("expected typed refusal, got {other:?}"),
        }
    }
    // Swapping an already-stopped engine also works (publish-only).
    let engine = InferenceEngine::new(frozen_model(8), EngineConfig::single_worker());
    engine.shutdown();
    assert_eq!(
        engine
            .swap_model(frozen_with(TransformKind::BoxCox))
            .unwrap(),
        1
    );
}

#[test]
fn overload_during_drain_stays_typed_and_never_hangs() {
    // A saturated tiny queue with a slow worker, torn down mid-storm:
    // every hammered call must resolve to exactly one typed outcome —
    // served (bit-exact), Overloaded (queue full), or WorkersUnavailable
    // (shutdown won the race). The joins returning at all proves no call
    // hangs on the closing queue.
    let model = frozen_model(8);
    let enc = stream(24);
    let want = model.predict_samples(&enc).unwrap();
    let engine = InferenceEngine::new(
        model,
        EngineConfig {
            workers: 1,
            max_batch: 4,
            queue_capacity: 2,
            faults: Some(FaultPlan::parse("delay@replay:ms=5").unwrap()),
            ..Default::default()
        },
    );
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    let mut outcomes = [0usize; 3]; // served, overloaded, refused
                    for _ in 0..10 {
                        match engine.predict_samples(&enc) {
                            Ok(got) => {
                                assert_eq!(got, want, "served calls stay bit-exact");
                                outcomes[0] += 1;
                            }
                            Err(EngineError::Overloaded { capacity, .. }) => {
                                assert_eq!(capacity, 2);
                                outcomes[1] += 1;
                            }
                            Err(EngineError::WorkersUnavailable) => outcomes[2] += 1,
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                    outcomes
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(10));
        engine.shutdown();
        for h in handles {
            let [served, overloaded, refused] = h.join().unwrap();
            assert_eq!(
                served + overloaded + refused,
                10,
                "every call resolves exactly once"
            );
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any interleaving of predict, hot-swap, and shutdown across threads:
    /// no call may hang (the scope joining proves it), every call gets
    /// exactly one reply, every served result is bit-exact for exactly one
    /// of the two models, and every error is typed.
    #[test]
    fn predict_swap_shutdown_interleavings_resolve_every_request(
        swap_after_us in 0u64..4000,
        shutdown_after_us in 0u64..4000,
        hammers in 1usize..4,
        cap_sel in 0usize..3,
    ) {
        let capacity = [0usize, 2, 256][cap_sel]; // unbounded, tiny, default
        let enc = stream(16);
        let model_a = frozen_model(8);
        let model_b = frozen_with(TransformKind::BoxCox);
        let want_a = model_a.predict_samples(&enc).unwrap();
        let want_b = model_b.predict_samples(&enc).unwrap();
        let engine = InferenceEngine::new(
            model_a,
            EngineConfig {
                workers: 2,
                max_batch: 4,
                queue_capacity: capacity,
                ..Default::default()
            },
        );
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..hammers)
                .map(|_| {
                    s.spawn(|| {
                        let mut resolved = 0usize;
                        for _ in 0..8 {
                            match engine.predict_samples(&enc) {
                                Ok(got) => {
                                    assert!(
                                        got == want_a || got == want_b,
                                        "result must match exactly one model"
                                    );
                                    resolved += 1;
                                }
                                Err(
                                    EngineError::WorkersUnavailable
                                    | EngineError::Overloaded { .. },
                                ) => resolved += 1,
                                Err(other) => panic!("unexpected error: {other}"),
                            }
                        }
                        resolved
                    })
                })
                .collect();
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_micros(swap_after_us));
                engine.swap_model(frozen_with(TransformKind::BoxCox)).unwrap();
            });
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_micros(shutdown_after_us));
                engine.shutdown();
            });
            for h in handles {
                prop_assert_eq!(h.join().unwrap(), 8, "every request got one reply");
            }
            Ok(())
        })?;
        // Terminal state: pool down, swap published, refusals typed.
        prop_assert_eq!(engine.worker_count(), 0);
        prop_assert_eq!(engine.generation(), 1);
        prop_assert!(matches!(
            engine.predict_samples(&enc),
            Err(EngineError::WorkersUnavailable)
        ));
    }
}
