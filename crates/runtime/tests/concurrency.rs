//! Concurrency invariants of the serving engine: N application threads
//! hammering one shared `InferenceEngine` with identical heterogeneous
//! request batches must all get identical, request-ordered results.

use cdmpp_core::batch::{EncodedSample, FeatScaler};
use cdmpp_core::{Predictor, PredictorConfig, TrainConfig, TrainedModel};
use features::{N_DEVICE_FEATURES, N_ENTRY};
use learn::TransformKind;
use runtime::{EngineConfig, InferenceEngine};

fn frozen_model() -> cdmpp_core::InferenceModel {
    let model = TrainedModel {
        predictor: Predictor::new(PredictorConfig::default()),
        transform: TransformKind::None.fit(&[1.0, 2.0, 3.0]),
        scaler: FeatScaler::identity(),
        use_pe: true,
        train_config: TrainConfig::default(),
    };
    model.freeze()
}

fn stream(n: usize) -> Vec<EncodedSample> {
    (0..n)
        .map(|i| {
            let leaves = 1 + i % 7;
            EncodedSample {
                record_idx: i,
                leaf_count: leaves,
                x: (0..leaves * N_ENTRY)
                    .map(|j| ((i * 131 + j) as f32 * 0.0173).sin())
                    .collect(),
                dev: [0.25; N_DEVICE_FEATURES],
                y_raw: 1e-3,
            }
        })
        .collect()
}

#[test]
fn n_threads_one_engine_identical_ordered_results() {
    let engine = InferenceEngine::new(
        frozen_model(),
        EngineConfig {
            workers: 4,
            max_batch: 16,
            ..Default::default()
        },
    );
    let enc = stream(120);
    // Serial reference through the same frozen model.
    let reference = engine.model().predict_samples(&enc).unwrap();
    assert_eq!(reference.len(), enc.len());
    assert!(reference.iter().all(|v| v.is_finite()));

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let engine = &engine;
                let enc = &enc;
                let reference = &reference;
                s.spawn(move || {
                    for _ in 0..5 {
                        let got = engine.predict_samples(enc).unwrap();
                        assert_eq!(
                            &got, reference,
                            "thread results must be identical and ordered"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}

#[test]
fn interleaved_distinct_requests_do_not_cross_talk() {
    let engine = InferenceEngine::new(
        frozen_model(),
        EngineConfig {
            workers: 3,
            max_batch: 8,
            ..Default::default()
        },
    );
    // Every thread sends a *different* stream; replies must never leak
    // across requests.
    let streams: Vec<Vec<EncodedSample>> = (0..6).map(|t| stream(40 + t * 7)).collect();
    let references: Vec<Vec<f64>> = streams
        .iter()
        .map(|e| engine.model().predict_samples(e).unwrap())
        .collect();

    std::thread::scope(|s| {
        let handles: Vec<_> = streams
            .iter()
            .zip(references.iter())
            .map(|(enc, reference)| {
                let engine = &engine;
                s.spawn(move || {
                    for _ in 0..3 {
                        let got = engine.predict_samples(enc).unwrap();
                        assert_eq!(&got, reference);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}

#[test]
fn engine_drop_joins_workers_cleanly() {
    for _ in 0..5 {
        let engine = InferenceEngine::new(
            frozen_model(),
            EngineConfig {
                workers: 2,
                max_batch: 4,
                ..Default::default()
            },
        );
        let enc = stream(10);
        let _ = engine.predict_samples(&enc).unwrap();
        drop(engine); // must not hang or leak threads
    }
}
