//! Plan-aware scheduler properties.
//!
//! The dispatcher must only ever emit **declared batch shapes** — full
//! `max_batch` chunks plus at most one remainder per leaf bucket (padded
//! up to the class only under `PadToClass` at sufficient fill) — and,
//! under every policy, serve any request mix (sizes `1..=3·max_batch`,
//! arbitrarily interleaved leaf counts) with request-ordered results that
//! are **bit-identical** to the serial reference path: no drops, no
//! duplicates, no padding leakage. A shutdown racing the padded dispatch
//! path must still never hang or return partial results.

use cdmpp_core::batch::{EncodedSample, FeatScaler};
use cdmpp_core::{Predictor, PredictorConfig, TrainConfig, TrainedModel};
use features::{N_DEVICE_FEATURES, N_ENTRY};
use learn::TransformKind;
use proptest::prelude::*;
use runtime::{
    plan_chunks, BatchWindow, ChunkPolicy, EngineConfig, EngineError, FaultPlan, InferenceEngine,
    PlannedChunk,
};

fn frozen_model() -> cdmpp_core::InferenceModel {
    let model = TrainedModel {
        predictor: Predictor::new(PredictorConfig::default()),
        transform: TransformKind::None.fit(&[1.0, 2.0, 3.0]),
        scaler: FeatScaler::identity(),
        use_pe: true,
        train_config: TrainConfig::default(),
    };
    model.freeze()
}

/// A request stream with the given leaf count per sample and per-sample
/// distinct content (so any drop/duplicate/reorder corrupts a value).
fn stream_of(leaves: &[usize]) -> Vec<EncodedSample> {
    leaves
        .iter()
        .enumerate()
        .map(|(i, &l)| EncodedSample {
            record_idx: i,
            leaf_count: l,
            x: (0..l * N_ENTRY)
                .map(|j| ((i * 977 + j) as f32 * 0.0137).sin())
                .collect(),
            dev: [0.25; N_DEVICE_FEATURES],
            y_raw: 1e-3,
        })
        .collect()
}

fn policies() -> [ChunkPolicy; 3] {
    [
        ChunkPolicy::Ragged,
        ChunkPolicy::Stable,
        ChunkPolicy::PadToClass { min_fill_pct: 80 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pure chunk-planning invariants, for any bucket length and policy.
    #[test]
    fn chunks_partition_and_emit_only_declared_shapes(
        len in 0usize..200,
        max_batch in 1usize..24,
        policy_idx in 0usize..3,
        min_fill in 50usize..=100,
    ) {
        let policy = match policy_idx {
            0 => ChunkPolicy::Ragged,
            1 => ChunkPolicy::Stable,
            _ => ChunkPolicy::PadToClass { min_fill_pct: min_fill },
        };
        let chunks = plan_chunks(len, max_batch, policy);
        // Contiguous partition of 0..len — nothing dropped or duplicated.
        let mut at = 0usize;
        for c in &chunks {
            prop_assert_eq!(c.start, at, "chunks must tile the bucket");
            prop_assert!(c.end > c.start, "no empty chunks");
            at = c.end;
        }
        prop_assert_eq!(at, len, "chunks must cover the bucket");
        // Shape discipline: every chunk but the last is exactly full; the
        // remainder is dispatched at its own size, or padded to the full
        // class only under PadToClass at sufficient fill.
        for (i, c) in chunks.iter().enumerate() {
            let chunk_len = c.end - c.start;
            if i + 1 < chunks.len() {
                prop_assert_eq!(chunk_len, max_batch, "only the last chunk may be partial");
                prop_assert_eq!(c.dispatch, max_batch);
            } else if chunk_len == max_batch {
                prop_assert_eq!(c.dispatch, max_batch);
            } else {
                match policy {
                    ChunkPolicy::PadToClass { min_fill_pct }
                        if chunk_len * 100 >= min_fill_pct * max_batch =>
                    {
                        prop_assert_eq!(c.dispatch, max_batch, "qualifying remainder pads up");
                    }
                    _ => prop_assert_eq!(c.dispatch, chunk_len, "remainder stays unpadded"),
                }
            }
            prop_assert!(c.dispatch >= chunk_len);
        }
    }

    /// End to end through the worker pool: any request mix under any
    /// policy returns exactly the serial reference predictions, in
    /// request order.
    #[test]
    fn any_request_mix_is_served_exactly_under_every_policy(
        leaves in proptest::collection::vec(1usize..=8, 1..25),
        policy_idx in 0usize..3,
    ) {
        let max_batch = 8usize; // streams span 1..=3·max_batch
        let policy = policies()[policy_idx];
        let model = frozen_model();
        let enc = stream_of(&leaves);
        let want = model.predict_samples(&enc).unwrap();
        let engine = InferenceEngine::new(
            model,
            EngineConfig {
                workers: 3,
                max_batch,
                policy,
                faults: Some(FaultPlan::none()),
                ..Default::default()
            },
        );
        let got = engine.predict_samples(&enc).unwrap();
        prop_assert_eq!(got, want, "policy {:?}", policy);
    }
}

/// Deterministic sweep of the boundary sizes (exact class multiples, one
/// off either side, single samples) per policy — the shapes where padding
/// and remainder routing switch over.
#[test]
fn boundary_sizes_round_trip_exactly() {
    let max_batch = 8usize;
    let model = frozen_model();
    for policy in policies() {
        for n in [1usize, 7, 8, 9, 15, 16, 17, 24] {
            // One homogeneous bucket plus an interleaved second leaf count.
            let mut leaves = vec![4usize; n];
            for i in (0..n).step_by(3) {
                leaves[i] = 6;
            }
            let enc = stream_of(&leaves);
            let want = model.predict_samples(&enc).unwrap();
            let engine = InferenceEngine::new(
                model.clone(),
                EngineConfig {
                    workers: 2,
                    max_batch,
                    policy,
                    faults: Some(FaultPlan::none()),
                    ..Default::default()
                },
            );
            let got = engine.predict_samples(&enc).unwrap();
            assert_eq!(got, want, "policy {policy:?}, n = {n}");
            engine.shutdown();
        }
    }
}

/// The padded dispatch path under a shutdown race: every call completes
/// with either the full, exact result set or `WorkersUnavailable` — never
/// a hang, never partial/padded output.
#[test]
fn padded_dispatch_racing_shutdown_never_hangs_or_leaks_padding() {
    let model = frozen_model();
    let enc = stream_of(&[4usize; 21]); // 2 full chunks + a padded tail
    let want = model.predict_samples(&enc).unwrap();
    let engine = InferenceEngine::new(
        model,
        EngineConfig {
            workers: 3,
            max_batch: 8,
            policy: ChunkPolicy::PadToClass { min_fill_pct: 50 },
            faults: Some(FaultPlan::none()),
            ..Default::default()
        },
    );
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = &engine;
                let enc = &enc;
                let want = &want;
                s.spawn(move || {
                    for _ in 0..20 {
                        match engine.predict_samples(enc) {
                            Ok(got) => assert_eq!(&got, want, "results must stay exact"),
                            Err(EngineError::WorkersUnavailable) => {}
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(5));
        engine.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    });
    match engine.predict_samples(&enc) {
        Err(EngineError::WorkersUnavailable) => {}
        other => panic!("expected WorkersUnavailable after shutdown, got {other:?}"),
    }
}

/// `plan_chunks` is what the engine actually dispatches: a probe stream
/// sized to produce a padded tail must come back exact (padding rows are
/// computed but never leak into results).
#[test]
fn planned_chunk_shapes_match_issue_contract() {
    // 19 samples at max_batch 8 under PadToClass(80): 2 full chunks plus
    // a 3-sample remainder that must NOT pad (fill 37%); under fill 25 it
    // must pad to the class.
    let c80 = plan_chunks(19, 8, ChunkPolicy::PadToClass { min_fill_pct: 80 });
    assert_eq!(
        c80,
        vec![
            PlannedChunk {
                start: 0,
                end: 8,
                dispatch: 8
            },
            PlannedChunk {
                start: 8,
                end: 16,
                dispatch: 8
            },
            PlannedChunk {
                start: 16,
                end: 19,
                dispatch: 3
            },
        ]
    );
    let c25 = plan_chunks(19, 8, ChunkPolicy::PadToClass { min_fill_pct: 25 });
    assert_eq!(
        c25[2].dispatch, 8,
        "37% fill must pad under a 25% threshold"
    );
    // Stable and Ragged share chunk shapes (they differ in plan routing).
    assert_eq!(
        plan_chunks(19, 8, ChunkPolicy::Stable),
        plan_chunks(19, 8, ChunkPolicy::Ragged)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The windowed dispatcher under any arrival pattern: the stream is
    /// split across concurrent callers whose partial chunks merge in the
    /// batch window, and every caller must get back exactly the serial
    /// reference predictions for its own slice — any window, any policy,
    /// bitwise.
    #[test]
    fn windowed_dispatch_matches_serial_for_any_arrival_pattern(
        leaves in proptest::collection::vec(1usize..=8, 3..30),
        cuts in proptest::collection::vec(0usize..30, 2),
        policy_idx in 0usize..3,
        window_ms in prop_oneof![Just(0u64), Just(1), Just(4)],
    ) {
        let model = frozen_model();
        let enc = stream_of(&leaves);
        // Split into up to three call slices at arbitrary points.
        let mut cut: Vec<usize> = cuts.iter().map(|&c| c % enc.len()).collect();
        cut.sort_unstable();
        let slices = [
            &enc[..cut[0]],
            &enc[cut[0]..cut[1]],
            &enc[cut[1]..],
        ];
        let want: Vec<Vec<f64>> = slices
            .iter()
            .map(|s| model.predict_samples(s).unwrap())
            .collect();
        let engine = InferenceEngine::new(
            model,
            EngineConfig {
                workers: 3,
                max_batch: 8,
                policy: policies()[policy_idx],
                faults: Some(FaultPlan::none()),
                batch_window: Some(BatchWindow::millis(window_ms)),
                promote_after: 0,
                ..Default::default()
            },
        );
        // Concurrent callers: their partial chunks land in the window
        // together and merge whenever generations + leaf counts line up.
        let got: Vec<Vec<f64>> = std::thread::scope(|s| {
            let handles: Vec<_> = slices
                .iter()
                .map(|slice| {
                    let engine = &engine;
                    s.spawn(move || engine.predict_samples(slice).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        prop_assert_eq!(got, want, "window {}ms", window_ms);
    }
}

/// Shutdown with samples still waiting in the batch window: the pending
/// buffer is flushed and completes exactly (never dropped, never hung),
/// the collector is joined so the window timer provably cannot fire
/// afterwards, and later calls get `WorkersUnavailable`.
#[test]
fn window_timer_never_fires_after_shutdown_and_pending_work_completes() {
    let model = frozen_model();
    let enc = stream_of(&[5usize; 3]); // one partial chunk, far below max_batch
    let want = model.predict_samples(&enc).unwrap();
    let engine = InferenceEngine::new(
        model,
        EngineConfig {
            workers: 2,
            max_batch: 8,
            // A window so large its due time saturates: the buffer can
            // only flush on fill or shutdown — so the call below is
            // provably parked in the window until shutdown flushes it.
            batch_window: Some(BatchWindow::millis(u64::MAX)),
            promote_after: 0,
            faults: Some(FaultPlan::none()),
            ..Default::default()
        },
    );
    std::thread::scope(|s| {
        let caller = {
            let engine = &engine;
            let enc = &enc;
            s.spawn(move || engine.predict_samples(enc))
        };
        // Wait until the call is admitted (its chunk is then in the
        // window), then give the submit a moment to finish.
        let t0 = std::time::Instant::now();
        while engine.stats().admitted < 1 {
            assert!(t0.elapsed().as_secs() < 5, "call never admitted");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(
            engine.stats().completed_chunks,
            0,
            "the partial chunk must be parked in the window, not dispatched"
        );
        engine.shutdown();
        let got = caller.join().unwrap().unwrap();
        assert_eq!(got, want, "shutdown-flushed window work must stay exact");
    });
    let timer_flushes = engine.stats().window_timer_flushes;
    assert_eq!(timer_flushes, 0, "a saturated window never timer-fires");
    std::thread::sleep(std::time::Duration::from_millis(10));
    assert_eq!(
        engine.stats().window_timer_flushes,
        timer_flushes,
        "the joined collector cannot fire after shutdown"
    );
    match engine.predict_samples(&enc) {
        Err(EngineError::WorkersUnavailable) => {}
        other => panic!("expected WorkersUnavailable after shutdown, got {other:?}"),
    }
}

/// Traffic-aware promotion: a recurring remainder size becomes a batch
/// class (visible in the model's registry and `stats().promotions`), and
/// results before, across, and after the promotion are bitwise identical
/// to serial — promotion changes which plan replays, never the bits.
#[test]
fn promotion_of_recurring_remainder_never_changes_results() {
    let model = frozen_model();
    let enc = stream_of(&[4usize; 13]); // one full chunk + remainder 5
    let want = model.predict_samples(&enc).unwrap();
    let engine = InferenceEngine::new(
        model,
        EngineConfig {
            workers: 2,
            max_batch: 8,
            policy: ChunkPolicy::Stable,
            batch_window: Some(BatchWindow::off()),
            promote_after: 3,
            faults: Some(FaultPlan::none()),
            ..Default::default()
        },
    );
    for _ in 0..3 {
        assert_eq!(engine.predict_samples(&enc).unwrap(), want);
    }
    // Promotion runs on the collector thread; poll for it to land.
    let t0 = std::time::Instant::now();
    while !engine.model().predictor.is_batch_class(5) {
        assert!(
            t0.elapsed().as_secs() < 5,
            "remainder size 5 was never promoted (histogram: {:?})",
            engine.remainder_histogram()
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(engine.stats().promotions >= 1);
    assert!(engine.promoted_classes().contains(&5));
    assert!(
        engine
            .remainder_histogram()
            .iter()
            .any(|&(size, n)| size == 5 && n >= 3),
        "histogram must have counted the recurring remainder"
    );
    // Post-promotion calls replay the specialized fold for size 5 — and
    // must still be bit-identical.
    for _ in 0..3 {
        assert_eq!(engine.predict_samples(&enc).unwrap(), want);
    }
}

/// Promotion against a full class registry: the attempt is counted as a
/// demotion (observable, never retried, never a dispatch stall) and
/// serving stays exact on the generic plan.
#[test]
fn promotion_into_full_registry_counts_a_demotion() {
    let model = frozen_model();
    let enc = stream_of(&[4usize; 13]); // remainder size 5
    let want = model.predict_samples(&enc).unwrap();
    let engine = InferenceEngine::new(
        model,
        EngineConfig {
            workers: 2,
            max_batch: 8,
            policy: ChunkPolicy::Stable,
            batch_window: Some(BatchWindow::off()),
            promote_after: 2,
            faults: Some(FaultPlan::none()),
            ..Default::default()
        },
    );
    // Fill the registry after construction ({1, 8} already occupy 2 slots).
    let predictor = &engine.model().predictor;
    while predictor.batch_classes().len() < cdmpp_core::MAX_BATCH_CLASSES {
        assert!(predictor.register_batch_class(100 + predictor.batch_classes().len()));
    }
    for _ in 0..2 {
        assert_eq!(engine.predict_samples(&enc).unwrap(), want);
    }
    let t0 = std::time::Instant::now();
    while engine.stats().class_demotions < 1 {
        assert!(
            t0.elapsed().as_secs() < 5,
            "failed promotion was never counted as a demotion"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(!engine.model().predictor.is_batch_class(5));
    assert_eq!(engine.stats().promotions, 0);
    assert_eq!(engine.predict_samples(&enc).unwrap(), want);
}

/// `min_fill_pct` hygiene: values above 100 are clamped (they could never
/// be met — a remainder is by definition below the class), and the fill
/// test uses widening arithmetic so adversarial lengths cannot overflow
/// `rem * 100`.
#[test]
fn min_fill_pct_is_clamped_and_overflow_safe() {
    // Adversarial length: rem = usize::MAX - 1 would overflow rem * 100
    // in usize; with widening arithmetic the ~100% fill pads cleanly.
    let chunks = plan_chunks(
        usize::MAX - 1,
        usize::MAX,
        ChunkPolicy::PadToClass { min_fill_pct: 50 },
    );
    assert_eq!(chunks.len(), 1);
    assert_eq!(chunks[0].dispatch, usize::MAX, "99.9% fill must pad");
    // A threshold above 100 behaves exactly like 100 (never pads a
    // partial remainder) instead of overflowing or silently diverging.
    assert_eq!(
        plan_chunks(19, 8, ChunkPolicy::PadToClass { min_fill_pct: 150 }),
        plan_chunks(19, 8, ChunkPolicy::PadToClass { min_fill_pct: 100 }),
    );
    // The engine clamps the configured policy observably.
    let engine = InferenceEngine::new(
        frozen_model(),
        EngineConfig {
            workers: 1,
            max_batch: 8,
            policy: ChunkPolicy::PadToClass { min_fill_pct: 150 },
            faults: Some(FaultPlan::none()),
            batch_window: Some(BatchWindow::off()),
            ..Default::default()
        },
    );
    assert_eq!(
        engine.config().policy,
        ChunkPolicy::PadToClass { min_fill_pct: 100 },
        "config() must reflect the clamped threshold"
    );
}

/// A model whose class registry is already full cannot take the engine's
/// `{1, max_batch}`: the engine must demote to `Ragged` observably (and
/// still serve exactly) rather than padding for plans that never fire.
#[test]
fn full_class_registry_demotes_policy_observably() {
    let model = frozen_model();
    for c in 0..cdmpp_core::MAX_BATCH_CLASSES {
        assert!(model.predictor.register_batch_class(100 + c));
    }
    let enc = stream_of(&[3usize; 13]);
    let want = model.predict_samples(&enc).unwrap();
    let engine = InferenceEngine::new(
        model,
        EngineConfig {
            workers: 2,
            max_batch: 8,
            policy: ChunkPolicy::PadToClass { min_fill_pct: 50 },
            faults: Some(FaultPlan::none()),
            ..Default::default()
        },
    );
    assert_eq!(
        engine.config().policy,
        ChunkPolicy::Ragged,
        "a full registry must demote the policy, not silently degrade"
    );
    assert_eq!(engine.predict_samples(&enc).unwrap(), want);
}
