//! Snapshot-backed serving: an engine cold-started from a snapshot file
//! must be indistinguishable — bit for bit — from the engine serving the
//! model that was just trained in this very process, and it must get there
//! without recording a single plan.

use cdmpp_core::batch::EncodedSample;
use cdmpp_core::{pretrain, PredictorConfig, Snapshot, TrainConfig};
use dataset::{Dataset, GenConfig, SplitIndices};
use features::{N_DEVICE_FEATURES, N_ENTRY};
use runtime::{EngineConfig, EngineError, InferenceEngine, SnapshotWatcher};

fn trained() -> cdmpp_core::TrainedModel {
    let ds = Dataset::generate_with_networks(
        GenConfig {
            batch: 1,
            schedules_per_task: 3,
            devices: vec![devsim::t4()],
            seed: 11,
            noise_sigma: 0.0,
        },
        vec![tir::zoo::bert_tiny(1), tir::zoo::mlp_mixer(1)],
    );
    let split = SplitIndices::for_device(&ds, "T4", &[], 1);
    let pcfg = PredictorConfig {
        d_model: 16,
        n_layers: 1,
        d_ff: 32,
        d_emb: 12,
        ..Default::default()
    };
    let (model, _) = pretrain(
        &ds,
        &split.train,
        &split.valid,
        pcfg,
        TrainConfig {
            epochs: 2,
            ..Default::default()
        },
    );
    model
}

fn sample(leaves: usize, seed: usize) -> EncodedSample {
    EncodedSample {
        record_idx: seed,
        leaf_count: leaves,
        x: (0..leaves * N_ENTRY)
            .map(|i| ((i + 3 * seed) as f32 * 0.211).sin())
            .collect(),
        dev: [0.25; N_DEVICE_FEATURES],
        y_raw: 1e-3,
    }
}

#[test]
fn snapshot_engine_is_bit_identical_to_train_then_serve_with_zero_recording() {
    let model = trained();
    let bytes = Snapshot::capture_all(&model).unwrap().to_bytes();

    let cfg = EngineConfig {
        workers: 2,
        max_batch: 8,
        ..Default::default()
    };
    let live = InferenceEngine::from_trained(&model, cfg.clone());
    let cold = InferenceEngine::from_snapshot(&Snapshot::from_bytes(&bytes).unwrap(), cfg).unwrap();

    // Heterogeneous request stream spanning every leaf count.
    let enc: Vec<EncodedSample> = (0..48).map(|i| sample(1 + i % 8, i)).collect();
    let from_training = live.predict_samples(&enc).unwrap();
    let from_file = cold.predict_samples(&enc).unwrap();
    assert_eq!(
        from_training, from_file,
        "snapshot-served predictions must be byte-identical to train-then-serve"
    );

    // The snapshot carried every plan: the cold engine recorded nothing,
    // during load or while serving.
    assert_eq!(cold.model().predictor.plan_compile_count(), 0);
}

#[test]
fn engine_setup_shares_one_weight_allocation() {
    let model = trained();
    let engine = InferenceEngine::from_trained(&model, EngineConfig::single_worker());
    // Cloning the served model handle must alias the same parameter store
    // (workers receive clones of this handle — a second allocation here
    // would mean per-worker weight copies).
    let m1 = engine.model().clone();
    let m2 = engine.model().predictor.clone();
    assert!(
        std::ptr::eq(m1.predictor.params(), engine.model().predictor.params()),
        "cloned model handle must share the engine's weight allocation"
    );
    assert!(
        std::ptr::eq(m2.params(), engine.model().predictor.params()),
        "cloned predictor handle must share the engine's weight allocation"
    );
}

#[test]
fn snapshot_file_round_trips_through_the_engine() {
    let model = trained();
    let dir = std::env::temp_dir().join(format!("cdmpp-snap-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.cdmppsnap");
    model.save_snapshot(&path).unwrap();

    let engine = InferenceEngine::from_snapshot_file(&path, EngineConfig::single_worker()).unwrap();
    let enc: Vec<EncodedSample> = (0..12).map(|i| sample(1 + i % 4, i)).collect();
    let got = engine.predict_samples(&enc).unwrap();
    let want = model.freeze().predict_samples(&enc).unwrap();
    assert_eq!(got, want);
    assert_eq!(engine.model().predictor.plan_compile_count(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// The `serve --watch` edge cases, through [`SnapshotWatcher`]:
///
/// * a rewrite that only changes the file's **length** (mtime pinned to
///   the old value, as same-granularity rewrites do) still triggers a
///   swap — mtime-only comparison missed exactly this;
/// * a **failed** swap (half-written/garbage file) does not advance the
///   watched state, so the next poll retries instead of treating the
///   final write as already seen;
/// * a transient `stat` failure (file briefly absent mid-rewrite) is a
///   no-op, and recovery with unchanged `(mtime, len)` does not
///   re-trigger a swap.
#[test]
fn snapshot_watcher_catches_same_mtime_rewrites_and_retries_failures() {
    let model = trained();
    let dir = std::env::temp_dir().join(format!("cdmpp-watch-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("watched.cdmppsnap");
    model.save_snapshot(&path).unwrap();

    let engine = InferenceEngine::from_snapshot_file(&path, EngineConfig::single_worker()).unwrap();
    let mut watcher = SnapshotWatcher::new(&path);
    assert_eq!(watcher.path(), path.as_path());

    // Unchanged file: no swap.
    assert!(watcher.poll(&engine).is_none());
    assert_eq!(engine.generation(), 0);

    // Garbage rewrite with the mtime pinned back to the original value:
    // only the length differs, and the watcher must still notice. The
    // swap fails typed — and must NOT advance the watched state.
    let mtime = std::fs::metadata(&path).unwrap().modified().unwrap();
    std::fs::write(&path, b"half-written garbage").unwrap();
    std::fs::File::options()
        .write(true)
        .open(&path)
        .unwrap()
        .set_modified(mtime)
        .unwrap();
    match watcher.poll(&engine) {
        Some(Err(EngineError::Snapshot(_))) => {}
        other => panic!("expected a failed swap on garbage, got {other:?}"),
    }
    assert_eq!(engine.generation(), 0, "failed swap leaves the old model");
    // The failed file is retried, not recorded as seen.
    match watcher.poll(&engine) {
        Some(Err(EngineError::Snapshot(_))) => {}
        other => panic!("expected the failed swap to retry, got {other:?}"),
    }

    // The writer finishes: the now-valid file converges to a swap.
    model.save_snapshot(&path).unwrap();
    match watcher.poll(&engine) {
        Some(Ok(generation)) => assert_eq!(generation, 1),
        other => panic!("expected a successful swap, got {other:?}"),
    }
    assert!(watcher.poll(&engine).is_none(), "swapped state is settled");

    // Transient stat failure: the file vanishes mid-rewrite. Polls are
    // no-ops — and after it reappears with the same (mtime, len), nothing
    // re-triggers.
    let meta = std::fs::metadata(&path).unwrap();
    let (mtime, bytes) = (meta.modified().unwrap(), std::fs::read(&path).unwrap());
    std::fs::remove_file(&path).unwrap();
    assert!(watcher.poll(&engine).is_none(), "absent file is a no-op");
    std::fs::write(&path, &bytes).unwrap();
    std::fs::File::options()
        .write(true)
        .open(&path)
        .unwrap()
        .set_modified(mtime)
        .unwrap();
    assert!(
        watcher.poll(&engine).is_none(),
        "recovery with unchanged (mtime, len) must not re-swap"
    );
    assert_eq!(engine.generation(), 1);

    std::fs::remove_dir_all(&dir).ok();
}
