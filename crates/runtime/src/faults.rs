//! Deterministic fault injection for the serving path.
//!
//! A [`FaultPlan`] injects failures at chosen points of the dispatch
//! pipeline so the self-healing paths (worker supervision, deadline
//! shedding, admission control) are exercised by tests and CI rather than
//! only by production incidents. Plans come from either
//! `EngineConfig::faults` (tests pin exact plans) or the `CDMPP_FAULTS`
//! environment variable (CI runs whole suites under background faults).
//!
//! # Grammar
//!
//! ```text
//! CDMPP_FAULTS = clause (';' clause)*
//! clause       = kind '@' site [':' key '=' value (',' key '=' value)*]
//! kind         = 'panic' | 'delay' | 'reject'
//! site         = 'replay' | 'admit'
//! key          = 'every' | 'times' | 'ms'
//! ```
//!
//! * `panic@replay` — panic inside the worker right before plan replay
//!   (exercises `catch_unwind` supervision + respawn + chunk retry).
//!   `panic` is only valid at `replay`: panicking the caller thread at
//!   admission would break the exactly-one-reply contract by design.
//! * `delay@replay` / `delay@admit` — sleep `ms` milliseconds at the
//!   site (drives deadline expiry and queue saturation).
//! * `reject@admit` — force a typed `EngineError::Overloaded` rejection
//!   regardless of actual queue depth (simulated saturation).
//! * `every=N` — fire on every Nth passage through the site (default 1).
//! * `times=N` — stop after N fires (default unlimited).
//! * `ms=N` — sleep duration for `delay` (default 1).
//!
//! Counters are per-engine (each `FaultPlan::parse`/`from_env` call gets
//! fresh state), so serial dispatch fires clauses deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where in the dispatch pipeline a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// In the caller, before admission control runs.
    Admit,
    /// In a worker, after dequeue and the first deadline check, before
    /// plan replay.
    Replay,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    Panic,
    Delay,
    Reject,
}

#[derive(Debug)]
struct Clause {
    kind: FaultKind,
    site: FaultSite,
    /// Fire on every Nth passage (1 = every passage).
    every: u64,
    /// Stop after this many fires.
    times: u64,
    /// Sleep duration for `Delay`, in milliseconds.
    ms: u64,
    passes: AtomicU64,
    fires: AtomicU64,
}

impl Clause {
    /// One passage through this clause's site: returns whether it fires.
    fn fire(&self) -> bool {
        let pass = self.passes.fetch_add(1, Ordering::Relaxed) + 1;
        if !pass.is_multiple_of(self.every) {
            return false;
        }
        // Reserve a fire slot without overshooting `times`.
        self.fires
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| {
                (f < self.times).then_some(f + 1)
            })
            .is_ok()
    }
}

/// Everything that fired at one site passage, aggregated: the caller
/// applies the delay first, then the panic/rejection.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Fired {
    pub delay_ms: u64,
    pub panic: bool,
    pub reject: bool,
}

/// A parsed, stateful fault-injection plan. Cloning shares fire counters
/// (a plan describes one engine's faults); `parse`/`from_env` start fresh.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    clauses: Arc<[Clause]>,
}

impl FaultPlan {
    /// The empty plan: injects nothing, costs one slice iteration per site.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when no clause can ever fire.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Parses the `CDMPP_FAULTS` grammar (see module docs).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut clauses = Vec::new();
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            clauses.push(parse_clause(raw)?);
        }
        Ok(FaultPlan {
            clauses: clauses.into(),
        })
    }

    /// The plan named by the `CDMPP_FAULTS` environment variable, or the
    /// empty plan when unset. Panics on a malformed spec: fault injection
    /// is an explicit opt-in debugging tool, and a typo silently disabling
    /// it would defeat the point.
    pub fn from_env() -> FaultPlan {
        match std::env::var("CDMPP_FAULTS") {
            Ok(spec) => match FaultPlan::parse(&spec) {
                Ok(plan) => plan,
                Err(e) => panic!("invalid CDMPP_FAULTS spec: {e}"),
            },
            Err(_) => FaultPlan::none(),
        }
    }

    /// One passage through `site`: advances every matching clause and
    /// aggregates what fired.
    pub(crate) fn at(&self, site: FaultSite) -> Fired {
        let mut fired = Fired::default();
        for c in self.clauses.iter().filter(|c| c.site == site) {
            if c.fire() {
                match c.kind {
                    FaultKind::Panic => fired.panic = true,
                    FaultKind::Delay => fired.delay_ms += c.ms,
                    FaultKind::Reject => fired.reject = true,
                }
            }
        }
        fired
    }
}

fn parse_clause(raw: &str) -> Result<Clause, String> {
    let (head, params) = match raw.split_once(':') {
        Some((h, p)) => (h, Some(p)),
        None => (raw, None),
    };
    let (kind_s, site_s) = head
        .split_once('@')
        .ok_or_else(|| format!("clause '{raw}': expected kind@site"))?;
    let kind = match kind_s.trim() {
        "panic" => FaultKind::Panic,
        "delay" => FaultKind::Delay,
        "reject" => FaultKind::Reject,
        other => return Err(format!("clause '{raw}': unknown kind '{other}'")),
    };
    let site = match site_s.trim() {
        "replay" => FaultSite::Replay,
        "admit" => FaultSite::Admit,
        other => return Err(format!("clause '{raw}': unknown site '{other}'")),
    };
    match (kind, site) {
        (FaultKind::Panic, FaultSite::Admit) => {
            return Err(format!(
                "clause '{raw}': panic is only valid at replay (a caller-thread \
                 panic would lose the reply by design)"
            ));
        }
        (FaultKind::Reject, FaultSite::Replay) => {
            return Err(format!("clause '{raw}': reject is only valid at admit"));
        }
        _ => {}
    }
    let (mut every, mut times, mut ms) = (1u64, u64::MAX, 1u64);
    if let Some(params) = params {
        for kv in params.split(',') {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| format!("clause '{raw}': expected key=value, got '{kv}'"))?;
            let v: u64 = v
                .trim()
                .parse()
                .map_err(|_| format!("clause '{raw}': '{kv}' is not an integer"))?;
            match k.trim() {
                "every" if v >= 1 => every = v,
                "every" => return Err(format!("clause '{raw}': every must be >= 1")),
                "times" => times = v,
                "ms" => ms = v,
                other => return Err(format!("clause '{raw}': unknown key '{other}'")),
            }
        }
    }
    Ok(Clause {
        kind,
        site,
        every,
        times,
        ms,
        passes: AtomicU64::new(0),
        fires: AtomicU64::new(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trip() {
        let p = FaultPlan::parse("panic@replay:every=3,times=2; delay@replay:ms=5; reject@admit")
            .unwrap();
        assert!(!p.is_empty());
        // Passage 1/2 fire only the unconditional delay; passage 3 adds
        // the panic; passage 6 the second (and last) panic; passage 9 none.
        for pass in 1..=9u64 {
            let fired = p.at(FaultSite::Replay);
            assert_eq!(fired.delay_ms, 5, "delay fires every pass");
            assert_eq!(fired.panic, pass == 3 || pass == 6, "pass {pass}");
            assert!(!fired.reject);
        }
        let fired = p.at(FaultSite::Admit);
        assert!(fired.reject && !fired.panic && fired.delay_ms == 0);
    }

    #[test]
    fn empty_and_invalid_specs() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ;  ").unwrap().is_empty());
        assert!(FaultPlan::parse("panic@admit").is_err());
        assert!(FaultPlan::parse("reject@replay").is_err());
        assert!(FaultPlan::parse("explode@replay").is_err());
        assert!(FaultPlan::parse("panic@replay:every=0").is_err());
        assert!(FaultPlan::parse("panic@replay:bogus=1").is_err());
        assert!(FaultPlan::parse("panic").is_err());
    }

    #[test]
    fn times_caps_fires() {
        let p = FaultPlan::parse("delay@admit:ms=7,times=2").unwrap();
        let fired: Vec<u64> = (0..5).map(|_| p.at(FaultSite::Admit).delay_ms).collect();
        assert_eq!(fired, vec![7, 7, 0, 0, 0]);
    }
}
