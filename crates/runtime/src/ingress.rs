//! Bounded admission: the capacity-limited submission queue, per-request
//! deadlines, and the exactly-one-reply guard.
//!
//! The queue replaces the seed engine's unbounded `mpsc` channel. Overload
//! now degrades to fast typed errors ([`crate::EngineError::Overloaded`])
//! instead of unbounded memory growth:
//!
//! * **Admission** happens once per call, before any chunk is built: a
//!   call is admitted only while the queue has headroom.
//!   [`AdmissionPolicy::Reject`] fails saturated calls immediately;
//!   [`AdmissionPolicy::Block`] waits up to a timeout for headroom.
//! * **Pushes** from an admitted call block until space frees up (workers
//!   drain continuously), so queue memory stays bounded by
//!   `queue_capacity` no matter how many chunks one call fans into.
//! * **Replies** are guaranteed structurally: a [`ReplyGuard`] sends a
//!   typed failure from its `Drop` impl if a job is ever dropped without
//!   answering, so no interleaving of panics, shutdown, and shedding can
//!   lose a reply.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cdmpp_core::predictor::PredictError;
use tensor::Tensor;

use crate::swap::Served;

/// A per-request completion deadline, carried through dispatch. Chunks
/// whose deadline has expired are shed *before* execution (never
/// mid-replay), on both the caller side (pre-dispatch) and the worker side
/// (post-dequeue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    /// `None` = effectively never expires: a duration too large to add to
    /// the current instant saturates here instead of panicking.
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline `d` from now. A duration too large to represent as an
    /// absolute instant (e.g. `Duration::MAX` from a huge `--deadline-ms`)
    /// saturates to a deadline that never expires.
    pub fn within(d: Duration) -> Deadline {
        Deadline {
            at: Instant::now().checked_add(d),
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(at: Instant) -> Deadline {
        Deadline { at: Some(at) }
    }

    /// A deadline that never expires (what oversized durations saturate
    /// to: the request is deadline-tracked but is never shed).
    pub fn never() -> Deadline {
        Deadline { at: None }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Time left before expiry (zero once expired, `Duration::MAX` for a
    /// deadline that never expires).
    pub fn remaining(&self) -> Duration {
        match self.at {
            Some(at) => at.saturating_duration_since(Instant::now()),
            None => Duration::MAX,
        }
    }

    /// The absolute expiry instant (`None` = never expires).
    pub fn instant(&self) -> Option<Instant> {
        self.at
    }

    /// The later of two deadlines — a never-expiring deadline dominates.
    /// The window collector merges segments under the *latest* deadline so
    /// a worker-side shed can never discard a segment that still had time.
    pub(crate) fn later(self, other: Deadline) -> Deadline {
        match (self.at, other.at) {
            (Some(a), Some(b)) => Deadline { at: Some(a.max(b)) },
            _ => Deadline { at: None },
        }
    }
}

/// What happens to a call that arrives while the submission queue is at
/// capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Fail fast with [`crate::EngineError::Overloaded`] — the default:
    /// under overload the caller learns immediately and can back off.
    Reject,
    /// Wait up to `timeout` for queue headroom, then fail with
    /// [`crate::EngineError::Overloaded`].
    Block {
        /// Longest time one call may wait at admission.
        timeout: Duration,
    },
}

/// Per-call submission options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Completion deadline; expired work is shed with
    /// [`crate::EngineError::DeadlineExceeded`] before execution.
    pub deadline: Option<Deadline>,
}

impl SubmitOptions {
    /// Options with a deadline `d` from now.
    pub fn deadline_within(d: Duration) -> SubmitOptions {
        SubmitOptions {
            deadline: Some(Deadline::within(d)),
        }
    }
}

/// Why one chunk failed. Cheap to clone so a chunk-level failure can fan
/// out to a per-sample error for every sample the chunk carried.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ChunkError {
    /// The predictor rejected the batch.
    Predict(PredictError),
    /// The chunk's deadline expired before execution; it was shed.
    DeadlineExceeded,
    /// A worker panicked while executing the chunk (caught; the worker
    /// respawned).
    Panicked,
    /// The engine shut down while the chunk was pending in the batch
    /// window (maps to `EngineError::WorkersUnavailable` for the call).
    Shutdown,
}

pub(crate) type ChunkReply = (usize, Result<Vec<f32>, ChunkError>);

/// Sends exactly one reply for one dispatched chunk. If the guard is
/// dropped without [`ReplyGuard::send`] being called — a panic unwound
/// past the worker's handler, the queue was dropped with jobs still in it
/// — the `Drop` impl reports the chunk as [`ChunkError::Panicked`], so the
/// collector can never be left waiting for a reply that will not come.
pub(crate) struct ReplyGuard {
    tag: usize,
    tx: Sender<ChunkReply>,
    done: bool,
}

impl ReplyGuard {
    pub fn new(tag: usize, tx: Sender<ChunkReply>) -> ReplyGuard {
        ReplyGuard {
            tag,
            tx,
            done: false,
        }
    }

    /// Delivers the chunk's one reply. A send failure means the caller
    /// gave up (dropped its receiver); that is its right.
    pub fn send(mut self, r: Result<Vec<f32>, ChunkError>) {
        self.done = true;
        let _ = self.tx.send((self.tag, r));
    }
}

impl Drop for ReplyGuard {
    fn drop(&mut self) {
        if !self.done {
            let _ = self.tx.send((self.tag, Err(ChunkError::Panicked)));
        }
    }
}

/// Where one executed chunk's predictions go: straight back to the one
/// call that dispatched it, or split across the calls whose remainder
/// segments the batch window merged into this chunk.
pub(crate) enum JobReply {
    /// A chunk owned by one call: the reply goes to its chunk tag.
    Direct(ReplyGuard),
    /// A window-merged chunk: predictions are split back per segment.
    Window(crate::window::WindowReply),
}

impl JobReply {
    /// Delivers the chunk's reply (fanning a merged chunk's predictions or
    /// failure out to every segment it carried).
    pub fn send(self, r: Result<Vec<f32>, ChunkError>) {
        match self {
            JobReply::Direct(g) => g.send(r),
            JobReply::Window(w) => w.send(r),
        }
    }
}

/// One dense batch dispatched to a worker.
pub(crate) struct Job {
    pub x: Tensor,
    pub dev: Tensor,
    /// The request's deadline (workers shed expired jobs before replay).
    pub deadline: Option<Deadline>,
    /// The model generation captured at admission: in-flight chunks finish
    /// on the model they were admitted under, even across a hot swap.
    pub served: Arc<Served>,
    pub reply: JobReply,
}

/// Admission failure, mapped to `EngineError` by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitError {
    Overloaded { depth: usize, capacity: usize },
    DeadlineExceeded,
    Closed,
}

/// Push failure (admitted calls only block on pushes; they are never
/// rejected for depth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushError {
    Closed,
    DeadlineExceeded,
}

struct QueueInner {
    q: VecDeque<Job>,
    closed: bool,
}

/// The capacity-bounded submission queue. `capacity == 0` means unbounded
/// (admission always succeeds — the seed engine's behavior).
pub(crate) struct JobQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    /// Segments parked in batch-window pending buffers. They are queued
    /// work the engine has accepted but not yet pushed, so *admission*
    /// counts them toward capacity — otherwise a trickle flood hides an
    /// unbounded backlog inside the window and `Overloaded` fires late.
    /// `push` deliberately does NOT count them: window flushes push merged
    /// buffers while their segments are still parked, and counting both
    /// would deadlock the flush against its own backlog.
    parked: AtomicUsize,
}

impl JobQueue {
    pub fn new(capacity: usize) -> Arc<JobQueue> {
        Arc::new(JobQueue {
            inner: Mutex::new(QueueInner {
                q: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            parked: AtomicUsize::new(0),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner> {
        // The queue's critical sections cannot panic, so poisoning only
        // ever reflects a *caller* panicking while blocked on a condvar
        // wait; the protected state is still consistent.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Current depth, in chunks.
    pub fn depth(&self) -> usize {
        self.lock().q.len()
    }

    /// Marks `n` segments as parked in a window pending buffer (they now
    /// count toward admission headroom).
    pub fn park(&self, n: usize) {
        self.parked.fetch_add(n, Ordering::Relaxed);
    }

    /// Releases `n` parked segments (a window buffer is flushing them into
    /// the queue proper, or shedding them). Wakes blocked admitters.
    pub fn unpark(&self, n: usize) {
        if n > 0 {
            self.parked.fetch_sub(n, Ordering::Relaxed);
            self.not_full.notify_all();
        }
    }

    /// Segments currently parked in window pending buffers.
    pub fn parked(&self) -> usize {
        self.parked.load(Ordering::Relaxed)
    }

    /// Per-call admission control: succeeds while the queue has headroom.
    /// `Block` waits for headroom up to its timeout (also bounded by the
    /// request deadline); `Reject` fails immediately.
    pub fn admit(
        &self,
        policy: AdmissionPolicy,
        deadline: Option<Deadline>,
    ) -> Result<(), AdmitError> {
        let mut inner = self.lock();
        if self.capacity == 0 {
            return if inner.closed {
                Err(AdmitError::Closed)
            } else {
                Ok(())
            };
        }
        // Outer `None` = `Reject` (never wait); inner `None` = a `Block`
        // timeout too large to represent as an instant, which saturates to
        // "wait indefinitely" (still bounded by the request deadline and
        // woken by close) instead of panicking on `Instant` overflow.
        let wait_until: Option<Option<Instant>> = match policy {
            AdmissionPolicy::Reject => None,
            AdmissionPolicy::Block { timeout } => Some(Instant::now().checked_add(timeout)),
        };
        loop {
            if inner.closed {
                return Err(AdmitError::Closed);
            }
            // Admission headroom counts *parked* window segments as well
            // as queued chunks: work accepted into a pending buffer is
            // backlog exactly like a queued job, and a trickle flood that
            // never fills a class must still trip `Overloaded` on time.
            if inner.q.len() + self.parked() < self.capacity {
                return Ok(());
            }
            if deadline.is_some_and(|d| d.expired()) {
                return Err(AdmitError::DeadlineExceeded);
            }
            let Some(block_until) = wait_until else {
                return Err(AdmitError::Overloaded {
                    depth: inner.q.len() + self.parked(),
                    capacity: self.capacity,
                });
            };
            let now = Instant::now();
            if block_until.is_some_and(|t| t <= now) {
                return Err(AdmitError::Overloaded {
                    depth: inner.q.len() + self.parked(),
                    capacity: self.capacity,
                });
            }
            // Wake at the earliest bound among the block timeout and the
            // request deadline; with neither representable, wait until
            // signalled (headroom or close).
            let target = [block_until, deadline.and_then(|d| d.instant())]
                .into_iter()
                .flatten()
                .min();
            inner = match target {
                Some(t) => {
                    self.not_full
                        .wait_timeout(inner, t.saturating_duration_since(now))
                        .unwrap_or_else(|p| p.into_inner())
                        .0
                }
                None => self.not_full.wait(inner).unwrap_or_else(|p| p.into_inner()),
            };
        }
    }

    /// Enqueues one chunk, blocking while the queue is at capacity
    /// (admitted calls are never depth-rejected; workers drain
    /// continuously, so the wait is bounded by real work). Wakes on close
    /// and on deadline expiry. Returns the depth after the push, for
    /// high-water tracking; on failure the job is handed back (boxed —
    /// the error path should not fatten the success path) so the caller
    /// can deliver the correct typed reply itself.
    pub fn push(&self, job: Job) -> Result<usize, (PushError, Box<Job>)> {
        let deadline = job.deadline;
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return Err((PushError::Closed, Box::new(job)));
            }
            if self.capacity == 0 || inner.q.len() < self.capacity {
                inner.q.push_back(job);
                let depth = inner.q.len();
                self.not_empty.notify_one();
                return Ok(depth);
            }
            if deadline.is_some_and(|d| d.expired()) {
                return Err((PushError::DeadlineExceeded, Box::new(job)));
            }
            // Bound each wait so deadline expiry is noticed promptly even
            // if no worker signals. A never-expiring deadline waits on the
            // same heartbeat as no deadline (nothing to notice early).
            let wait = deadline
                .and_then(|d| d.instant())
                .map(|at| at.saturating_duration_since(Instant::now()))
                .filter(|w| !w.is_zero())
                .unwrap_or(Duration::from_millis(50));
            let (guard, _) = self
                .not_full
                .wait_timeout(inner, wait)
                .unwrap_or_else(|p| p.into_inner());
            inner = guard;
        }
    }

    /// Worker dequeue: blocks until a job arrives, returns `None` once the
    /// queue is closed **and** drained (queued work completes across a
    /// shutdown; nothing is dropped on the floor).
    pub fn pop(&self) -> Option<Job> {
        let mut inner = self.lock();
        loop {
            if let Some(job) = inner.q.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue: new admissions and pushes fail, blocked callers
    /// wake, workers drain what is queued and then exit.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}
