//! Worker supervision: panic containment, in-place respawn, deadline
//! shedding at the point of execution.
//!
//! Each worker thread runs [`supervised_worker`]. A panic during plan
//! replay (injected by a [`crate::FaultPlan`] or real) is caught with
//! `catch_unwind`; it fails **only the in-flight chunk** — the chunk gets
//! a typed [`ChunkError::Panicked`] reply (which the dispatcher may retry
//! on a healthy worker) — and the worker *respawns in place*: its replay
//! state (`PlanRunner` arenas, possibly mid-write when the panic hit) is
//! discarded and rebuilt, and the thread returns to the queue. The pool
//! therefore always runs at full strength; the seed engine's
//! drain-to-`WorkersUnavailable` failure mode is gone.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use cdmpp_core::PlanRunner;

use crate::faults::{FaultPlan, FaultSite};
use crate::ingress::{ChunkError, Job, JobQueue};
use crate::stats::StatsInner;

/// Everything one worker thread needs; owned per thread.
pub(crate) struct WorkerCtx {
    pub queue: Arc<JobQueue>,
    pub stats: Arc<StatsInner>,
    pub faults: FaultPlan,
    /// `false` pins every chunk to the batch-generic plan
    /// ([`crate::ChunkPolicy::Ragged`]).
    pub use_classes: bool,
    /// Intra-op GEMM thread budget (cores / workers).
    pub intra_op: usize,
}

/// The worker entry point: a respawn loop around the serve loop. The only
/// clean exit is queue closure; any panic that escapes the per-chunk
/// handler restarts the loop with fresh replay state.
pub(crate) fn supervised_worker(ctx: WorkerCtx) {
    // Cap how many threads this worker's GEMMs may fan out to, so
    // worker-level and GEMM-level parallelism compose instead of
    // oversubscribing the machine (budget 1 == serial GEMMs).
    parallel::set_intra_op_threads(ctx.intra_op);
    loop {
        let mut runner = PlanRunner::new();
        let run = catch_unwind(AssertUnwindSafe(|| serve_loop(&ctx, &mut runner)));
        match run {
            Ok(()) => return, // queue closed and drained: clean shutdown
            Err(_) => {
                // A panic escaped the per-chunk handler (queue internals
                // cannot panic, so this is belt-and-braces): count the
                // respawn and go again. The in-flight chunk — if any —
                // already replied through its ReplyGuard's Drop.
                ctx.stats.bump_restart();
                continue;
            }
        }
    }
}

fn serve_loop(ctx: &WorkerCtx, runner: &mut PlanRunner) {
    while let Some(job) = ctx.queue.pop() {
        process_job(ctx, runner, job);
    }
}

fn process_job(ctx: &WorkerCtx, runner: &mut PlanRunner, job: Job) {
    let Job {
        x,
        dev,
        deadline,
        served,
        reply,
    } = job;

    // Shed expired work before spending compute on it.
    if deadline.is_some_and(|d| d.expired()) {
        ctx.stats
            .deadline_sheds
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        reply.send(Err(ChunkError::DeadlineExceeded));
        return;
    }

    // Fault injection: artificial latency first (then re-check the
    // deadline — the slept-through chunk may now be sheddable), panic
    // inside the supervised region below.
    let fired = ctx.faults.at(FaultSite::Replay);
    if fired.delay_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(fired.delay_ms));
        if deadline.is_some_and(|d| d.expired()) {
            ctx.stats
                .deadline_sheds
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            reply.send(Err(ChunkError::DeadlineExceeded));
            return;
        }
    }

    // The supervised region: anything that unwinds out of plan replay is
    // caught here and converted into this one chunk's typed failure.
    let use_classes = ctx.use_classes;
    let started = std::time::Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        if fired.panic {
            panic!("injected fault: panic@replay");
        }
        let model = &served.model;
        if use_classes {
            model.predictor.predict_planned(runner, &x, &dev)
        } else {
            model.predictor.predict_planned_generic(runner, &x, &dev)
        }
    }));
    ctx.stats.predict_ns.fetch_add(
        started.elapsed().as_nanos() as u64,
        std::sync::atomic::Ordering::Relaxed,
    );

    match result {
        Ok(r) => {
            if r.is_ok() {
                ctx.stats
                    .completed_chunks
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            reply.send(r.map_err(ChunkError::Predict));
        }
        Err(_) => {
            // Fail only this chunk; respawn the worker's replay state in
            // place (arenas may be mid-write). The pool stays at full
            // strength.
            ctx.stats
                .worker_panics
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            ctx.stats.bump_restart();
            *runner = PlanRunner::new();
            reply.send(Err(ChunkError::Panicked));
        }
    }
}
