//! Adaptive dispatch: time-window batching + traffic-aware class
//! promotion (the Clipper/Triton dynamic-batching shape, under this
//! crate's bit-identity contract).
//!
//! Two serving-tier gaps remain after the plan-aware scheduler: a trickle
//! of small requests never fills a batch class (each call's remainder
//! replays the slower batch-generic plan alone), and a remainder size
//! that recurs forever keeps replaying that generic plan even though the
//! specialization registry has room. This module closes both:
//!
//! * **Time-window batching** ([`BatchWindow`]): partial (below
//!   `max_batch`) chunks are *held* in per-`(generation, leaf count)`
//!   pending buffers instead of dispatching immediately. A buffer
//!   dispatches the moment it **fills** to the batch class (merged across
//!   calls — the class-specialized plan replays where N generic
//!   remainders used to), or when its **oldest sample has waited
//!   `max_delay`** — a dedicated collector thread sleeps until the
//!   earliest due time (no busy-wait) and flushes what is due. Per-call
//!   results stay request-ordered and bitwise equal to serial: every
//!   kernel in the stack computes batch rows independently, so merging
//!   changes *which* batch a sample rides in, never its bits.
//! * **Class promotion** ([`Adaptive::record_remainder`]): every
//!   non-class dispatch size is counted; a size recurring past
//!   `promote_after` is promoted to a batch class via
//!   `SharedPredictor::prewarm_classes` **on the collector thread** —
//!   registration and plan folding never block a dispatch. A full class
//!   registry counts an observable demotion (`EngineStats::class_demotions`)
//!   and stops retrying that size.
//!
//! Failure semantics compose with the rest of the ingress tier: segments
//! whose deadline expired are shed at flush (before execution), a merged
//! chunk carries the *latest* segment deadline so a worker-side shed can
//! never discard a segment that still had time, shutdown flushes every
//! pending buffer (then provably stops the timer — the collector thread is
//! joined), and a worker panic fans [`ChunkError::Panicked`] out to every
//! segment so each call's own retry budget applies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tensor::Tensor;

use crate::ingress::{ChunkError, Deadline, Job, JobQueue, JobReply, PushError, ReplyGuard};
use crate::stats::StatsInner;
use crate::swap::Served;
use crate::ChunkPolicy;

/// Promotion candidates are tracked for dispatch sizes below this cap;
/// an adversarially huge `max_batch` must not inflate the histogram.
const PROMOTION_HISTOGRAM_CAP: usize = 1024;

/// The time-window batching knob: a partially-filled class chunk
/// dispatches when it fills *or* when its oldest sample has waited
/// `max_delay` — so a trickle stream's p99 latency is bounded by roughly
/// `max_delay` plus one replay, instead of waiting forever for a full
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchWindow {
    /// Longest time one sample may wait in a pending partial chunk. Zero
    /// disables windowing (partial chunks dispatch immediately — the
    /// pre-window behavior).
    pub max_delay: Duration,
}

impl BatchWindow {
    /// Windowing disabled: partial chunks dispatch immediately.
    pub fn off() -> BatchWindow {
        BatchWindow {
            max_delay: Duration::ZERO,
        }
    }

    /// A window of `ms` milliseconds (0 = off).
    pub fn millis(ms: u64) -> BatchWindow {
        BatchWindow {
            max_delay: Duration::from_millis(ms),
        }
    }

    /// Whether windowing is disabled.
    pub fn is_off(&self) -> bool {
        self.max_delay.is_zero()
    }

    /// The window named by the `CDMPP_BATCH_WINDOW_MS` environment
    /// variable (integer milliseconds), or off when unset. Panics on a
    /// malformed value: like `CDMPP_FAULTS`, this is an explicit opt-in
    /// and a typo silently disabling it would defeat the point.
    pub fn from_env() -> BatchWindow {
        match std::env::var("CDMPP_BATCH_WINDOW_MS") {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(ms) => BatchWindow::millis(ms),
                Err(_) => {
                    panic!("invalid CDMPP_BATCH_WINDOW_MS '{v}': expected integer milliseconds")
                }
            },
            Err(_) => BatchWindow::off(),
        }
    }
}

/// One call's remainder segment inside a merged window chunk: `n` samples
/// whose predictions route back through that call's own chunk reply.
pub(crate) struct WindowSeg {
    pub reply: ReplyGuard,
    pub n: usize,
}

/// The reply side of a window-merged chunk: splits the executed batch's
/// predictions back per segment (any padded tail is discarded), or fans a
/// chunk-level failure out to every segment. Dropping it unsent lets each
/// segment's own [`ReplyGuard`] report `Panicked`, so the
/// exactly-one-reply contract holds per call even across merges.
pub(crate) struct WindowReply {
    pub segs: Vec<WindowSeg>,
}

impl WindowReply {
    pub fn send(self, r: Result<Vec<f32>, ChunkError>) {
        match r {
            Ok(preds) => {
                let mut off = 0usize;
                for seg in self.segs {
                    let end = (off + seg.n).min(preds.len());
                    seg.reply.send(Ok(preds[off.min(end)..end].to_vec()));
                    off += seg.n;
                }
            }
            Err(e) => {
                for seg in self.segs {
                    seg.reply.send(Err(e.clone()));
                }
            }
        }
    }
}

/// One pending segment while it waits in a buffer (the deadline rides
/// along so flush can shed expired segments before execution).
struct Seg {
    reply: ReplyGuard,
    n: usize,
    deadline: Option<Deadline>,
}

/// A per-`(generation, leaf count)` pending buffer: scaled sample rows
/// accumulated across calls, dispatched as one dense chunk on fill,
/// timer expiry, or shutdown.
struct PendingGroup {
    leaves: usize,
    generation: u64,
    served: Arc<Served>,
    /// Concatenated scaled feature rows, `[total, leaves, N_ENTRY]` order.
    xs: Vec<f32>,
    /// Concatenated device rows, `[total, N_DEVICE_FEATURES]` order.
    devs: Vec<f32>,
    /// Floats per sample in `xs` / `devs`.
    x_stride: usize,
    dev_stride: usize,
    segs: Vec<Seg>,
    total: usize,
    /// When the timer must flush this buffer (oldest arrival +
    /// `max_delay`); `None` when `max_delay` saturates `Instant` — such a
    /// buffer flushes only on fill or shutdown.
    due: Option<Instant>,
}

struct AdaptiveInner {
    groups: Vec<PendingGroup>,
    /// Promotion requests handed to the collector thread: `(size, the
    /// served generation whose model gets the class)`.
    promote: Vec<(usize, Arc<Served>)>,
    /// Sizes promoted at runtime — re-prewarmed onto every swapped-in
    /// model so a hot swap keeps the learned traffic shape.
    promoted: Vec<usize>,
    /// Sizes whose promotion failed (full registry / fold error): counted
    /// as demotions once, never retried.
    rejected: Vec<usize>,
    closed: bool,
}

/// The adaptive dispatch tier: pending window buffers + the promotion
/// histogram, shared between submitting calls and the collector thread.
pub(crate) struct Adaptive {
    inner: Mutex<AdaptiveInner>,
    wake: Condvar,
    queue: Arc<JobQueue>,
    stats: Arc<StatsInner>,
    window: BatchWindow,
    max_batch: usize,
    policy: ChunkPolicy,
    promote_after: u64,
    /// Remainder-size frequency histogram (index = dispatch size).
    counts: Vec<AtomicU64>,
}

impl Adaptive {
    pub fn new(
        queue: Arc<JobQueue>,
        stats: Arc<StatsInner>,
        window: BatchWindow,
        max_batch: usize,
        policy: ChunkPolicy,
        promote_after: u64,
    ) -> Arc<Adaptive> {
        Arc::new(Adaptive {
            inner: Mutex::new(AdaptiveInner {
                groups: Vec::new(),
                promote: Vec::new(),
                promoted: Vec::new(),
                rejected: Vec::new(),
                closed: false,
            }),
            wake: Condvar::new(),
            queue,
            stats,
            window,
            max_batch: max_batch.max(1),
            policy,
            promote_after,
            counts: (0..max_batch.clamp(1, PROMOTION_HISTOGRAM_CAP))
                .map(|_| AtomicU64::new(0))
                .collect(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, AdaptiveInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Whether partial chunks should be held for merging.
    pub fn windowed(&self) -> bool {
        !self.window.is_off()
    }

    /// Hands one call's partial chunk (already scaled, never padded) to
    /// the window. Returns `Err(())` when the collector is closed — the
    /// caller surfaces `WorkersUnavailable`, exactly like a closed queue.
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &self,
        leaves: usize,
        served: &Arc<Served>,
        x: Tensor,
        dev: Tensor,
        n: usize,
        reply: ReplyGuard,
        deadline: Option<Deadline>,
    ) -> Result<(), ()> {
        debug_assert!(n >= 1 && n < self.max_batch);
        let mut flushes: Vec<PendingGroup> = Vec::new();
        {
            let mut inner = self.lock();
            if inner.closed {
                return Err(());
            }
            let gi = inner
                .groups
                .iter()
                .position(|g| g.generation == served.generation && g.leaves == leaves);
            // A segment that would overflow the class flushes the pending
            // buffer first (at whatever fill it reached) — a segment is
            // never split across two chunks, so its reply stays whole.
            let gi = match gi {
                Some(i) if inner.groups[i].total + n > self.max_batch => {
                    flushes.push(inner.groups.swap_remove(i));
                    None
                }
                other => other,
            };
            let gi = match gi {
                Some(i) => i,
                None => {
                    let now = Instant::now();
                    inner.groups.push(PendingGroup {
                        leaves,
                        generation: served.generation,
                        served: Arc::clone(served),
                        xs: Vec::new(),
                        devs: Vec::new(),
                        x_stride: x.data().len() / n,
                        dev_stride: dev.data().len() / n,
                        segs: Vec::new(),
                        total: 0,
                        due: now.checked_add(self.window.max_delay),
                    });
                    inner.groups.len() - 1
                }
            };
            let g = &mut inner.groups[gi];
            g.xs.extend_from_slice(x.data());
            g.devs.extend_from_slice(dev.data());
            g.total += n;
            g.segs.push(Seg { reply, n, deadline });
            // The segment is now backlog the engine has accepted but not
            // yet queued: park it so admission still sees it. Every group
            // leaves the window through `flush`, which unparks.
            self.queue.park(1);
            if g.total == self.max_batch {
                let full = inner.groups.swap_remove(gi);
                flushes.push(full);
            }
        }
        // A new buffer may now be the earliest due time; fills flush here
        // on the submitting thread (the queue push may block on capacity,
        // which must not stall the timer).
        self.wake.notify_all();
        for g in flushes {
            self.stats
                .window_fill_flushes
                .fetch_add(1, Ordering::Relaxed);
            self.flush(g);
        }
        Ok(())
    }

    /// Dispatches one pending buffer as a dense chunk: sheds expired
    /// segments, applies `PadToClass` to the merged fill, records the
    /// final dispatch size in the promotion histogram, and pushes the job.
    fn flush(&self, mut g: PendingGroup) {
        // The group's segments leave the pending buffer here on every path
        // (dispatch, shed, closed queue), so this is the one unpark site.
        self.queue.unpark(g.segs.len());
        // Shed segments whose deadline already expired — before execution,
        // same as the direct dispatch path — and drop their rows.
        if g.segs
            .iter()
            .any(|s| s.deadline.is_some_and(|d| d.expired()))
        {
            let mut xs = Vec::with_capacity(g.xs.len());
            let mut devs = Vec::with_capacity(g.devs.len());
            let mut kept = Vec::new();
            let mut off = 0usize;
            let mut total = 0usize;
            for seg in g.segs {
                let n = seg.n;
                if seg.deadline.is_some_and(|d| d.expired()) {
                    self.stats.deadline_sheds.fetch_add(1, Ordering::Relaxed);
                    seg.reply.send(Err(ChunkError::DeadlineExceeded));
                } else {
                    xs.extend_from_slice(&g.xs[off * g.x_stride..(off + seg.n) * g.x_stride]);
                    devs.extend_from_slice(
                        &g.devs[off * g.dev_stride..(off + seg.n) * g.dev_stride],
                    );
                    total += n;
                    kept.push(seg);
                }
                off += n;
            }
            g.xs = xs;
            g.devs = devs;
            g.segs = kept;
            g.total = total;
        }
        if g.segs.is_empty() {
            return;
        }
        // PadToClass composes with the window: a merged buffer that still
        // qualifies pads up to the class by replicating the last sample's
        // rows (padded predictions are discarded by the reply split).
        let mut dispatch = g.total;
        if let ChunkPolicy::PadToClass { min_fill_pct } = self.policy {
            if (g.total as u128) * 100 >= (min_fill_pct.min(100) as u128) * (self.max_batch as u128)
            {
                dispatch = self.max_batch;
            }
        }
        for _ in g.total..dispatch {
            let (xa, xb) = (g.xs.len() - g.x_stride, g.xs.len());
            g.xs.extend_from_within(xa..xb);
            let (da, db) = (g.devs.len() - g.dev_stride, g.devs.len());
            g.devs.extend_from_within(da..db);
        }
        if dispatch != self.max_batch {
            // A partial flush replays the generic plan (unless its size
            // was already promoted) — that recurring size is exactly the
            // promotion signal.
            self.record_remainder(dispatch, &g.served);
        }
        // A worker sheds the whole chunk on its deadline, so the merged
        // deadline must be the *latest* segment deadline: a shed then
        // never discards a segment that still had time. (Segments that
        // individually expire mid-queue execute anyway and return real
        // results — late, never wrong.)
        let deadline = g
            .segs
            .iter()
            .map(|s| s.deadline)
            .reduce(|a, b| match (a, b) {
                (Some(a), Some(b)) => Some(a.later(b)),
                _ => None,
            })
            .flatten();
        let entry = g.x_stride / g.leaves.max(1);
        let x = Tensor::from_vec(g.xs, &[dispatch, g.leaves, entry]).expect("window batch rows");
        let dev = Tensor::from_vec(g.devs, &[dispatch, g.dev_stride]).expect("window device rows");
        let job = Job {
            x,
            dev,
            deadline,
            served: g.served,
            reply: JobReply::Window(WindowReply {
                segs: g
                    .segs
                    .into_iter()
                    .map(|s| WindowSeg {
                        reply: s.reply,
                        n: s.n,
                    })
                    .collect(),
            }),
        };
        match self.queue.push(job) {
            Ok(depth) => self.stats.observe_depth(depth),
            Err((PushError::DeadlineExceeded, job)) => {
                self.stats.deadline_sheds.fetch_add(1, Ordering::Relaxed);
                job.reply.send(Err(ChunkError::DeadlineExceeded));
            }
            Err((PushError::Closed, job)) => {
                // Shutdown raced the flush: every merged call resolves
                // `WorkersUnavailable`, never a hang or a partial result.
                job.reply.send(Err(ChunkError::Shutdown));
            }
        }
    }

    /// Counts one non-class dispatch of `size` samples toward promotion;
    /// crossing the threshold queues a promotion request for the collector
    /// thread (registration + plan folding never happen on this path).
    pub fn record_remainder(&self, size: usize, served: &Arc<Served>) {
        if self.promote_after == 0 || size == 0 || size >= self.counts.len() {
            return;
        }
        if served.model.predictor.is_batch_class(size) {
            return;
        }
        let c = self.counts[size].fetch_add(1, Ordering::Relaxed) + 1;
        if c == self.promote_after {
            let mut inner = self.lock();
            if inner.closed || inner.rejected.contains(&size) || inner.promoted.contains(&size) {
                return;
            }
            inner.promote.push((size, Arc::clone(served)));
            drop(inner);
            self.wake.notify_all();
        }
    }

    /// The remainder-size frequency histogram, as `(size, dispatches)`
    /// pairs for every size seen at least once.
    pub fn remainder_histogram(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(size, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((size, n))
            })
            .collect()
    }

    /// Sizes promoted to batch classes so far (re-prewarmed onto every
    /// swapped-in model).
    pub fn promoted(&self) -> Vec<usize> {
        self.lock().promoted.clone()
    }

    /// Closes the collector: pending buffers flush (their samples still
    /// complete — or resolve `WorkersUnavailable` if the queue closed
    /// first), new submissions fail, and the collector thread exits — the
    /// engine joins it, so the window timer provably never fires after
    /// shutdown.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        drop(inner);
        self.wake.notify_all();
    }

    /// Registers + prewarms one promoted class on the collector thread.
    fn promote(&self, size: usize, served: &Arc<Served>) {
        let promoted = match served.model.predictor.prewarm_classes(&[size]) {
            Ok(_) => served.model.predictor.is_batch_class(size),
            Err(_) => false,
        };
        let mut inner = self.lock();
        if promoted {
            self.stats.promotions.fetch_add(1, Ordering::Relaxed);
            inner.promoted.push(size);
        } else {
            // Full registry (or a fold failure): an observable performance
            // demotion, asked for exactly once.
            self.stats.class_demotions.fetch_add(1, Ordering::Relaxed);
            inner.rejected.push(size);
        }
    }

    /// The collector thread body: sleep until the earliest pending due
    /// time (or a wake signal), flush due buffers, run promotions, exit
    /// only on close (after flushing everything still pending).
    pub fn run(self: &Arc<Self>) {
        loop {
            let mut due: Vec<PendingGroup> = Vec::new();
            let mut promos: Vec<(usize, Arc<Served>)> = Vec::new();
            let mut timer_fires = 0u64;
            let exit;
            {
                let mut inner = self.lock();
                loop {
                    if inner.closed {
                        due.append(&mut inner.groups);
                        exit = true;
                        break;
                    }
                    promos.append(&mut inner.promote);
                    let now = Instant::now();
                    let mut next: Option<Instant> = None;
                    let mut i = 0;
                    while i < inner.groups.len() {
                        match inner.groups[i].due {
                            Some(t) if t <= now => {
                                due.push(inner.groups.swap_remove(i));
                                timer_fires += 1;
                                continue;
                            }
                            Some(t) => next = Some(next.map_or(t, |n| n.min(t))),
                            None => {}
                        }
                        i += 1;
                    }
                    if !due.is_empty() || !promos.is_empty() {
                        exit = false;
                        break;
                    }
                    inner = match next {
                        Some(t) => {
                            self.wake
                                .wait_timeout(inner, t.saturating_duration_since(now))
                                .unwrap_or_else(|p| p.into_inner())
                                .0
                        }
                        None => self.wake.wait(inner).unwrap_or_else(|p| p.into_inner()),
                    };
                }
            }
            self.stats
                .window_timer_flushes
                .fetch_add(timer_fires, Ordering::Relaxed);
            for g in due {
                self.flush(g);
            }
            for (size, served) in promos {
                self.promote(size, &served);
            }
            if exit {
                return;
            }
        }
    }
}
