//! Concurrent inference serving for the CDMPP cost model.
//!
//! The schedule-search and end-to-end-replay workloads score thousands of
//! candidate tensor programs per step. The training stack executes each
//! forward pass on a fresh autodiff tape, which pays tape-recording,
//! gradient bookkeeping, and per-thread parameter deep clones that
//! inference never needs. This crate is the serving seam on top of the
//! forward-only execution path (`nn::InferCtx` + Arc-shared weights):
//!
//! * [`InferenceEngine`] accepts *heterogeneous* prediction requests
//!   (arbitrary mixes of leaf counts), buckets them by leaf count through
//!   the one shared grouping helper (`cdmpp_core::batch::group_by_leaf`),
//!   packs each bucket into dense `[B, L, N_ENTRY]` batches, dispatches the
//!   batches across a worker-thread pool, and returns predictions in
//!   request order.
//! * Each worker replays **compiled inference plans** (`nn::plan`): the
//!   predictor's forward pass is recorded once per leaf count, fused
//!   (GEMM epilogues, element-wise chains) and arena-planned at
//!   compile time, so steady-state batches execute with zero allocation
//!   and no dynamic dispatch. Plans are compiled once and shared; each
//!   worker owns only its replay arenas.
//! * The engine implements `cdmpp_core::CostModel`, so it drops into the
//!   schedule search as a faster scorer.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use cdmpp_core::batch::{build_scaled_batch, group_by_leaf_refs, EncodedSample};
use cdmpp_core::e2e::encode_programs;
use cdmpp_core::predictor::PredictError;
use cdmpp_core::{CostModel, InferenceModel, PlanRunner, TrainedModel};
use devsim::DeviceSpec;
use tensor::Tensor;
use tir::TensorProgram;

/// Errors from the serving engine.
#[derive(Debug)]
pub enum EngineError {
    /// A request failed inside the predictor (e.g. an unsupported leaf
    /// count — see `PredictError::LeafCountOutOfRange`).
    Predict(PredictError),
    /// The worker pool is gone (a worker panicked or the engine is shutting
    /// down); the request cannot be served.
    WorkersUnavailable,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Predict(e) => write!(f, "prediction failed: {e}"),
            EngineError::WorkersUnavailable => write!(f, "inference worker pool unavailable"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PredictError> for EngineError {
    fn from(e: PredictError) -> Self {
        EngineError::Predict(e)
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. `0` resolves via the `PARALLEL_THREADS` environment
    /// variable, then one per available CPU core (see
    /// [`parallel::resolve_threads`]).
    pub workers: usize,
    /// Largest dense batch dispatched to one worker. Buckets bigger than
    /// this are split so they spread across the pool.
    pub max_batch: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            max_batch: 64,
        }
    }
}

impl EngineConfig {
    /// A single-worker configuration (useful as a baseline in benchmarks).
    pub fn single_worker() -> Self {
        EngineConfig {
            workers: 1,
            ..Default::default()
        }
    }

    fn resolved_workers(&self) -> usize {
        parallel::resolve_threads(self.workers)
    }
}

/// One dense batch dispatched to a worker.
struct Job {
    tag: usize,
    x: Tensor,
    dev: Tensor,
    reply: Sender<(usize, Result<Vec<f32>, PredictError>)>,
}

/// A concurrent, leaf-count-bucketed inference server for one frozen model.
///
/// The engine is `Sync`: any number of application threads may call
/// [`InferenceEngine::predict_samples`] (or score programs through the
/// `CostModel` impl) concurrently; their batches interleave across the
/// shared worker pool and each call gets its own results back in request
/// order.
pub struct InferenceEngine {
    model: Arc<InferenceModel>,
    // Behind mutexes so `shutdown` can race in-flight requests from a
    // shared reference: the job-sender lock is held only long enough to
    // clone the sender (or observe that the pool is closed).
    job_tx: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    cfg: EngineConfig,
}

impl InferenceEngine {
    /// Starts an engine serving `model` with the given configuration.
    pub fn new(model: InferenceModel, cfg: EngineConfig) -> Self {
        let model = Arc::new(model);
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = (0..cfg.resolved_workers())
            .map(|_| {
                let model = Arc::clone(&model);
                let job_rx = Arc::clone(&job_rx);
                std::thread::spawn(move || worker_loop(&model, &job_rx))
            })
            .collect();
        InferenceEngine {
            model,
            job_tx: Mutex::new(Some(job_tx)),
            workers: Mutex::new(workers),
            cfg,
        }
    }

    /// Convenience: freeze a trained model and serve it.
    ///
    /// `freeze` copies the weights **once** into the served `Arc`; after
    /// that every worker, every engine clone of the model handle, and
    /// every frozen handle share the same allocation (no per-worker
    /// clones anywhere on the setup path — asserted by the weight-sharing
    /// regression test). Callers done with the trained model can avoid
    /// even that one copy via `TrainedModel::into_frozen` + [`InferenceEngine::new`].
    pub fn from_trained(model: &TrainedModel, cfg: EngineConfig) -> Self {
        Self::new(model.freeze(), cfg)
    }

    /// Cold start from a decoded snapshot: restores the model (weights
    /// moved — not copied — into the served `Arc`, plan cache seeded from
    /// the file's pre-fused plans) and starts the worker pool. With a
    /// full-plan snapshot the workers begin serving with **zero** plan
    /// recording (`model().predictor.plan_compile_count()` stays 0).
    pub fn from_snapshot(
        snap: &cdmpp_core::Snapshot,
        cfg: EngineConfig,
    ) -> Result<Self, cdmpp_core::SnapshotError> {
        Ok(Self::new(InferenceModel::from_snapshot(snap)?, cfg))
    }

    /// [`InferenceEngine::from_snapshot`] straight from a file path.
    pub fn from_snapshot_file(
        path: impl AsRef<std::path::Path>,
        cfg: EngineConfig,
    ) -> Result<Self, cdmpp_core::SnapshotError> {
        Ok(Self::new(InferenceModel::from_snapshot_file(path)?, cfg))
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Number of worker threads serving requests (0 after
    /// [`InferenceEngine::shutdown`]).
    pub fn worker_count(&self) -> usize {
        self.workers.lock().map(|w| w.len()).unwrap_or(0)
    }

    /// The model being served.
    pub fn model(&self) -> &InferenceModel {
        &self.model
    }

    /// Predicts latencies (seconds) for pre-encoded, unscaled samples.
    ///
    /// Requests may mix leaf counts arbitrarily; the engine groups them,
    /// dispatches dense batches across the pool, and returns one latency
    /// per input sample **in input order**. Unsupported leaf counts are
    /// rejected up front with the predictor's descriptive error.
    pub fn predict_samples(&self, enc: &[EncodedSample]) -> Result<Vec<f64>, EngineError> {
        let refs: Vec<&EncodedSample> = enc.iter().collect();
        self.predict_sample_refs(&refs)
    }

    /// [`InferenceEngine::predict_samples`] over borrowed samples: callers
    /// that filter or subset a request stream (like the `CostModel` path)
    /// pass the survivors by reference instead of cloning each sample's
    /// feature vector.
    pub fn predict_sample_refs(&self, enc: &[&EncodedSample]) -> Result<Vec<f64>, EngineError> {
        if enc.is_empty() {
            return Ok(Vec::new());
        }
        // Validate before dispatch so the caller gets the descriptive
        // error immediately rather than a poisoned batch result.
        let max_leaves = self.model.predictor.config().max_leaves;
        for s in enc {
            if s.leaf_count == 0 || s.leaf_count > max_leaves {
                return Err(PredictError::LeafCountOutOfRange {
                    leaves: s.leaf_count,
                    max_leaves,
                }
                .into());
            }
        }
        // Bucket by leaf count, split buckets into dense batches, dispatch.
        // Standardization happens during the batch-building copy
        // (`build_scaled_batch`), so requests are never cloned wholesale.
        // Clone the sender under the lock, then dispatch without it. A
        // cloned sender also keeps the workers alive until this request's
        // replies are in, so shutdown drains in-flight work instead of
        // dropping it.
        let job_tx = self
            .job_tx
            .lock()
            .map_err(|_| EngineError::WorkersUnavailable)?
            .clone()
            .ok_or(EngineError::WorkersUnavailable)?;
        let (reply_tx, reply_rx) = channel();
        let mut chunks: Vec<Vec<usize>> = Vec::new();
        for (_, idxs) in group_by_leaf_refs(enc) {
            for chunk in idxs.chunks(self.cfg.max_batch.max(1)) {
                chunks.push(chunk.to_vec());
            }
        }
        for (tag, chunk) in chunks.iter().enumerate() {
            let refs: Vec<&EncodedSample> = chunk.iter().map(|&i| enc[i]).collect();
            let batch = build_scaled_batch(&refs, &self.model.scaler);
            let job = Job {
                tag,
                x: batch.x,
                dev: batch.dev,
                reply: reply_tx.clone(),
            };
            job_tx
                .send(job)
                .map_err(|_| EngineError::WorkersUnavailable)?;
        }
        drop(reply_tx);
        // Collect replies and scatter them back to request order.
        let mut out = vec![0.0f64; enc.len()];
        let mut received = 0usize;
        while received < chunks.len() {
            let (tag, result) = reply_rx
                .recv()
                .map_err(|_| EngineError::WorkersUnavailable)?;
            let preds = result?;
            for (&i, &p) in chunks[tag].iter().zip(preds.iter()) {
                out[i] = self.model.inverse_transform(p);
            }
            received += 1;
        }
        Ok(out)
    }

    /// Encodes and scores standalone tensor programs for a device,
    /// returning predicted latencies (seconds) in input order.
    pub fn predict_programs(
        &self,
        progs: &[&TensorProgram],
        dev: &DeviceSpec,
    ) -> Result<Vec<f64>, EngineError> {
        let enc = encode_programs(
            progs,
            dev,
            self.model.predictor.config().theta,
            self.model.use_pe,
        );
        self.predict_samples(&enc)
    }
}

impl InferenceEngine {
    /// Gracefully stops the worker pool: refuses new requests, lets
    /// requests already dispatched drain, then joins every worker.
    /// Requests arriving after (or racing) the shutdown surface
    /// [`EngineError::WorkersUnavailable`] instead of hanging.
    pub fn shutdown(&self) {
        if let Ok(mut tx) = self.job_tx.lock() {
            tx.take();
        }
        let drained = match self.workers.lock() {
            Ok(mut w) => w.drain(..).collect::<Vec<_>>(),
            Err(_) => Vec::new(),
        };
        for w in drained {
            let _ = w.join();
        }
    }
}

impl Drop for InferenceEngine {
    fn drop(&mut self) {
        // No thread outlives the engine.
        self.shutdown();
    }
}

/// The engine is a drop-in cost model for the schedule search: `score_batch`
/// fans candidate programs out across the worker pool.
impl CostModel for InferenceEngine {
    fn score(&self, prog: &TensorProgram, dev: &DeviceSpec) -> f64 {
        self.score_batch(&[prog], dev)[0]
    }

    fn score_batch(&self, progs: &[&TensorProgram], dev: &DeviceSpec) -> Vec<f64> {
        // Per-candidate granularity: an unsupported leaf count ranks only
        // that candidate as infinitely slow; the rest still get real
        // scores (matching the TrainedModel cost model's behavior).
        let enc = encode_programs(
            progs,
            dev,
            self.model.predictor.config().theta,
            self.model.use_pe,
        );
        let max_leaves = self.model.predictor.config().max_leaves;
        let valid_idx: Vec<usize> = enc
            .iter()
            .enumerate()
            .filter(|(_, s)| (1..=max_leaves).contains(&s.leaf_count))
            .map(|(i, _)| i)
            .collect();
        let mut out = vec![f64::INFINITY; progs.len()];
        if valid_idx.is_empty() {
            return out;
        }
        // Borrow the validated candidates — no wholesale sample clones.
        let valid: Vec<&EncodedSample> = valid_idx.iter().map(|&i| &enc[i]).collect();
        match self.predict_sample_refs(&valid) {
            Ok(preds) => {
                for (&i, p) in valid_idx.iter().zip(preds) {
                    out[i] = p;
                }
            }
            // Unreachable after the filter above, but keep the candidates
            // rankable if a new validation is ever added upstream.
            Err(EngineError::Predict(_)) => {}
            // A dead worker pool is infrastructure failure: silently
            // returning INFINITY would let the search "complete" with
            // garbage results. CostModel has no error channel, so be loud.
            Err(e @ EngineError::WorkersUnavailable) => {
                panic!("inference engine cannot score candidates: {e}")
            }
        }
        out
    }
}

/// End-to-end network latency prediction served by the engine.
///
/// Mirrors `cdmpp_core::e2e::end_to_end` but scores the per-task tensor
/// programs through the engine's worker pool (the `cdmpp` CLI's serving
/// path), and surfaces engine errors instead of NaN-ing predictions.
pub fn end_to_end(
    engine: &InferenceEngine,
    net: &tir::Network,
    dev: &DeviceSpec,
    seed: u64,
) -> Result<cdmpp_core::E2eResult, EngineError> {
    let (task_ids, programs) = cdmpp_core::sample_network_programs(net, seed);
    let refs: Vec<&TensorProgram> = programs.iter().collect();
    let predicted = engine.predict_programs(&refs, dev)?;
    Ok(cdmpp_core::replay_predictions(
        net, dev, &task_ids, &programs, &predicted,
    ))
}

fn worker_loop(model: &InferenceModel, jobs: &Arc<Mutex<Receiver<Job>>>) {
    // The engine already runs one worker per core; marking the thread
    // keeps the GEMM layer from fanning each batch out a second time.
    parallel::mark_worker_thread();
    // One plan runner per worker, alive for the engine's lifetime: the
    // compiled plans themselves are shared through the model (compiled at
    // most once per leaf count), and this worker's replay arenas warm up
    // once per (leaf count, batch size) — after that, executing a batch
    // allocates nothing and dispatches no dynamic ops.
    let mut runner = PlanRunner::new();
    loop {
        let job = {
            let rx = match jobs.lock() {
                Ok(rx) => rx,
                Err(_) => return, // poisoned: another worker panicked
            };
            match rx.recv() {
                Ok(job) => job,
                Err(_) => return, // channel closed: engine dropped
            }
        };
        let result = model
            .predictor
            .predict_planned(&mut runner, &job.x, &job.dev);
        // A send failure means the requester gave up; keep serving others.
        let _ = job.reply.send((job.tag, result));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdmpp_core::PredictorConfig;
    use features::{N_DEVICE_FEATURES, N_ENTRY};

    fn sample(leaves: usize, seed: usize) -> EncodedSample {
        EncodedSample {
            record_idx: seed,
            leaf_count: leaves,
            x: (0..leaves * N_ENTRY)
                .map(|i| ((i + seed) as f32 * 0.173).sin())
                .collect(),
            dev: [0.3; N_DEVICE_FEATURES],
            y_raw: 1e-3,
        }
    }

    fn untrained_model() -> InferenceModel {
        use cdmpp_core::batch::FeatScaler;
        use learn::TransformKind;
        let model = TrainedModel {
            predictor: cdmpp_core::Predictor::new(PredictorConfig::default()),
            transform: TransformKind::None.fit(&[1.0, 2.0, 3.0]),
            scaler: FeatScaler::identity(),
            use_pe: true,
            train_config: cdmpp_core::TrainConfig::default(),
        };
        model.freeze()
    }

    fn engine(workers: usize) -> InferenceEngine {
        InferenceEngine::new(
            untrained_model(),
            EngineConfig {
                workers,
                max_batch: 8,
            },
        )
    }

    #[test]
    fn heterogeneous_requests_come_back_in_order() {
        let eng = engine(3);
        // Interleave leaf counts so bucketing must reorder internally.
        let enc: Vec<EncodedSample> = (0..40).map(|i| sample(1 + (i % 5), i)).collect();
        let got = eng.predict_samples(&enc).unwrap();
        assert_eq!(got.len(), enc.len());
        // Reference: serial single-threaded path over the same samples.
        let want = eng.model().predict_samples(&enc).unwrap();
        assert_eq!(got, want, "engine must preserve request order exactly");
    }

    #[test]
    fn oversized_leaf_count_is_rejected_descriptively() {
        let eng = engine(1);
        let enc = vec![sample(3, 0), sample(99, 1)];
        let err = eng.predict_samples(&enc).unwrap_err();
        match err {
            EngineError::Predict(PredictError::LeafCountOutOfRange { leaves, max_leaves }) => {
                assert_eq!(leaves, 99);
                assert_eq!(max_leaves, 8);
            }
            other => panic!("expected leaf-count error, got {other:?}"),
        }
    }

    #[test]
    fn empty_request_is_fine() {
        let eng = engine(2);
        assert!(eng.predict_samples(&[]).unwrap().is_empty());
    }

    #[test]
    fn worker_count_resolution() {
        let eng = engine(2);
        assert_eq!(eng.worker_count(), 2);
        let auto = engine(0);
        assert!(auto.worker_count() >= 1);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<InferenceEngine>();
    }
}
