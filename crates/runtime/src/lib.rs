//! Concurrent inference serving for the CDMPP cost model.
//!
//! The schedule-search and end-to-end-replay workloads score thousands of
//! candidate tensor programs per step. This crate is the production
//! ingress on top of the forward-only execution path (compiled inference
//! plans + Arc-shared weights):
//!
//! * [`InferenceEngine`] accepts *heterogeneous* prediction requests
//!   (arbitrary mixes of leaf counts), buckets them by leaf count through
//!   the one shared grouping policy (`cdmpp_core::batch::group_by_leaf_into`,
//!   writing into pooled scratch), cuts each bucket into dense
//!   `[B, L, N_ENTRY]` chunks under a **plan-aware scheduling policy**
//!   ([`ChunkPolicy`]), dispatches the chunks across a worker-thread pool,
//!   and returns predictions in request order.
//! * **Bounded admission** ([`ingress`]): a capacity-limited submission
//!   queue with a typed [`EngineError::Overloaded`] rejection and an
//!   [`AdmissionPolicy`] knob — overload degrades to fast typed errors,
//!   never to unbounded memory growth.
//! * **Deadlines** ([`Deadline`] via [`SubmitOptions`]): expired chunks
//!   are shed *before* execution with [`EngineError::DeadlineExceeded`];
//!   results for the unexpired remainder are bit-identical to serial.
//! * **Worker supervision** ([`supervisor`]): a worker panic fails only
//!   the in-flight chunk ([`EngineError::WorkerPanicked`], transparently
//!   retried up to `EngineConfig::max_retries` times), the worker respawns
//!   in place, and the pool stays at full strength — the pool self-heals
//!   instead of draining to [`EngineError::WorkersUnavailable`].
//! * **Fault injection** ([`FaultPlan`], `CDMPP_FAULTS`): deterministic
//!   panics, artificial latency, and forced rejections at chosen dispatch
//!   points, so the robustness paths above are exercised by tests and CI.
//! * **Zero-downtime hot swap** ([`InferenceEngine::swap_snapshot`]):
//!   atomic replacement of the served model under live traffic — in-flight
//!   chunks finish on the old model, new admissions route to the new one,
//!   and a generation counter makes the cutover observable.
//! * Each worker replays **compiled inference plans** (`nn::plan`); chunks
//!   whose size is a registered **batch class** (`1` and `max_batch`)
//!   replay a batch-specialized fold, odd-size remainders fall back to the
//!   batch-generic plan.
//! * **Adaptive dispatch** ([`window`]): with a [`BatchWindow`] configured,
//!   partially-filled chunks are held briefly and merged *across calls* of
//!   the same `(generation, leaf count)` — a pending buffer dispatches the
//!   moment it fills to the batch class or when its oldest sample has
//!   waited `max_delay`, so a trickle stream's tail latency stays bounded
//!   while full-class (specialized-plan) dispatch rates go up. Recurring
//!   remainder sizes are **promoted** to batch classes at runtime
//!   (`EngineConfig::promote_after`), registered + prewarmed off the hot
//!   path. Results stay request-ordered and bitwise equal to serial.
//! * The engine implements `cdmpp_core::CostModel`, so it drops into the
//!   schedule search as a faster scorer; scoring failures shed candidates
//!   to `INFINITY` ranks and count in [`EngineStats`] instead of aborting
//!   the search.

use std::sync::atomic::Ordering;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use cdmpp_core::batch::{
    build_scaled_batch_idx, group_by_leaf_into, EncodedSample, LeafGroups, SampleLike,
};
use cdmpp_core::e2e::{encode_programs, encode_programs_into, EncodeArena};
use cdmpp_core::predictor::PredictError;
use cdmpp_core::{CostModel, InferenceModel, TrainedModel};
use devsim::DeviceSpec;
use parallel::ThreadPool;
use tir::TensorProgram;

mod faults;
mod ingress;
mod stats;
mod supervisor;
mod swap;
mod window;

pub use faults::FaultPlan;
pub use ingress::{AdmissionPolicy, Deadline, SubmitOptions};
pub use stats::EngineStats;
pub use swap::SnapshotWatcher;
pub use window::BatchWindow;

use faults::FaultSite;
use ingress::{AdmitError, ChunkError, ChunkReply, Job, JobQueue, JobReply, PushError, ReplyGuard};
use stats::StatsInner;
use swap::Served;
use window::Adaptive;

/// Errors from the serving engine.
#[derive(Debug)]
pub enum EngineError {
    /// A request failed inside the predictor (e.g. an unsupported leaf
    /// count — see `PredictError::LeafCountOutOfRange`).
    Predict(PredictError),
    /// The worker pool is gone (the engine is shutting down); the request
    /// cannot be served.
    WorkersUnavailable,
    /// Admission control rejected the call: the submission queue held
    /// `depth` chunks against a capacity of `capacity` (and, under
    /// [`AdmissionPolicy::Block`], stayed saturated past the timeout).
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The request's [`Deadline`] expired before execution; the affected
    /// work was shed without being computed.
    DeadlineExceeded,
    /// A worker panicked while executing this request's chunk (after
    /// exhausting `EngineConfig::max_retries` re-dispatches). The worker
    /// respawned; the engine keeps serving.
    WorkerPanicked,
    /// A snapshot passed to [`InferenceEngine::swap_snapshot`] failed to
    /// decode or validate; the previously served model is untouched.
    Snapshot(cdmpp_core::SnapshotError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Predict(e) => write!(f, "prediction failed: {e}"),
            EngineError::WorkersUnavailable => write!(f, "inference worker pool unavailable"),
            EngineError::Overloaded { depth, capacity } => write!(
                f,
                "engine overloaded: submission queue at {depth}/{capacity} chunks"
            ),
            EngineError::DeadlineExceeded => write!(f, "request deadline expired before execution"),
            EngineError::WorkerPanicked => {
                write!(f, "worker panicked executing this chunk (pool self-healed)")
            }
            EngineError::Snapshot(e) => write!(f, "snapshot swap failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PredictError> for EngineError {
    fn from(e: PredictError) -> Self {
        EngineError::Predict(e)
    }
}

/// How the dispatcher cuts a leaf bucket into dense chunks — the
/// plan-aware scheduling policy.
///
/// Workers replay **batch-specialized** plans for registered batch
/// classes (`1` and `max_batch`): a class-size chunk executes with zero
/// symbolic evaluation against a fixed arena that is never re-offset,
/// while any other size falls back to the batch-generic plan. The policy
/// controls how much of the stream lands on class sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkPolicy {
    /// The pre-specialization baseline: chunk by `max_batch` and replay
    /// **everything** through the batch-generic plan (no class routing).
    /// Kept for benchmarks and byte-for-byte comparisons.
    Ragged,
    /// Emit only stable chunk shapes: full `max_batch` chunks (replayed
    /// on the `max_batch` class) plus at most one remainder per leaf
    /// bucket, routed to the generic plan (or the `1` class when it is a
    /// single sample). The default.
    Stable,
    /// Like [`ChunkPolicy::Stable`], but a remainder filling at least
    /// `min_fill_pct` percent of `max_batch` is **padded** up to the
    /// class (the last sample's rows are replicated; padded predictions
    /// are discarded). With specialized-vs-generic replay measured at
    /// ≥ 1.3× per sample (see `BENCH_inference_plan.json`), a padded
    /// class chunk beats a generic remainder whenever the fill fraction
    /// exceeds `t_spec/t_generic` ≈ 0.77 — so the default threshold of 80
    /// leaves margin. Real rows' results are bit-identical with or
    /// without padding (every kernel computes rows independently).
    PadToClass {
        /// Minimum remainder fill (percent of `max_batch`) to pad.
        min_fill_pct: usize,
    },
}

/// One planned chunk of a leaf bucket: `start..end` index the bucket's
/// grouped order; `dispatch` is the dense batch size actually executed
/// (`> end - start` only for padded chunks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedChunk {
    /// First sample (inclusive), relative to the bucket.
    pub start: usize,
    /// Last sample (exclusive), relative to the bucket.
    pub end: usize,
    /// Executed batch size (== chunk length unless padded to a class).
    pub dispatch: usize,
}

/// The chunk-planning core, emitting `(start, end, dispatch)` triples —
/// the dispatcher streams these straight into its pooled scratch so the
/// warmed hot path allocates no chunk lists.
fn for_each_chunk(
    len: usize,
    max_batch: usize,
    policy: ChunkPolicy,
    mut emit: impl FnMut(usize, usize, usize),
) {
    let mb = max_batch.max(1);
    let full = len / mb;
    let rem = len % mb;
    for i in 0..full {
        emit(i * mb, (i + 1) * mb, mb);
    }
    if rem > 0 {
        // Widening arithmetic: `rem * 100` in `usize` overflows on
        // adversarial lengths (rem near `usize::MAX`); and a fill
        // threshold above 100 is clamped — it could never be met (the
        // remainder is by definition below the class), so an unclamped
        // value would silently disable padding.
        let dispatch = match policy {
            ChunkPolicy::PadToClass { min_fill_pct }
                if (rem as u128) * 100 >= (min_fill_pct.min(100) as u128) * (mb as u128) =>
            {
                mb
            }
            _ => rem,
        };
        emit(full * mb, len, dispatch);
    }
}

/// Cuts one leaf bucket of `len` samples into dense chunks under a
/// policy: `len / max_batch` full chunks plus at most one remainder,
/// which [`ChunkPolicy::PadToClass`] may widen to the full class. Pure —
/// property tests drive it directly (the engine streams the same
/// decisions into reused scratch instead of collecting them).
pub fn plan_chunks(len: usize, max_batch: usize, policy: ChunkPolicy) -> Vec<PlannedChunk> {
    let mut out = Vec::with_capacity(len / max_batch.max(1) + 1);
    for_each_chunk(len, max_batch, policy, |start, end, dispatch| {
        out.push(PlannedChunk {
            start,
            end,
            dispatch,
        })
    });
    out
}

/// Default bound on the submission queue, in chunks. Sized so a single
/// large call (hundreds of chunks) admits cleanly on an idle engine while
/// sustained multi-tenant overload still rejects fast.
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

/// Default per-chunk re-dispatch budget after a caught worker panic.
pub const DEFAULT_MAX_RETRIES: usize = 3;

/// Default promotion threshold: a non-class dispatch size recurring this
/// many times is promoted to a batch class (0 disables promotion).
pub const DEFAULT_PROMOTE_AFTER: u64 = 32;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. `0` resolves via the `PARALLEL_THREADS` environment
    /// variable, then one per available CPU core (see
    /// [`parallel::resolve_threads`]).
    pub workers: usize,
    /// Largest dense batch dispatched to one worker — also the non-trivial
    /// batch class workers keep a specialized plan (and a dedicated,
    /// never-re-offset arena) for. Buckets bigger than this are split so
    /// they spread across the pool.
    pub max_batch: usize,
    /// The chunking policy; see [`ChunkPolicy`].
    pub policy: ChunkPolicy,
    /// Submission-queue capacity in chunks (`0` = unbounded, the seed
    /// engine's behavior). Admission control fires when a call arrives
    /// while the queue is at capacity.
    pub queue_capacity: usize,
    /// What happens to calls that arrive at a saturated queue.
    pub admission: AdmissionPolicy,
    /// How many times one chunk is transparently re-dispatched after a
    /// caught worker panic before [`EngineError::WorkerPanicked`] is
    /// surfaced. Retried chunks land on a respawned (healthy) worker;
    /// results are bit-identical to an undisturbed run.
    pub max_retries: usize,
    /// Fault-injection plan. `None` reads the `CDMPP_FAULTS` environment
    /// variable (empty plan when unset); tests pin `Some(plan)` to stay
    /// deterministic regardless of the environment.
    pub faults: Option<FaultPlan>,
    /// Time-window batching knob. `None` reads the `CDMPP_BATCH_WINDOW_MS`
    /// environment variable (off when unset); tests pin
    /// `Some(BatchWindow::off())` or an explicit window to stay
    /// deterministic. With a non-zero window, a partially-filled chunk is
    /// held so later calls can merge into it — it dispatches on fill or
    /// when its oldest sample has waited `max_delay`. Merging never
    /// changes bits: every kernel computes batch rows independently.
    pub batch_window: Option<BatchWindow>,
    /// Promotion threshold: a non-class dispatch size recurring this many
    /// times becomes a batch class (registered + prewarmed off the hot
    /// path). `0` disables promotion; forced to `0` under
    /// [`ChunkPolicy::Ragged`] (no class routing to promote into).
    pub promote_after: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            max_batch: cdmpp_core::DEFAULT_MAX_BATCH,
            policy: ChunkPolicy::Stable,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            admission: AdmissionPolicy::Reject,
            max_retries: DEFAULT_MAX_RETRIES,
            faults: None,
            batch_window: None,
            promote_after: DEFAULT_PROMOTE_AFTER,
        }
    }
}

impl EngineConfig {
    /// A single-worker configuration (useful as a baseline in benchmarks).
    pub fn single_worker() -> Self {
        EngineConfig {
            workers: 1,
            ..Default::default()
        }
    }

    fn resolved_workers(&self) -> usize {
        parallel::resolve_threads(self.workers)
    }
}

/// Reusable per-request dispatch state (index buffers only — nothing
/// borrows the request), pooled on the engine so steady-state dispatch
/// materializes no `Vec<Vec<usize>>` chunk lists and no per-chunk
/// sample-ref vectors.
#[derive(Default)]
struct DispatchScratch {
    groups: LeafGroups,
    /// `(start, end, dispatch)` per chunk, indexing `groups.order`.
    chunks: Vec<(usize, usize, usize)>,
}

/// A concurrent, leaf-count-bucketed, failure-aware inference server for
/// one (hot-swappable) frozen model.
///
/// The engine is `Sync`: any number of application threads may call
/// [`InferenceEngine::predict_samples`] (or score programs through the
/// `CostModel` impl) concurrently; their batches interleave across the
/// shared worker pool and each call gets its own results back in request
/// order. Every submitted call resolves to exactly one reply — a full
/// result set, per-sample typed errors (via
/// [`InferenceEngine::predict_samples_opts`]), or a call-level typed
/// error; no interleaving of overload, panics, deadlines, swap, and
/// shutdown can hang a caller or drop a request.
pub struct InferenceEngine {
    /// The served model + generation, swapped atomically under traffic.
    served: RwLock<Arc<Served>>,
    queue: Arc<JobQueue>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Pooled dispatch scratch: concurrent `predict_samples` calls each
    /// take one set of index buffers and return it when done.
    scratch: Mutex<Vec<DispatchScratch>>,
    /// The adaptive dispatch tier (window buffers + promotion histogram);
    /// present when a window is configured or promotion is enabled.
    adaptive: Option<Arc<Adaptive>>,
    /// The collector thread driving the window timer and promotions;
    /// joined (after `Adaptive::close`) before the queue closes, so the
    /// timer provably never fires after shutdown.
    adaptive_thread: Mutex<Option<JoinHandle<()>>>,
    stats: Arc<StatsInner>,
    faults: FaultPlan,
    cfg: EngineConfig,
}

impl InferenceEngine {
    /// Starts an engine serving `model` with the given configuration.
    ///
    /// Unless the policy is [`ChunkPolicy::Ragged`], the engine registers
    /// its stable batch classes (`1` and `max_batch`) on the model so
    /// every class-size chunk replays a shape-final specialized plan
    /// (folded lazily per leaf count, or pre-folded by a snapshot load).
    pub fn new(model: InferenceModel, cfg: EngineConfig) -> Self {
        let stats = Arc::new(StatsInner::default());
        let mut cfg = cfg;
        // A fill threshold above 100 can never be met; clamp it so
        // `config()` reflects what actually runs.
        if let ChunkPolicy::PadToClass { min_fill_pct } = &mut cfg.policy {
            *min_fill_pct = (*min_fill_pct).min(100);
        }
        // Resolve the window once (tri-state like `faults`: `None` reads
        // the environment) and pin the resolution into the config.
        let window = cfg.batch_window.unwrap_or_else(BatchWindow::from_env);
        cfg.batch_window = Some(window);
        if cfg.policy != ChunkPolicy::Ragged {
            let ok = model.predictor.register_batch_class(1)
                && model.predictor.register_batch_class(cfg.max_batch.max(1));
            if !ok {
                // The model's class registry is full (e.g. a snapshot that
                // shipped the maximum number of classes) and cannot take
                // this engine's {1, max_batch}. Class routing would never
                // fire — and PadToClass would pad for nothing — so demote
                // to the generic-plan policy, observably: `config().policy`
                // reflects what actually runs and `stats().class_demotions`
                // counts the event.
                stats.class_demotions.fetch_add(1, Ordering::Relaxed);
                cfg.policy = ChunkPolicy::Ragged;
            }
        }
        if cfg.policy == ChunkPolicy::Ragged {
            // No class routing exists to promote into.
            cfg.promote_after = 0;
        }
        let faults = cfg.faults.clone().unwrap_or_else(FaultPlan::from_env);
        let queue = JobQueue::new(cfg.queue_capacity);
        let use_classes = cfg.policy != ChunkPolicy::Ragged;
        let n_workers = cfg.resolved_workers();
        // Split the machine between engine workers and intra-op GEMM
        // threads so the two layers compose instead of oversubscribing:
        // each worker gets cores/workers threads for its own GEMMs. With
        // one worker per core the budget is 1 and GEMMs stay serial.
        let intra_op = (parallel::resolve_threads(0) / n_workers.max(1)).max(1);
        let workers = (0..n_workers)
            .map(|_| {
                let ctx = supervisor::WorkerCtx {
                    queue: Arc::clone(&queue),
                    stats: Arc::clone(&stats),
                    faults: faults.clone(),
                    use_classes,
                    intra_op,
                };
                std::thread::spawn(move || supervisor::supervised_worker(ctx))
            })
            .collect();
        // The adaptive tier exists when there is anything for it to do:
        // a non-zero window (pending buffers + timer) or promotion (the
        // collector thread also runs registrations off the hot path).
        let (adaptive, adaptive_thread) = if !window.is_off() || cfg.promote_after > 0 {
            let ad = Adaptive::new(
                Arc::clone(&queue),
                Arc::clone(&stats),
                window,
                cfg.max_batch,
                cfg.policy,
                cfg.promote_after,
            );
            let runner = Arc::clone(&ad);
            let t = std::thread::spawn(move || runner.run());
            (Some(ad), Some(t))
        } else {
            (None, None)
        };
        InferenceEngine {
            served: RwLock::new(Arc::new(Served {
                model: Arc::new(model),
                generation: 0,
            })),
            queue,
            workers: Mutex::new(workers),
            scratch: Mutex::new(Vec::new()),
            adaptive,
            adaptive_thread: Mutex::new(adaptive_thread),
            stats,
            faults,
            cfg,
        }
    }

    /// Convenience: freeze a trained model and serve it.
    ///
    /// `freeze` copies the weights **once** into the served `Arc`; after
    /// that every worker, every engine clone of the model handle, and
    /// every frozen handle share the same allocation (no per-worker
    /// clones anywhere on the setup path — asserted by the weight-sharing
    /// regression test). Callers done with the trained model can avoid
    /// even that one copy via `TrainedModel::into_frozen` + [`InferenceEngine::new`].
    pub fn from_trained(model: &TrainedModel, cfg: EngineConfig) -> Self {
        Self::new(model.freeze(), cfg)
    }

    /// Cold start from a decoded snapshot: restores the model (weights
    /// moved — not copied — into the served `Arc`, plan cache seeded from
    /// the file's pre-fused plans) and starts the worker pool. With a
    /// full-plan snapshot the workers begin serving with **zero** plan
    /// recording (`model().predictor.plan_compile_count()` stays 0).
    pub fn from_snapshot(
        snap: &cdmpp_core::Snapshot,
        cfg: EngineConfig,
    ) -> Result<Self, cdmpp_core::SnapshotError> {
        Ok(Self::new(InferenceModel::from_snapshot(snap)?, cfg))
    }

    /// [`InferenceEngine::from_snapshot`] straight from a file path.
    pub fn from_snapshot_file(
        path: impl AsRef<std::path::Path>,
        cfg: EngineConfig,
    ) -> Result<Self, cdmpp_core::SnapshotError> {
        Ok(Self::new(InferenceModel::from_snapshot_file(path)?, cfg))
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Number of worker threads serving requests (0 after
    /// [`InferenceEngine::shutdown`]). Worker panics do **not** shrink
    /// this: panicked workers respawn in place (see
    /// `EngineStats::worker_restarts`).
    pub fn worker_count(&self) -> usize {
        self.workers.lock().map(|w| w.len()).unwrap_or(0)
    }

    /// The model currently being served (the newest generation; requests
    /// in flight across a swap finish on the generation they captured).
    pub fn model(&self) -> Arc<InferenceModel> {
        Arc::clone(&self.served().model)
    }

    /// A snapshot of the engine's traffic/failure counters.
    pub fn stats(&self) -> EngineStats {
        self.stats.snapshot(self.queue.depth(), self.queue.parked())
    }

    /// The remainder-size frequency histogram driving class promotion, as
    /// `(dispatch size, occurrences)` pairs for every non-class size seen
    /// at least once. Empty when promotion is disabled.
    pub fn remainder_histogram(&self) -> Vec<(usize, u64)> {
        self.adaptive
            .as_ref()
            .map(|a| a.remainder_histogram())
            .unwrap_or_default()
    }

    /// Sizes promoted to batch classes at runtime by the traffic-aware
    /// promotion path (re-prewarmed onto every swapped-in model so a hot
    /// swap keeps the learned traffic shape).
    pub fn promoted_classes(&self) -> Vec<usize> {
        self.adaptive
            .as_ref()
            .map(|a| a.promoted())
            .unwrap_or_default()
    }

    pub(crate) fn served(&self) -> Arc<Served> {
        Arc::clone(&self.served.read().unwrap_or_else(|p| p.into_inner()))
    }

    pub(crate) fn served_slot(&self) -> &RwLock<Arc<Served>> {
        &self.served
    }

    pub(crate) fn stats_inner(&self) -> &StatsInner {
        &self.stats
    }

    /// Predicts latencies (seconds) for pre-encoded, unscaled samples.
    ///
    /// Requests may mix leaf counts arbitrarily; the engine groups them,
    /// dispatches dense batches across the pool, and returns one latency
    /// per input sample **in input order**. Unsupported leaf counts are
    /// rejected up front with the predictor's descriptive error; any
    /// chunk-level failure (deadline shed, post-retry worker panic) fails
    /// the whole call with its typed error — use
    /// [`InferenceEngine::predict_samples_opts`] for per-sample outcomes.
    pub fn predict_samples(&self, enc: &[EncodedSample]) -> Result<Vec<f64>, EngineError> {
        let refs: Vec<&EncodedSample> = enc.iter().collect();
        self.predict_sample_refs(&refs)
    }

    /// [`InferenceEngine::predict_samples`] over any [`SampleLike`] view:
    /// callers that filter or subset a request stream (like the `CostModel`
    /// path) pass the survivors by reference, and arena-encoded callers
    /// (like [`EngineCostModel`]) pass borrowed [`cdmpp_core::SampleRef`]s
    /// straight out of the encode slab — no sample clones either way.
    pub fn predict_sample_refs<S: SampleLike>(&self, enc: &[S]) -> Result<Vec<f64>, EngineError> {
        let per = self.predict_sample_refs_opts(enc, &SubmitOptions::default())?;
        let mut out = Vec::with_capacity(per.len());
        for r in per {
            out.push(r?);
        }
        Ok(out)
    }

    /// Per-sample prediction with submission options (deadline). The outer
    /// `Result` covers call-level outcomes — validation, admission
    /// rejection ([`EngineError::Overloaded`]), pool shutdown; the inner
    /// per-sample `Result`s carry chunk-level outcomes — a latency, or a
    /// typed shed ([`EngineError::DeadlineExceeded`],
    /// [`EngineError::WorkerPanicked`]). Samples from unaffected chunks
    /// are bit-identical to a serial no-fault run.
    pub fn predict_samples_opts(
        &self,
        enc: &[EncodedSample],
        opts: &SubmitOptions,
    ) -> Result<Vec<Result<f64, EngineError>>, EngineError> {
        let refs: Vec<&EncodedSample> = enc.iter().collect();
        self.predict_sample_refs_opts(&refs, opts)
    }

    /// [`InferenceEngine::predict_samples_opts`] over any [`SampleLike`]
    /// view (borrowed samples, arena [`cdmpp_core::SampleRef`]s, ...).
    pub fn predict_sample_refs_opts<S: SampleLike>(
        &self,
        enc: &[S],
        opts: &SubmitOptions,
    ) -> Result<Vec<Result<f64, EngineError>>, EngineError> {
        if enc.is_empty() {
            return Ok(Vec::new());
        }
        // Capture ONE model generation for the whole call: validation,
        // scaling, replay, and inverse transform all use it, so a hot swap
        // mid-call can never serve a torn mix of models.
        let served = self.served();
        // Validate before dispatch so the caller gets the descriptive
        // error immediately rather than a poisoned batch result.
        let max_leaves = served.model.predictor.config().max_leaves;
        for s in enc {
            if s.leaf_count() == 0 || s.leaf_count() > max_leaves {
                return Err(PredictError::LeafCountOutOfRange {
                    leaves: s.leaf_count(),
                    max_leaves,
                }
                .into());
            }
        }
        // A deadline that is already gone sheds the whole call before it
        // touches the queue.
        if opts.deadline.is_some_and(|d| d.expired()) {
            self.stats.deadline_sheds.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::DeadlineExceeded);
        }
        // Fault injection at the admission site: artificial caller-side
        // latency and forced rejections (simulated saturation).
        let fired = self.faults.at(FaultSite::Admit);
        if fired.delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(fired.delay_ms));
        }
        if fired.reject {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::Overloaded {
                depth: self.queue.depth(),
                capacity: self.cfg.queue_capacity,
            });
        }
        // Admission control: one check per call, before any chunk exists.
        match self.queue.admit(self.cfg.admission, opts.deadline) {
            Ok(()) => {
                self.stats.admitted.fetch_add(1, Ordering::Relaxed);
            }
            Err(AdmitError::Overloaded { depth, capacity }) => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::Overloaded { depth, capacity });
            }
            Err(AdmitError::DeadlineExceeded) => {
                self.stats.deadline_sheds.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::DeadlineExceeded);
            }
            Err(AdmitError::Closed) => return Err(EngineError::WorkersUnavailable),
        }
        let mut scratch = {
            let mut pool = self
                .scratch
                .lock()
                .map_err(|_| EngineError::WorkersUnavailable)?;
            pool.pop().unwrap_or_default()
        };
        let result = self.dispatch_and_collect(enc, &served, opts, &mut scratch);
        // The scratch goes back to the pool on *every* outcome — an error
        // (worker failure, shutdown race) must not throw the warmed
        // buffers away and quietly re-establish per-request allocation.
        if let Ok(mut pool) = self.scratch.lock() {
            pool.push(scratch);
        }
        result
    }

    /// The fallible middle of [`InferenceEngine::predict_sample_refs_opts`]:
    /// plan chunks into `scratch`, dispatch, collect (retrying panicked
    /// chunks), scatter per-sample outcomes.
    fn dispatch_and_collect<S: SampleLike>(
        &self,
        enc: &[S],
        served: &Arc<Served>,
        opts: &SubmitOptions,
        scratch: &mut DispatchScratch,
    ) -> Result<Vec<Result<f64, EngineError>>, EngineError> {
        let (reply_tx, reply_rx) = channel::<ChunkReply>();
        group_by_leaf_into(enc, &mut scratch.groups);
        scratch.chunks.clear();
        {
            let chunks = &mut scratch.chunks;
            for &(_, gs, ge) in &scratch.groups.spans {
                for_each_chunk(
                    ge - gs,
                    self.cfg.max_batch,
                    self.cfg.policy,
                    |start, end, dispatch| chunks.push((gs + start, gs + end, dispatch)),
                );
            }
        }
        let n_chunks = scratch.chunks.len();
        // Dispatch every chunk once. Expired chunks reply immediately
        // through their guard (shed before any batch is built); push
        // failures hand the job back so the right typed reply is sent.
        for tag in 0..n_chunks {
            self.send_chunk(enc, served, opts, scratch, tag, &reply_tx)
                .map_err(|_closed| EngineError::WorkersUnavailable)?;
        }
        // Collect: every dispatched chunk resolves through the reply
        // channel exactly once (the ReplyGuard guarantees a reply even
        // across panics and queue teardown). Panicked chunks re-dispatch
        // onto a respawned worker up to `max_retries` times.
        let mut results: Vec<Option<Result<Vec<f32>, ChunkError>>> = Vec::new();
        results.resize_with(n_chunks, || None);
        let mut attempts = vec![0usize; n_chunks];
        let mut resolved = 0usize;
        while resolved < n_chunks {
            let (tag, res) = reply_rx
                .recv()
                .map_err(|_| EngineError::WorkersUnavailable)?;
            if results[tag].is_some() {
                continue; // stale duplicate (defensive; guards prevent it)
            }
            if matches!(res, Err(ChunkError::Shutdown)) {
                // The engine shut down while this chunk waited in the
                // batch window — the same call-level outcome as a closed
                // queue at dispatch time.
                return Err(EngineError::WorkersUnavailable);
            }
            if matches!(res, Err(ChunkError::Panicked))
                && attempts[tag] < self.cfg.max_retries
                && !opts.deadline.is_some_and(|d| d.expired())
            {
                attempts[tag] += 1;
                self.stats.chunk_retries.fetch_add(1, Ordering::Relaxed);
                self.send_chunk(enc, served, opts, scratch, tag, &reply_tx)
                    .map_err(|_closed| EngineError::WorkersUnavailable)?;
                continue;
            }
            results[tag] = Some(res);
            resolved += 1;
        }
        // Scatter chunk outcomes back to request order (the zip truncates
        // any padded tail predictions).
        let mut out: Vec<Result<f64, EngineError>> = Vec::new();
        out.resize_with(enc.len(), || Ok(0.0));
        for (tag, res) in results.into_iter().enumerate() {
            let (s, e, _) = scratch.chunks[tag];
            let idxs = &scratch.groups.order[s..e];
            match res.expect("all chunks resolved") {
                Ok(preds) => {
                    for (&i, &p) in idxs.iter().zip(preds.iter()) {
                        out[i] = Ok(served.model.inverse_transform(p));
                    }
                }
                Err(err) => {
                    for &i in idxs {
                        out[i] = Err(match &err {
                            ChunkError::Predict(pe) => EngineError::Predict(pe.clone()),
                            ChunkError::DeadlineExceeded => EngineError::DeadlineExceeded,
                            ChunkError::Panicked => EngineError::WorkerPanicked,
                            ChunkError::Shutdown => EngineError::WorkersUnavailable,
                        });
                    }
                }
            }
        }
        Ok(out)
    }

    /// Builds and enqueues one chunk (or sheds it on an expired deadline).
    /// Every path delivers exactly one reply for `tag` through the
    /// channel. Returns `Err(())` only when the pool is closing.
    fn send_chunk<S: SampleLike>(
        &self,
        enc: &[S],
        served: &Arc<Served>,
        opts: &SubmitOptions,
        scratch: &DispatchScratch,
        tag: usize,
        reply_tx: &std::sync::mpsc::Sender<ChunkReply>,
    ) -> Result<(), ()> {
        let reply = ReplyGuard::new(tag, reply_tx.clone());
        if opts.deadline.is_some_and(|d| d.expired()) {
            self.stats.deadline_sheds.fetch_add(1, Ordering::Relaxed);
            reply.send(Err(ChunkError::DeadlineExceeded));
            return Ok(());
        }
        let (s, e, dispatch) = scratch.chunks[tag];
        let idxs = &scratch.groups.order[s..e];
        // Windowed routing: a below-class chunk goes to the adaptive
        // collector *unpadded* (pad-to-class is re-decided at flush time,
        // against the merged fill) so later calls can merge into it.
        if let Some(ad) = &self.adaptive {
            if ad.windowed() && e - s < self.cfg.max_batch {
                let leaves = enc[idxs[0]].leaf_count();
                let batch = build_scaled_batch_idx(enc, idxs, 0, &served.model.scaler);
                return ad.submit(
                    leaves,
                    served,
                    batch.x,
                    batch.dev,
                    e - s,
                    reply,
                    opts.deadline,
                );
            }
        }
        let batch = build_scaled_batch_idx(enc, idxs, dispatch, &served.model.scaler);
        // A non-class direct dispatch is the promotion signal: a size that
        // keeps replaying the batch-generic plan.
        if dispatch != self.cfg.max_batch {
            if let Some(ad) = &self.adaptive {
                ad.record_remainder(dispatch, served);
            }
        }
        let job = Job {
            x: batch.x,
            dev: batch.dev,
            deadline: opts.deadline,
            served: Arc::clone(served),
            reply: JobReply::Direct(reply),
        };
        match self.queue.push(job) {
            Ok(depth) => {
                self.stats.observe_depth(depth);
                Ok(())
            }
            Err((PushError::DeadlineExceeded, job)) => {
                self.stats.deadline_sheds.fetch_add(1, Ordering::Relaxed);
                job.reply.send(Err(ChunkError::DeadlineExceeded));
                Ok(())
            }
            Err((PushError::Closed, _job)) => Err(()),
        }
    }

    /// Encodes and scores standalone tensor programs for a device,
    /// returning predicted latencies (seconds) in input order.
    pub fn predict_programs(
        &self,
        progs: &[&TensorProgram],
        dev: &DeviceSpec,
    ) -> Result<Vec<f64>, EngineError> {
        let served = self.served();
        let enc = encode_programs(
            progs,
            dev,
            served.model.predictor.config().theta,
            served.model.use_pe,
        );
        self.predict_samples(&enc)
    }
}

impl InferenceEngine {
    /// Gracefully stops the worker pool: refuses new requests, lets
    /// requests already queued drain, then joins every worker.
    /// Requests arriving after (or racing) the shutdown surface
    /// [`EngineError::WorkersUnavailable`] instead of hanging.
    pub fn shutdown(&self) {
        // Ordering matters: close the adaptive collector and JOIN it
        // first — its final loop flushes every pending window buffer into
        // the still-open queue (those samples complete normally), and
        // once the join returns the window timer provably cannot fire
        // again. Only then close the queue and drain the workers.
        if let Some(ad) = &self.adaptive {
            ad.close();
        }
        let collector = self.adaptive_thread.lock().ok().and_then(|mut t| t.take());
        if let Some(t) = collector {
            let _ = t.join();
        }
        self.queue.close();
        let drained = match self.workers.lock() {
            Ok(mut w) => w.drain(..).collect::<Vec<_>>(),
            Err(_) => Vec::new(),
        };
        for w in drained {
            let _ = w.join();
        }
    }
}

impl Drop for InferenceEngine {
    fn drop(&mut self) {
        // No thread outlives the engine.
        self.shutdown();
    }
}

/// The engine is a drop-in cost model for the schedule search: `score_batch`
/// fans candidate programs out across the worker pool.
impl CostModel for InferenceEngine {
    fn score(&self, prog: &TensorProgram, dev: &DeviceSpec) -> f64 {
        self.score_batch(&[prog], dev)[0]
    }

    fn score_batch(&self, progs: &[&TensorProgram], dev: &DeviceSpec) -> Vec<f64> {
        // Per-candidate granularity: an unsupported leaf count ranks only
        // that candidate as infinitely slow; the rest still get real
        // scores (matching the TrainedModel cost model's behavior).
        let served = self.served();
        let enc = encode_programs(
            progs,
            dev,
            served.model.predictor.config().theta,
            served.model.use_pe,
        );
        let max_leaves = served.model.predictor.config().max_leaves;
        let valid_idx: Vec<usize> = enc
            .iter()
            .enumerate()
            .filter(|(_, s)| (1..=max_leaves).contains(&s.leaf_count))
            .map(|(i, _)| i)
            .collect();
        let mut out = vec![f64::INFINITY; progs.len()];
        if valid_idx.is_empty() {
            return out;
        }
        // Borrow the validated candidates — no wholesale sample clones.
        let valid: Vec<&EncodedSample> = valid_idx.iter().map(|&i| &enc[i]).collect();
        // `CostModel` has no error channel; the established convention is
        // that an unscorable candidate ranks as INFINITY (invalid leaf
        // counts already do). Engine failures — overload, shutdown, a
        // post-retry worker panic, a deadline shed — therefore shed the
        // affected candidates to INFINITY and count in
        // `stats().score_sheds`, instead of panicking the search process.
        match self.predict_sample_refs_opts(&valid, &SubmitOptions::default()) {
            Ok(per) => {
                for (&i, r) in valid_idx.iter().zip(per) {
                    match r {
                        Ok(p) => out[i] = p,
                        Err(_) => {
                            self.stats.score_sheds.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            Err(_) => {
                self.stats
                    .score_sheds
                    .fetch_add(valid_idx.len() as u64, Ordering::Relaxed);
            }
        }
        out
    }
}

/// Cumulative `EngineCostModel` timing breakdown, in nanoseconds, plus the
/// number of candidates that received a finite score. `predict_ns` (worker
/// busy time inside `dispatch_ns`) lives in [`EngineStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScoreTimings {
    /// Time spent encoding candidate programs into the pooled arena.
    pub encode_ns: u64,
    /// Wall time of engine dispatch (submit + worker replay + collect).
    pub dispatch_ns: u64,
    /// Candidates that came back with a finite score.
    pub scored: u64,
}

/// The search-scale scoring front end: encodes candidate programs into a
/// pooled [`EncodeArena`] (zero steady-state allocation) on a dedicated
/// encode pool, then dispatches borrowed [`cdmpp_core::SampleRef`] views
/// through a live [`InferenceEngine`] — leaf bucketing, batch classes, and
/// window batching all exercised, no per-candidate sample clones.
///
/// Versus `impl CostModel for InferenceEngine` (which re-allocates a fresh
/// `Vec<EncodedSample>` per round via `encode_programs`), this is the
/// zero-alloc hot path the generational search runs on: the arena's slabs
/// are reused round over round. One `EngineCostModel` serializes its own
/// `score_batch` calls (the arena is a single scratch buffer); the engine
/// underneath still fans each round's chunks across the worker pool.
pub struct EngineCostModel {
    engine: Arc<InferenceEngine>,
    pool: ThreadPool,
    arena: Mutex<EncodeArena>,
    encode_ns: std::sync::atomic::AtomicU64,
    dispatch_ns: std::sync::atomic::AtomicU64,
    scored: std::sync::atomic::AtomicU64,
}

impl EngineCostModel {
    /// Wraps `engine` with an encode pool of `encode_threads` threads
    /// (0 = `PARALLEL_THREADS` / available parallelism, like the GEMM
    /// layer). Encoding is bit-identical for any thread count.
    pub fn new(engine: Arc<InferenceEngine>, encode_threads: usize) -> EngineCostModel {
        EngineCostModel {
            engine,
            pool: ThreadPool::new(parallel::resolve_threads(encode_threads)),
            arena: Mutex::new(EncodeArena::new()),
            encode_ns: std::sync::atomic::AtomicU64::new(0),
            dispatch_ns: std::sync::atomic::AtomicU64::new(0),
            scored: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The engine this cost model scores through.
    pub fn engine(&self) -> &InferenceEngine {
        &self.engine
    }

    /// Cumulative encode/dispatch timing breakdown since construction.
    pub fn timings(&self) -> ScoreTimings {
        ScoreTimings {
            encode_ns: self.encode_ns.load(Ordering::Relaxed),
            dispatch_ns: self.dispatch_ns.load(Ordering::Relaxed),
            scored: self.scored.load(Ordering::Relaxed),
        }
    }

    /// Buffer-growth events inside the encode arena (0 growth across a
    /// round = the round allocated nothing).
    pub fn arena_growth(&self) -> usize {
        self.arena
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .growth_count()
    }
}

impl CostModel for EngineCostModel {
    fn score(&self, prog: &TensorProgram, dev: &DeviceSpec) -> f64 {
        self.score_batch(&[prog], dev)[0]
    }

    fn score_batch(&self, progs: &[&TensorProgram], dev: &DeviceSpec) -> Vec<f64> {
        let served = self.engine.served();
        let max_leaves = served.model.predictor.config().max_leaves;
        let mut out = vec![f64::INFINITY; progs.len()];
        if progs.is_empty() {
            return out;
        }
        // The arena stays locked across the dispatch: the SampleRefs
        // borrow its slab. Scoring through one EngineCostModel is
        // serialized; parallelism lives in the encode pool and the
        // engine's workers.
        let mut arena = self.arena.lock().unwrap_or_else(|p| p.into_inner());
        let t0 = std::time::Instant::now();
        encode_programs_into(
            progs,
            dev,
            served.model.predictor.config().theta,
            served.model.use_pe,
            &self.pool,
            &mut arena,
        );
        self.encode_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        // Same per-candidate convention as the engine's own CostModel
        // impl: invalid leaf counts (and engine-shed candidates) rank
        // INFINITY, everything else gets a real score.
        let valid_idx: Vec<usize> = (0..arena.len())
            .filter(|&i| (1..=max_leaves).contains(&arena.leaf_count(i)))
            .collect();
        if valid_idx.is_empty() {
            return out;
        }
        let valid: Vec<cdmpp_core::SampleRef<'_>> =
            valid_idx.iter().map(|&i| arena.sample(i)).collect();
        let t1 = std::time::Instant::now();
        let res = self
            .engine
            .predict_sample_refs_opts(&valid, &SubmitOptions::default());
        self.dispatch_ns
            .fetch_add(t1.elapsed().as_nanos() as u64, Ordering::Relaxed);
        match res {
            Ok(per) => {
                for (&i, r) in valid_idx.iter().zip(per) {
                    match r {
                        Ok(p) => {
                            out[i] = p;
                            self.scored.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            self.engine
                                .stats_inner()
                                .score_sheds
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            Err(_) => {
                self.engine
                    .stats_inner()
                    .score_sheds
                    .fetch_add(valid_idx.len() as u64, Ordering::Relaxed);
            }
        }
        out
    }
}

/// End-to-end network latency prediction served by the engine.
///
/// Mirrors `cdmpp_core::e2e::end_to_end` but scores the per-task tensor
/// programs through the engine's worker pool (the `cdmpp` CLI's serving
/// path), and surfaces engine errors instead of NaN-ing predictions.
pub fn end_to_end(
    engine: &InferenceEngine,
    net: &tir::Network,
    dev: &DeviceSpec,
    seed: u64,
) -> Result<cdmpp_core::E2eResult, EngineError> {
    end_to_end_opts(engine, net, dev, seed, &SubmitOptions::default())
}

/// [`end_to_end`] with submission options (deadline). Replay needs every
/// task's score, so any per-task shed fails the whole prediction with its
/// typed error.
pub fn end_to_end_opts(
    engine: &InferenceEngine,
    net: &tir::Network,
    dev: &DeviceSpec,
    seed: u64,
    opts: &SubmitOptions,
) -> Result<cdmpp_core::E2eResult, EngineError> {
    let (task_ids, programs) = cdmpp_core::sample_network_programs(net, seed);
    let refs: Vec<&TensorProgram> = programs.iter().collect();
    let served = engine.served();
    let enc = encode_programs(
        &refs,
        dev,
        served.model.predictor.config().theta,
        served.model.use_pe,
    );
    let per = engine.predict_samples_opts(&enc, opts)?;
    let mut predicted = Vec::with_capacity(per.len());
    for r in per {
        predicted.push(r?);
    }
    Ok(cdmpp_core::replay_predictions(
        net, dev, &task_ids, &programs, &predicted,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdmpp_core::PredictorConfig;
    use features::{N_DEVICE_FEATURES, N_ENTRY};

    fn sample(leaves: usize, seed: usize) -> EncodedSample {
        EncodedSample {
            record_idx: seed,
            leaf_count: leaves,
            x: (0..leaves * N_ENTRY)
                .map(|i| ((i + seed) as f32 * 0.173).sin())
                .collect(),
            dev: [0.3; N_DEVICE_FEATURES],
            y_raw: 1e-3,
        }
    }

    fn untrained_model() -> InferenceModel {
        use cdmpp_core::batch::FeatScaler;
        use learn::TransformKind;
        let model = TrainedModel {
            predictor: cdmpp_core::Predictor::new(PredictorConfig::default()),
            transform: TransformKind::None.fit(&[1.0, 2.0, 3.0]),
            scaler: FeatScaler::identity(),
            use_pe: true,
            train_config: cdmpp_core::TrainConfig::default(),
        };
        model.freeze()
    }

    fn engine(workers: usize) -> InferenceEngine {
        InferenceEngine::new(
            untrained_model(),
            EngineConfig {
                workers,
                max_batch: 8,
                faults: Some(FaultPlan::none()),
                ..Default::default()
            },
        )
    }

    #[test]
    fn heterogeneous_requests_come_back_in_order() {
        let eng = engine(3);
        // Interleave leaf counts so bucketing must reorder internally.
        let enc: Vec<EncodedSample> = (0..40).map(|i| sample(1 + (i % 5), i)).collect();
        let got = eng.predict_samples(&enc).unwrap();
        assert_eq!(got.len(), enc.len());
        // Reference: serial single-threaded path over the same samples.
        let want = eng.model().predict_samples(&enc).unwrap();
        assert_eq!(got, want, "engine must preserve request order exactly");
    }

    #[test]
    fn oversized_leaf_count_is_rejected_descriptively() {
        let eng = engine(1);
        let enc = vec![sample(3, 0), sample(99, 1)];
        let err = eng.predict_samples(&enc).unwrap_err();
        match err {
            EngineError::Predict(PredictError::LeafCountOutOfRange { leaves, max_leaves }) => {
                assert_eq!(leaves, 99);
                assert_eq!(max_leaves, 8);
            }
            other => panic!("expected leaf-count error, got {other:?}"),
        }
    }

    #[test]
    fn empty_request_is_fine() {
        let eng = engine(2);
        assert!(eng.predict_samples(&[]).unwrap().is_empty());
    }

    #[test]
    fn worker_count_resolution() {
        let eng = engine(2);
        assert_eq!(eng.worker_count(), 2);
        let auto = engine(0);
        assert!(auto.worker_count() >= 1);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<InferenceEngine>();
    }

    #[test]
    fn stats_count_admissions() {
        let eng = engine(2);
        let enc: Vec<EncodedSample> = (0..20).map(|i| sample(1 + (i % 3), i)).collect();
        eng.predict_samples(&enc).unwrap();
        eng.predict_samples(&enc).unwrap();
        let s = eng.stats();
        assert_eq!(s.admitted, 2);
        assert_eq!(s.rejected, 0);
        assert!(s.completed_chunks > 0);
        assert!(s.queue_depth_hw >= 1);
        assert_eq!(s.queue_depth, 0, "queue drains between calls");
    }

    #[test]
    fn expired_deadline_sheds_whole_call_before_dispatch() {
        let eng = engine(1);
        let enc: Vec<EncodedSample> = (0..4).map(|i| sample(2, i)).collect();
        let opts = SubmitOptions {
            deadline: Some(Deadline::at(std::time::Instant::now())),
        };
        match eng.predict_samples_opts(&enc, &opts) {
            Err(EngineError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(eng.stats().deadline_sheds >= 1);
        // A deadline-free follow-up is unaffected.
        assert!(eng.predict_samples(&enc).is_ok());
    }
}
