//! Concurrent inference serving for the CDMPP cost model.
//!
//! The schedule-search and end-to-end-replay workloads score thousands of
//! candidate tensor programs per step. The training stack executes each
//! forward pass on a fresh autodiff tape, which pays tape-recording,
//! gradient bookkeeping, and per-thread parameter deep clones that
//! inference never needs. This crate is the serving seam on top of the
//! forward-only execution path (`nn::InferCtx` + Arc-shared weights):
//!
//! * [`InferenceEngine`] accepts *heterogeneous* prediction requests
//!   (arbitrary mixes of leaf counts), buckets them by leaf count through
//!   the one shared grouping policy (`cdmpp_core::batch::group_by_leaf_into`,
//!   writing into pooled scratch), cuts each bucket into dense
//!   `[B, L, N_ENTRY]` chunks under a **plan-aware scheduling policy**
//!   ([`ChunkPolicy`]: full `max_batch` class chunks plus at most one
//!   remainder, optionally padded up to the class), dispatches the chunks
//!   across a worker-thread pool, and returns predictions in request
//!   order.
//! * Each worker replays **compiled inference plans** (`nn::plan`): the
//!   predictor's forward pass is recorded once per leaf count, fused
//!   (GEMM epilogues, element-wise chains) and arena-planned at compile
//!   time. Chunks whose size is a registered **batch class** (`1` and
//!   `max_batch`) replay a further *batch-specialized* fold — shape-final
//!   offsets, prepacked weight GEMMs, a fixed arena per class that is
//!   never re-offset — while odd-size remainders fall back to the
//!   batch-generic plan. Plans are compiled/folded once and shared; each
//!   worker owns only its replay arenas.
//! * The engine implements `cdmpp_core::CostModel`, so it drops into the
//!   schedule search as a faster scorer.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use cdmpp_core::batch::{build_scaled_batch_idx, group_by_leaf_into, EncodedSample, LeafGroups};
use cdmpp_core::e2e::encode_programs;
use cdmpp_core::predictor::PredictError;
use cdmpp_core::{CostModel, InferenceModel, PlanRunner, TrainedModel};
use devsim::DeviceSpec;
use tensor::Tensor;
use tir::TensorProgram;

/// Errors from the serving engine.
#[derive(Debug)]
pub enum EngineError {
    /// A request failed inside the predictor (e.g. an unsupported leaf
    /// count — see `PredictError::LeafCountOutOfRange`).
    Predict(PredictError),
    /// The worker pool is gone (a worker panicked or the engine is shutting
    /// down); the request cannot be served.
    WorkersUnavailable,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Predict(e) => write!(f, "prediction failed: {e}"),
            EngineError::WorkersUnavailable => write!(f, "inference worker pool unavailable"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PredictError> for EngineError {
    fn from(e: PredictError) -> Self {
        EngineError::Predict(e)
    }
}

/// How the dispatcher cuts a leaf bucket into dense chunks — the
/// plan-aware scheduling policy.
///
/// Workers replay **batch-specialized** plans for registered batch
/// classes (`1` and `max_batch`): a class-size chunk executes with zero
/// symbolic evaluation against a fixed arena that is never re-offset,
/// while any other size falls back to the batch-generic plan. The policy
/// controls how much of the stream lands on class sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkPolicy {
    /// The pre-specialization baseline: chunk by `max_batch` and replay
    /// **everything** through the batch-generic plan (no class routing).
    /// Kept for benchmarks and byte-for-byte comparisons.
    Ragged,
    /// Emit only stable chunk shapes: full `max_batch` chunks (replayed
    /// on the `max_batch` class) plus at most one remainder per leaf
    /// bucket, routed to the generic plan (or the `1` class when it is a
    /// single sample). The default.
    Stable,
    /// Like [`ChunkPolicy::Stable`], but a remainder filling at least
    /// `min_fill_pct` percent of `max_batch` is **padded** up to the
    /// class (the last sample's rows are replicated; padded predictions
    /// are discarded). With specialized-vs-generic replay measured at
    /// ≥ 1.3× per sample (see `BENCH_inference_plan.json`), a padded
    /// class chunk beats a generic remainder whenever the fill fraction
    /// exceeds `t_spec/t_generic` ≈ 0.77 — so the default threshold of 80
    /// leaves margin. Real rows' results are bit-identical with or
    /// without padding (every kernel computes rows independently).
    PadToClass {
        /// Minimum remainder fill (percent of `max_batch`) to pad.
        min_fill_pct: usize,
    },
}

/// One planned chunk of a leaf bucket: `start..end` index the bucket's
/// grouped order; `dispatch` is the dense batch size actually executed
/// (`> end - start` only for padded chunks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedChunk {
    /// First sample (inclusive), relative to the bucket.
    pub start: usize,
    /// Last sample (exclusive), relative to the bucket.
    pub end: usize,
    /// Executed batch size (== chunk length unless padded to a class).
    pub dispatch: usize,
}

/// The chunk-planning core, emitting `(start, end, dispatch)` triples —
/// the dispatcher streams these straight into its pooled scratch so the
/// warmed hot path allocates no chunk lists.
fn for_each_chunk(
    len: usize,
    max_batch: usize,
    policy: ChunkPolicy,
    mut emit: impl FnMut(usize, usize, usize),
) {
    let mb = max_batch.max(1);
    let full = len / mb;
    let rem = len % mb;
    for i in 0..full {
        emit(i * mb, (i + 1) * mb, mb);
    }
    if rem > 0 {
        let dispatch = match policy {
            ChunkPolicy::PadToClass { min_fill_pct } if rem * 100 >= min_fill_pct * mb => mb,
            _ => rem,
        };
        emit(full * mb, len, dispatch);
    }
}

/// Cuts one leaf bucket of `len` samples into dense chunks under a
/// policy: `len / max_batch` full chunks plus at most one remainder,
/// which [`ChunkPolicy::PadToClass`] may widen to the full class. Pure —
/// property tests drive it directly (the engine streams the same
/// decisions into reused scratch instead of collecting them).
pub fn plan_chunks(len: usize, max_batch: usize, policy: ChunkPolicy) -> Vec<PlannedChunk> {
    let mut out = Vec::with_capacity(len / max_batch.max(1) + 1);
    for_each_chunk(len, max_batch, policy, |start, end, dispatch| {
        out.push(PlannedChunk {
            start,
            end,
            dispatch,
        })
    });
    out
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. `0` resolves via the `PARALLEL_THREADS` environment
    /// variable, then one per available CPU core (see
    /// [`parallel::resolve_threads`]).
    pub workers: usize,
    /// Largest dense batch dispatched to one worker — also the non-trivial
    /// batch class workers keep a specialized plan (and a dedicated,
    /// never-re-offset arena) for. Buckets bigger than this are split so
    /// they spread across the pool.
    pub max_batch: usize,
    /// The chunking policy; see [`ChunkPolicy`].
    pub policy: ChunkPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            max_batch: cdmpp_core::DEFAULT_MAX_BATCH,
            policy: ChunkPolicy::Stable,
        }
    }
}

impl EngineConfig {
    /// A single-worker configuration (useful as a baseline in benchmarks).
    pub fn single_worker() -> Self {
        EngineConfig {
            workers: 1,
            ..Default::default()
        }
    }

    fn resolved_workers(&self) -> usize {
        parallel::resolve_threads(self.workers)
    }
}

/// One dense batch dispatched to a worker.
struct Job {
    tag: usize,
    x: Tensor,
    dev: Tensor,
    reply: Sender<(usize, Result<Vec<f32>, PredictError>)>,
}

/// Reusable per-request dispatch state (index buffers only — nothing
/// borrows the request), pooled on the engine so steady-state dispatch
/// materializes no `Vec<Vec<usize>>` chunk lists and no per-chunk
/// sample-ref vectors.
#[derive(Default)]
struct DispatchScratch {
    groups: LeafGroups,
    /// `(start, end, dispatch)` per chunk, indexing `groups.order`.
    chunks: Vec<(usize, usize, usize)>,
}

/// A concurrent, leaf-count-bucketed inference server for one frozen model.
///
/// The engine is `Sync`: any number of application threads may call
/// [`InferenceEngine::predict_samples`] (or score programs through the
/// `CostModel` impl) concurrently; their batches interleave across the
/// shared worker pool and each call gets its own results back in request
/// order.
pub struct InferenceEngine {
    model: Arc<InferenceModel>,
    // Behind mutexes so `shutdown` can race in-flight requests from a
    // shared reference: the job-sender lock is held only long enough to
    // clone the sender (or observe that the pool is closed).
    job_tx: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Pooled dispatch scratch: concurrent `predict_samples` calls each
    /// take one set of index buffers and return it when done.
    scratch: Mutex<Vec<DispatchScratch>>,
    cfg: EngineConfig,
}

impl InferenceEngine {
    /// Starts an engine serving `model` with the given configuration.
    ///
    /// Unless the policy is [`ChunkPolicy::Ragged`], the engine registers
    /// its stable batch classes (`1` and `max_batch`) on the model so
    /// every class-size chunk replays a shape-final specialized plan
    /// (folded lazily per leaf count, or pre-folded by a snapshot load).
    pub fn new(model: InferenceModel, cfg: EngineConfig) -> Self {
        let mut cfg = cfg;
        if cfg.policy != ChunkPolicy::Ragged {
            let ok = model.predictor.register_batch_class(1)
                && model.predictor.register_batch_class(cfg.max_batch.max(1));
            if !ok {
                // The model's class registry is full (e.g. a snapshot that
                // shipped the maximum number of classes) and cannot take
                // this engine's {1, max_batch}. Class routing would never
                // fire — and PadToClass would pad for nothing — so demote
                // to the generic-plan policy, loudly and observably
                // (`config().policy` reflects what actually runs).
                eprintln!(
                    "[runtime] warning: batch-class registry full; engine \
                     falls back to ChunkPolicy::Ragged (generic plans)"
                );
                cfg.policy = ChunkPolicy::Ragged;
            }
        }
        let model = Arc::new(model);
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let use_classes = cfg.policy != ChunkPolicy::Ragged;
        let n_workers = cfg.resolved_workers();
        // Split the machine between engine workers and intra-op GEMM
        // threads so the two layers compose instead of oversubscribing:
        // each worker gets cores/workers threads for its own GEMMs. With
        // one worker per core the budget is 1 and GEMMs stay serial,
        // exactly the old behavior.
        let intra_op = (parallel::resolve_threads(0) / n_workers.max(1)).max(1);
        let workers = (0..n_workers)
            .map(|_| {
                let model = Arc::clone(&model);
                let job_rx = Arc::clone(&job_rx);
                std::thread::spawn(move || worker_loop(&model, &job_rx, use_classes, intra_op))
            })
            .collect();
        InferenceEngine {
            model,
            job_tx: Mutex::new(Some(job_tx)),
            workers: Mutex::new(workers),
            scratch: Mutex::new(Vec::new()),
            cfg,
        }
    }

    /// Convenience: freeze a trained model and serve it.
    ///
    /// `freeze` copies the weights **once** into the served `Arc`; after
    /// that every worker, every engine clone of the model handle, and
    /// every frozen handle share the same allocation (no per-worker
    /// clones anywhere on the setup path — asserted by the weight-sharing
    /// regression test). Callers done with the trained model can avoid
    /// even that one copy via `TrainedModel::into_frozen` + [`InferenceEngine::new`].
    pub fn from_trained(model: &TrainedModel, cfg: EngineConfig) -> Self {
        Self::new(model.freeze(), cfg)
    }

    /// Cold start from a decoded snapshot: restores the model (weights
    /// moved — not copied — into the served `Arc`, plan cache seeded from
    /// the file's pre-fused plans) and starts the worker pool. With a
    /// full-plan snapshot the workers begin serving with **zero** plan
    /// recording (`model().predictor.plan_compile_count()` stays 0).
    pub fn from_snapshot(
        snap: &cdmpp_core::Snapshot,
        cfg: EngineConfig,
    ) -> Result<Self, cdmpp_core::SnapshotError> {
        Ok(Self::new(InferenceModel::from_snapshot(snap)?, cfg))
    }

    /// [`InferenceEngine::from_snapshot`] straight from a file path.
    pub fn from_snapshot_file(
        path: impl AsRef<std::path::Path>,
        cfg: EngineConfig,
    ) -> Result<Self, cdmpp_core::SnapshotError> {
        Ok(Self::new(InferenceModel::from_snapshot_file(path)?, cfg))
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Number of worker threads serving requests (0 after
    /// [`InferenceEngine::shutdown`]).
    pub fn worker_count(&self) -> usize {
        self.workers.lock().map(|w| w.len()).unwrap_or(0)
    }

    /// The model being served.
    pub fn model(&self) -> &InferenceModel {
        &self.model
    }

    /// Predicts latencies (seconds) for pre-encoded, unscaled samples.
    ///
    /// Requests may mix leaf counts arbitrarily; the engine groups them,
    /// dispatches dense batches across the pool, and returns one latency
    /// per input sample **in input order**. Unsupported leaf counts are
    /// rejected up front with the predictor's descriptive error.
    pub fn predict_samples(&self, enc: &[EncodedSample]) -> Result<Vec<f64>, EngineError> {
        let refs: Vec<&EncodedSample> = enc.iter().collect();
        self.predict_sample_refs(&refs)
    }

    /// [`InferenceEngine::predict_samples`] over borrowed samples: callers
    /// that filter or subset a request stream (like the `CostModel` path)
    /// pass the survivors by reference instead of cloning each sample's
    /// feature vector.
    pub fn predict_sample_refs(&self, enc: &[&EncodedSample]) -> Result<Vec<f64>, EngineError> {
        if enc.is_empty() {
            return Ok(Vec::new());
        }
        // Validate before dispatch so the caller gets the descriptive
        // error immediately rather than a poisoned batch result.
        let max_leaves = self.model.predictor.config().max_leaves;
        for s in enc {
            if s.leaf_count == 0 || s.leaf_count > max_leaves {
                return Err(PredictError::LeafCountOutOfRange {
                    leaves: s.leaf_count,
                    max_leaves,
                }
                .into());
            }
        }
        // Bucket by leaf count into pooled scratch (flat index buffers —
        // no per-request group maps, no `Vec<Vec<usize>>` chunk lists),
        // cut each bucket per the scheduling policy, dispatch. Sample
        // standardization happens during the batch-building copy
        // (`build_scaled_batch_idx`), so requests are never cloned
        // wholesale and no per-chunk ref vector is materialized.
        // Clone the sender under the lock, then dispatch without it. A
        // cloned sender also keeps the workers alive until this request's
        // replies are in, so shutdown drains in-flight work instead of
        // dropping it.
        let job_tx = self
            .job_tx
            .lock()
            .map_err(|_| EngineError::WorkersUnavailable)?
            .clone()
            .ok_or(EngineError::WorkersUnavailable)?;
        let mut scratch = {
            let mut pool = self
                .scratch
                .lock()
                .map_err(|_| EngineError::WorkersUnavailable)?;
            pool.pop().unwrap_or_default()
        };
        let result = self.dispatch_and_collect(enc, &job_tx, &mut scratch);
        // The scratch goes back to the pool on *every* outcome — an error
        // (worker failure, shutdown race) must not throw the warmed
        // buffers away and quietly re-establish per-request allocation.
        if let Ok(mut pool) = self.scratch.lock() {
            pool.push(scratch);
        }
        result
    }

    /// The fallible middle of [`InferenceEngine::predict_sample_refs`]:
    /// plan chunks into `scratch`, dispatch, collect, scatter.
    fn dispatch_and_collect(
        &self,
        enc: &[&EncodedSample],
        job_tx: &Sender<Job>,
        scratch: &mut DispatchScratch,
    ) -> Result<Vec<f64>, EngineError> {
        let (reply_tx, reply_rx) = channel();
        group_by_leaf_into(enc, &mut scratch.groups);
        scratch.chunks.clear();
        {
            let chunks = &mut scratch.chunks;
            for &(_, gs, ge) in &scratch.groups.spans {
                for_each_chunk(
                    ge - gs,
                    self.cfg.max_batch,
                    self.cfg.policy,
                    |start, end, dispatch| chunks.push((gs + start, gs + end, dispatch)),
                );
            }
        }
        for (tag, &(s, e, dispatch)) in scratch.chunks.iter().enumerate() {
            let batch = build_scaled_batch_idx(
                enc,
                &scratch.groups.order[s..e],
                dispatch,
                &self.model.scaler,
            );
            let job = Job {
                tag,
                x: batch.x,
                dev: batch.dev,
                reply: reply_tx.clone(),
            };
            job_tx
                .send(job)
                .map_err(|_| EngineError::WorkersUnavailable)?;
        }
        drop(reply_tx);
        // Collect replies and scatter them back to request order (the zip
        // truncates any padded tail predictions).
        let mut out = vec![0.0f64; enc.len()];
        let mut received = 0usize;
        while received < scratch.chunks.len() {
            let (tag, result) = reply_rx
                .recv()
                .map_err(|_| EngineError::WorkersUnavailable)?;
            let preds = result?;
            let (s, e, _) = scratch.chunks[tag];
            for (&i, &p) in scratch.groups.order[s..e].iter().zip(preds.iter()) {
                out[i] = self.model.inverse_transform(p);
            }
            received += 1;
        }
        Ok(out)
    }

    /// Encodes and scores standalone tensor programs for a device,
    /// returning predicted latencies (seconds) in input order.
    pub fn predict_programs(
        &self,
        progs: &[&TensorProgram],
        dev: &DeviceSpec,
    ) -> Result<Vec<f64>, EngineError> {
        let enc = encode_programs(
            progs,
            dev,
            self.model.predictor.config().theta,
            self.model.use_pe,
        );
        self.predict_samples(&enc)
    }
}

impl InferenceEngine {
    /// Gracefully stops the worker pool: refuses new requests, lets
    /// requests already dispatched drain, then joins every worker.
    /// Requests arriving after (or racing) the shutdown surface
    /// [`EngineError::WorkersUnavailable`] instead of hanging.
    pub fn shutdown(&self) {
        if let Ok(mut tx) = self.job_tx.lock() {
            tx.take();
        }
        let drained = match self.workers.lock() {
            Ok(mut w) => w.drain(..).collect::<Vec<_>>(),
            Err(_) => Vec::new(),
        };
        for w in drained {
            let _ = w.join();
        }
    }
}

impl Drop for InferenceEngine {
    fn drop(&mut self) {
        // No thread outlives the engine.
        self.shutdown();
    }
}

/// The engine is a drop-in cost model for the schedule search: `score_batch`
/// fans candidate programs out across the worker pool.
impl CostModel for InferenceEngine {
    fn score(&self, prog: &TensorProgram, dev: &DeviceSpec) -> f64 {
        self.score_batch(&[prog], dev)[0]
    }

    fn score_batch(&self, progs: &[&TensorProgram], dev: &DeviceSpec) -> Vec<f64> {
        // Per-candidate granularity: an unsupported leaf count ranks only
        // that candidate as infinitely slow; the rest still get real
        // scores (matching the TrainedModel cost model's behavior).
        let enc = encode_programs(
            progs,
            dev,
            self.model.predictor.config().theta,
            self.model.use_pe,
        );
        let max_leaves = self.model.predictor.config().max_leaves;
        let valid_idx: Vec<usize> = enc
            .iter()
            .enumerate()
            .filter(|(_, s)| (1..=max_leaves).contains(&s.leaf_count))
            .map(|(i, _)| i)
            .collect();
        let mut out = vec![f64::INFINITY; progs.len()];
        if valid_idx.is_empty() {
            return out;
        }
        // Borrow the validated candidates — no wholesale sample clones.
        let valid: Vec<&EncodedSample> = valid_idx.iter().map(|&i| &enc[i]).collect();
        match self.predict_sample_refs(&valid) {
            Ok(preds) => {
                for (&i, p) in valid_idx.iter().zip(preds) {
                    out[i] = p;
                }
            }
            // Unreachable after the filter above, but keep the candidates
            // rankable if a new validation is ever added upstream.
            Err(EngineError::Predict(_)) => {}
            // A dead worker pool is infrastructure failure: silently
            // returning INFINITY would let the search "complete" with
            // garbage results. CostModel has no error channel, so be loud.
            Err(e @ EngineError::WorkersUnavailable) => {
                panic!("inference engine cannot score candidates: {e}")
            }
        }
        out
    }
}

/// End-to-end network latency prediction served by the engine.
///
/// Mirrors `cdmpp_core::e2e::end_to_end` but scores the per-task tensor
/// programs through the engine's worker pool (the `cdmpp` CLI's serving
/// path), and surfaces engine errors instead of NaN-ing predictions.
pub fn end_to_end(
    engine: &InferenceEngine,
    net: &tir::Network,
    dev: &DeviceSpec,
    seed: u64,
) -> Result<cdmpp_core::E2eResult, EngineError> {
    let (task_ids, programs) = cdmpp_core::sample_network_programs(net, seed);
    let refs: Vec<&TensorProgram> = programs.iter().collect();
    let predicted = engine.predict_programs(&refs, dev)?;
    Ok(cdmpp_core::replay_predictions(
        net, dev, &task_ids, &programs, &predicted,
    ))
}

fn worker_loop(
    model: &InferenceModel,
    jobs: &Arc<Mutex<Receiver<Job>>>,
    use_classes: bool,
    intra_op: usize,
) {
    // Cap how many threads this worker's GEMMs may fan out to. The engine
    // computed the budget as cores/workers, so worker-level and GEMM-level
    // parallelism compose instead of oversubscribing the machine; a budget
    // of 1 keeps this worker's GEMMs serial (one worker per core).
    parallel::set_intra_op_threads(intra_op);
    // One plan runner per worker, alive for the engine's lifetime: the
    // compiled plans themselves are shared through the model (compiled at
    // most once per leaf count), and this worker's replay arenas warm up
    // once per (leaf count, batch class) — class-size chunks replay a
    // specialized plan against a fixed arena that is never re-offset;
    // only generic-plan remainders ever re-offset, among themselves.
    let mut runner = PlanRunner::new();
    loop {
        let job = {
            let rx = match jobs.lock() {
                Ok(rx) => rx,
                Err(_) => return, // poisoned: another worker panicked
            };
            match rx.recv() {
                Ok(job) => job,
                Err(_) => return, // channel closed: engine dropped
            }
        };
        let result = if use_classes {
            model
                .predictor
                .predict_planned(&mut runner, &job.x, &job.dev)
        } else {
            // Ragged baseline: force the batch-generic plan everywhere.
            model
                .predictor
                .predict_planned_generic(&mut runner, &job.x, &job.dev)
        };
        // A send failure means the requester gave up; keep serving others.
        let _ = job.reply.send((job.tag, result));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdmpp_core::PredictorConfig;
    use features::{N_DEVICE_FEATURES, N_ENTRY};

    fn sample(leaves: usize, seed: usize) -> EncodedSample {
        EncodedSample {
            record_idx: seed,
            leaf_count: leaves,
            x: (0..leaves * N_ENTRY)
                .map(|i| ((i + seed) as f32 * 0.173).sin())
                .collect(),
            dev: [0.3; N_DEVICE_FEATURES],
            y_raw: 1e-3,
        }
    }

    fn untrained_model() -> InferenceModel {
        use cdmpp_core::batch::FeatScaler;
        use learn::TransformKind;
        let model = TrainedModel {
            predictor: cdmpp_core::Predictor::new(PredictorConfig::default()),
            transform: TransformKind::None.fit(&[1.0, 2.0, 3.0]),
            scaler: FeatScaler::identity(),
            use_pe: true,
            train_config: cdmpp_core::TrainConfig::default(),
        };
        model.freeze()
    }

    fn engine(workers: usize) -> InferenceEngine {
        InferenceEngine::new(
            untrained_model(),
            EngineConfig {
                workers,
                max_batch: 8,
                ..Default::default()
            },
        )
    }

    #[test]
    fn heterogeneous_requests_come_back_in_order() {
        let eng = engine(3);
        // Interleave leaf counts so bucketing must reorder internally.
        let enc: Vec<EncodedSample> = (0..40).map(|i| sample(1 + (i % 5), i)).collect();
        let got = eng.predict_samples(&enc).unwrap();
        assert_eq!(got.len(), enc.len());
        // Reference: serial single-threaded path over the same samples.
        let want = eng.model().predict_samples(&enc).unwrap();
        assert_eq!(got, want, "engine must preserve request order exactly");
    }

    #[test]
    fn oversized_leaf_count_is_rejected_descriptively() {
        let eng = engine(1);
        let enc = vec![sample(3, 0), sample(99, 1)];
        let err = eng.predict_samples(&enc).unwrap_err();
        match err {
            EngineError::Predict(PredictError::LeafCountOutOfRange { leaves, max_leaves }) => {
                assert_eq!(leaves, 99);
                assert_eq!(max_leaves, 8);
            }
            other => panic!("expected leaf-count error, got {other:?}"),
        }
    }

    #[test]
    fn empty_request_is_fine() {
        let eng = engine(2);
        assert!(eng.predict_samples(&[]).unwrap().is_empty());
    }

    #[test]
    fn worker_count_resolution() {
        let eng = engine(2);
        assert_eq!(eng.worker_count(), 2);
        let auto = engine(0);
        assert!(auto.worker_count() >= 1);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<InferenceEngine>();
    }
}
