//! Engine observability: lock-free failure/traffic counters.
//!
//! Every robustness path in the engine — admission control, deadline
//! shedding, worker supervision, hot swap, cost-model shedding — bumps a
//! counter here instead of writing to stderr. [`EngineStats`] is the
//! plain-data snapshot returned by `InferenceEngine::stats()` and printed
//! by the serving bench and the CLI.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters (engine + workers hold an `Arc` each).
#[derive(Default)]
pub(crate) struct StatsInner {
    pub admitted: AtomicU64,
    pub rejected: AtomicU64,
    pub deadline_sheds: AtomicU64,
    pub worker_panics: AtomicU64,
    pub worker_restarts: AtomicU64,
    pub chunk_retries: AtomicU64,
    pub completed_chunks: AtomicU64,
    pub swaps: AtomicU64,
    pub class_demotions: AtomicU64,
    pub score_sheds: AtomicU64,
    pub window_fill_flushes: AtomicU64,
    pub window_timer_flushes: AtomicU64,
    pub promotions: AtomicU64,
    pub queue_depth_hw: AtomicU64,
    pub predict_ns: AtomicU64,
}

impl StatsInner {
    /// Raises the queue-depth high-water mark to at least `depth`.
    pub fn observe_depth(&self, depth: usize) {
        self.queue_depth_hw
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Counts one logical worker respawn.
    pub fn bump_restart(&self) {
        self.worker_restarts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self, queue_depth: usize, parked: usize) -> EngineStats {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        EngineStats {
            admitted: get(&self.admitted),
            rejected: get(&self.rejected),
            deadline_sheds: get(&self.deadline_sheds),
            worker_panics: get(&self.worker_panics),
            worker_restarts: get(&self.worker_restarts),
            chunk_retries: get(&self.chunk_retries),
            completed_chunks: get(&self.completed_chunks),
            swaps: get(&self.swaps),
            class_demotions: get(&self.class_demotions),
            score_sheds: get(&self.score_sheds),
            window_fill_flushes: get(&self.window_fill_flushes),
            window_timer_flushes: get(&self.window_timer_flushes),
            promotions: get(&self.promotions),
            queue_depth: queue_depth as u64,
            queue_depth_hw: get(&self.queue_depth_hw),
            parked: parked as u64,
            predict_ns: get(&self.predict_ns),
        }
    }
}

/// A point-in-time snapshot of the engine's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Calls admitted past admission control.
    pub admitted: u64,
    /// Calls rejected with `EngineError::Overloaded` (real or injected).
    pub rejected: u64,
    /// Chunks (or whole calls) shed with `EngineError::DeadlineExceeded`
    /// before execution.
    pub deadline_sheds: u64,
    /// Worker panics caught by the supervisor (injected or real).
    pub worker_panics: u64,
    /// Logical worker respawns (fresh replay state after a panic). The
    /// pool returns to full strength after every one of these.
    pub worker_restarts: u64,
    /// Chunks re-dispatched after a worker panic (self-healing retries).
    pub chunk_retries: u64,
    /// Chunks executed to a successful reply.
    pub completed_chunks: u64,
    /// Live model hot-swaps (`swap_snapshot` / `swap_model`).
    pub swaps: u64,
    /// Batch-class registrations that could not take effect (full class
    /// registry on the served model) — a performance demotion, counted
    /// instead of warned about on stderr.
    pub class_demotions: u64,
    /// Candidates shed to `f32::INFINITY` scores by the `CostModel` path
    /// because the engine returned an error for them.
    pub score_sheds: u64,
    /// Window buffers dispatched because they filled to the batch class
    /// (the merge the window exists to find).
    pub window_fill_flushes: u64,
    /// Window buffers dispatched by the `max_delay` timer (partially
    /// filled — the latency bound doing its job).
    pub window_timer_flushes: u64,
    /// Remainder sizes promoted to batch classes at runtime by the
    /// traffic-aware promotion path.
    pub promotions: u64,
    /// Current submission-queue depth (chunks).
    pub queue_depth: u64,
    /// Highest queue depth observed since engine start.
    pub queue_depth_hw: u64,
    /// Samples currently parked in batch-window pending buffers (counted
    /// toward admission headroom alongside `queue_depth`).
    pub parked: u64,
    /// Total worker-side predict time (the replay region, including
    /// injected faults), in nanoseconds — the engine's busy time.
    pub predict_ns: u64,
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "admitted={} rejected={} deadline_sheds={} worker_panics={} \
             worker_restarts={} chunk_retries={} completed_chunks={} swaps={} \
             class_demotions={} score_sheds={} window_fill_flushes={} \
             window_timer_flushes={} promotions={} queue_depth={} \
             queue_depth_hw={} parked={} predict_ns={}",
            self.admitted,
            self.rejected,
            self.deadline_sheds,
            self.worker_panics,
            self.worker_restarts,
            self.chunk_retries,
            self.completed_chunks,
            self.swaps,
            self.class_demotions,
            self.score_sheds,
            self.window_fill_flushes,
            self.window_timer_flushes,
            self.promotions,
            self.queue_depth,
            self.queue_depth_hw,
            self.parked,
            self.predict_ns
        )
    }
}
