//! Zero-downtime model hot swap.
//!
//! The engine serves an [`Arc<Served>`] — the frozen model plus a
//! generation counter. Every call captures the current `Arc` once at
//! admission and threads it through its jobs, so a swap is a single
//! atomic pointer replacement with a clean cutover contract:
//!
//! * **in-flight chunks finish on the old model** (their jobs hold the old
//!   `Arc`; it stays alive until the last of them drops it),
//! * **new admissions route to the new model** (they capture the new
//!   `Arc`),
//! * no request is ever lost, split across models, or served a torn mix.
//!
//! The new model is fully *prewarmed* before it is published — batch
//! classes registered, specialized plans folded, weight panels prepacked
//! (`SharedPredictor::prewarm_classes`) — so the cutover never pays a
//! first-request folding cliff. A validation failure (hostile snapshot,
//! plan error) surfaces as a typed error and leaves the old model serving,
//! untouched.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use cdmpp_core::InferenceModel;

use crate::{ChunkPolicy, EngineError, InferenceEngine};

/// One published model generation. Jobs hold an `Arc<Served>`, pinning the
/// model they were admitted under.
pub(crate) struct Served {
    pub model: Arc<InferenceModel>,
    pub generation: u64,
}

impl InferenceEngine {
    /// The generation counter of the currently served model: starts at 0,
    /// +1 per successful swap. Makes cutovers observable — a caller that
    /// records the generation before and after a request can tell which
    /// side of a swap it landed on.
    pub fn generation(&self) -> u64 {
        self.served().generation
    }

    /// Atomically replaces the served model under live traffic. The new
    /// model is prewarmed (classes registered, specialized plans folded)
    /// *before* publication; in-flight chunks finish on the old model, new
    /// admissions see the new one. Returns the new generation.
    ///
    /// Swapping is independent of the worker pool's lifecycle: a swap
    /// racing `shutdown` publishes fine (there is just no traffic left to
    /// serve it to), and neither call can deadlock the other.
    pub fn swap_model(&self, model: InferenceModel) -> Result<u64, EngineError> {
        if self.config().policy != ChunkPolicy::Ragged {
            // The stable classes, plus every class the promotion path
            // learned from live traffic — a swap keeps the learned
            // traffic shape instead of resetting to {1, max_batch}.
            let mut classes = vec![1, self.config().max_batch.max(1)];
            for b in self.promoted_classes() {
                if !classes.contains(&b) {
                    classes.push(b);
                }
            }
            model
                .predictor
                .prewarm_classes(&classes)
                .map_err(EngineError::Predict)?;
            // A full class registry on the new model (e.g. a snapshot that
            // shipped MAX_BATCH_CLASSES of its own) demotes those sizes to
            // the generic plan — a performance loss worth counting, never
            // a correctness one.
            let registered = model.predictor.batch_classes();
            for b in classes {
                if !registered.contains(&b) {
                    self.stats_inner()
                        .class_demotions
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let generation = {
            let mut served = self
                .served_slot()
                .write()
                .unwrap_or_else(|p| p.into_inner());
            let generation = served.generation + 1;
            *served = Arc::new(Served {
                model: Arc::new(model),
                generation,
            });
            generation
        };
        self.stats_inner().swaps.fetch_add(1, Ordering::Relaxed);
        Ok(generation)
    }

    /// [`InferenceEngine::swap_model`] from a snapshot file: decode +
    /// validate + prewarm first, publish only on success. A bad file
    /// (truncated, hostile, wrong version) is a typed error and leaves the
    /// current model serving.
    pub fn swap_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<u64, EngineError> {
        let model = InferenceModel::from_snapshot_file(path).map_err(EngineError::Snapshot)?;
        self.swap_model(model)
    }

    /// [`InferenceEngine::swap_snapshot`] from in-memory snapshot bytes.
    pub fn swap_snapshot_bytes(&self, bytes: &[u8]) -> Result<u64, EngineError> {
        let model = InferenceModel::from_snapshot_bytes(bytes).map_err(EngineError::Snapshot)?;
        self.swap_model(model)
    }
}

/// Polls a snapshot file for changes and hot-swaps the engine when it is
/// rewritten — the `serve --watch` loop, factored out so its edge cases
/// are testable:
///
/// * change detection compares **`(mtime, len)`**, not mtime alone — a
///   same-size-different-content rewrite within the filesystem's mtime
///   granularity would otherwise be missed, and a length change with a
///   clock-skewed mtime would too;
/// * the watched state advances **only after a successful swap** — a
///   half-written file that fails to decode is retried on the next poll
///   (instead of being recorded as "seen" and the final write missed);
/// * a transient `stat` failure (file briefly absent mid-rewrite) is a
///   no-op, not a forgotten state — recovery with unchanged `(mtime, len)`
///   does not re-trigger a swap.
pub struct SnapshotWatcher {
    path: std::path::PathBuf,
    /// `(mtime, len)` of the last successfully swapped snapshot; `None`
    /// until the first successful swap through this watcher.
    state: Option<(std::time::SystemTime, u64)>,
}

impl SnapshotWatcher {
    /// Watches `path`, treating its current `(mtime, len)` as already
    /// served (the caller typically just loaded the engine from it).
    pub fn new(path: impl Into<std::path::PathBuf>) -> SnapshotWatcher {
        let path = path.into();
        let state = Self::probe(&path);
        SnapshotWatcher { path, state }
    }

    /// The watched path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    fn probe(path: &std::path::Path) -> Option<(std::time::SystemTime, u64)> {
        let meta = std::fs::metadata(path).ok()?;
        Some((meta.modified().ok()?, meta.len()))
    }

    /// One poll: returns `None` when the file is unchanged (or
    /// transiently unreadable), otherwise the result of attempting the
    /// swap. On `Some(Err(_))` the watched state is **not** advanced — the
    /// next poll retries, so a half-written file converges to a swap once
    /// the writer finishes.
    pub fn poll(&mut self, engine: &InferenceEngine) -> Option<Result<u64, EngineError>> {
        let current = Self::probe(&self.path)?;
        if Some(current) == self.state {
            return None;
        }
        let res = engine.swap_snapshot(&self.path);
        if res.is_ok() {
            self.state = Some(current);
        }
        Some(res)
    }
}
