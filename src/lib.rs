//! # cdmpp — a Rust reproduction of CDMPP (EuroSys '24)
//!
//! CDMPP is a device- and model-agnostic framework for predicting the
//! absolute execution latency of tensor programs. This crate re-exports
//! the whole reproduction workspace behind one façade:
//!
//! * [`tir`]: loop-nest tensor IR, schedules, and the DNN model zoo.
//! * [`devsim`]: the analytical device simulator (Table 2 devices).
//! * [`features`]: compact-AST features and positional encoding (§4).
//! * [`dataset`]: synthetic-Tenset generation and splits (§7.1).
//! * [`nn`] / [`tensor`]: the from-scratch neural substrate, with model
//!   definition decoupled from execution — an autodiff tape for training
//!   and a bit-identical forward-only executor for inference.
//! * [`learn`]: KMeans, Box-Cox, t-SNE, metrics.
//! * [`baselines`]: XGBoost-style GBT, Tiramisu, Habitat, TLP.
//! * [`core`]: the CDMPP predictor, cross-domain training, Algorithm 1
//!   sampler, Algorithm 2 replayer, and schedule search.
//! * [`runtime`]: the concurrent serving engine — heterogeneous prediction
//!   requests bucketed by leaf count, dispatched as dense batches across a
//!   worker pool over `Arc`-shared weights, results in request order.
//!
//! ## Training vs inference execution
//!
//! Training builds a fresh [`nn::Graph`] tape per step and pulls gradients
//! back into a mutable [`nn::ParamStore`]. Inference never touches a tape:
//! [`core::Predictor::predict_batch`] runs on [`nn::InferCtx`]
//! (forward-only, parameters borrowed, node buffers recycled), and serving
//! freezes a [`core::TrainedModel`] into a [`core::InferenceModel`] whose
//! weights live behind an `Arc`, shared by every
//! [`runtime::InferenceEngine`] worker. Both paths execute the same kernels
//! in the same order, so their outputs are bit-identical.
//!
//! ## Quickstart
//!
//! ```
//! use cdmpp::prelude::*;
//!
//! // Generate a small dataset on one simulated device.
//! let ds = Dataset::generate_with_networks(
//!     GenConfig {
//!         batch: 1,
//!         schedules_per_task: 3,
//!         devices: vec![cdmpp::devsim::t4()],
//!         seed: 1,
//!         noise_sigma: 0.0,
//!     },
//!     vec![cdmpp::tir::zoo::mlp_mixer(1)],
//! );
//! let split = SplitIndices::for_device(&ds, "T4", &[], 1);
//! // Train a tiny predictor for a couple of epochs.
//! let pcfg = PredictorConfig { d_model: 16, n_layers: 1, d_ff: 32, ..Default::default() };
//! let tcfg = TrainConfig { epochs: 2, ..Default::default() };
//! let (model, _stats) = pretrain(&ds, &split.train, &split.valid, pcfg, tcfg);
//! let preds = model.predict_records(&ds, &split.test);
//! assert!(preds.iter().all(|&p| p > 0.0));
//! ```

pub use baselines;
pub use cdmpp_core as core;
pub use dataset;
pub use devsim;
pub use features;
pub use learn;
pub use nn;
pub use runtime;
pub use tensor;
pub use tir;

/// The most common imports in one place.
pub mod prelude {
    pub use cdmpp_core::{
        autotune, end_to_end, evaluate, finetune, measured_end_to_end, pretrain, replay,
        search_schedule, select_tasks, CostModel, EvalMetrics, FineTuneConfig, InferenceModel,
        PredictError, Predictor, PredictorConfig, SearchConfig, TrainConfig, TrainedModel,
    };
    pub use dataset::{Dataset, GenConfig, Record, SplitIndices};
    pub use devsim::{DeviceClass, DeviceSpec, Simulator};
    pub use features::{extract_compact_ast, CompactAst};
    pub use learn::{LabelTransform, TransformKind};
    pub use runtime::{EngineConfig, InferenceEngine};
    pub use tir::{lower, sample_schedule, Network, OpSpec, Schedule, TensorProgram};
}
