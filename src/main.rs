//! The `cdmpp` command-line interface (§6 of the paper):
//!
//! ```console
//! $ cdmpp train T4 --save model.cdmppsnap       # fit + checkpoint
//! $ cdmpp serve --snapshot model.cdmppsnap resnet50 1 T4
//! $ cdmpp predict --snapshot model.cdmppsnap bert_tiny 1 T4
//! $ cdmpp resnet50 1 T4                         # legacy: train + serve
//! ```
//!
//! The paper serves predictions from a pre-trained checkpoint; `train
//! --save` writes that checkpoint (trained weights **plus** the compiled
//! per-leaf-count inference plans in one snapshot file), and `serve` /
//! `predict` cold-start from it — a file load instead of a training run,
//! with zero plan recording. The legacy positional form still trains on
//! the fly and serves in the same process.

use cdmpp::core::{end_to_end_frozen, generational_search, GenSearchConfig, Snapshot};
use cdmpp::prelude::*;
use cdmpp::runtime::{
    end_to_end_opts, BatchWindow, EngineConfig, EngineCostModel, InferenceEngine, SnapshotWatcher,
    SubmitOptions,
};
use cdmpp::tensor::QuantMode;
use cdmpp::tir::{lower, Nest, OpSpec, Schedule};

fn usage() -> ! {
    eprintln!("usage: cdmpp <network> <batch_size> <device>");
    eprintln!("       cdmpp train <device> --save <snapshot> [--epochs N] [--quant i8|bf16]");
    eprintln!(
        "       cdmpp serve --snapshot <snapshot> <network> <batch_size> <device> \
         [--queue-cap N] [--deadline-ms N] [--watch <snapshot>] [--iters N] \
         [--batch-window-ms N] [--promote-after N]"
    );
    eprintln!("       cdmpp predict --snapshot <snapshot> <network> <batch_size> <device>");
    eprintln!(
        "       cdmpp search <device> [--nest dense:MxNxK|bmm:BxMxNxK|softmax:RxC] \
         [--rounds N] [--candidates N] [--snapshot <snapshot>] [--engine]"
    );
    eprintln!("  networks: resnet50 resnet18 mobilenet_v2 bert_tiny bert_base vgg16 inception_v3 gpt2_small mlp_mixer");
    eprintln!(
        "  devices:  {}",
        cdmpp::devsim::all_devices()
            .iter()
            .map(|d| d.name.clone())
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(2);
}

fn network_by_name(name: &str, batch: u64) -> Option<Network> {
    cdmpp::tir::all_networks(batch)
        .into_iter()
        .find(|n| n.name == name)
}

fn parse_batch(arg: &str) -> u64 {
    match arg.parse() {
        Ok(b) if b >= 1 => b,
        _ => usage(),
    }
}

fn device_or_usage(name: &str) -> DeviceSpec {
    match cdmpp::devsim::device_by_name(name) {
        Some(d) => d,
        None => {
            eprintln!("unknown device '{name}'");
            usage();
        }
    }
}

fn network_or_usage(name: &str, batch: u64) -> Network {
    match network_by_name(name, batch) {
        Some(n) => n,
        None => {
            eprintln!("unknown network '{name}'");
            usage();
        }
    }
}

/// Trains the standard CLI cost model for one device.
fn train_model(dev: &DeviceSpec, epochs: usize) -> TrainedModel {
    eprintln!("[cdmpp] training cost model for {}...", dev.name);
    let ds = Dataset::generate(GenConfig {
        batch: 1,
        schedules_per_task: 24,
        devices: vec![dev.clone()],
        seed: 0,
        noise_sigma: 0.03,
    });
    let split = SplitIndices::for_device(&ds, &dev.name, &[], 0);
    let (model, _) = pretrain(
        &ds,
        &split.train,
        &split.valid,
        PredictorConfig::default(),
        TrainConfig {
            epochs,
            lr: 1.5e-3,
            ..Default::default()
        },
    );
    let m = evaluate(&model, &ds, &split.test);
    eprintln!("[cdmpp] cost model test MAPE: {:.1}%", m.mape * 100.0);
    model
}

fn print_result(net: &Network, batch: u64, dev: &DeviceSpec, r: &cdmpp::core::E2eResult) {
    println!(
        "{} (batch {}) on {}: predicted {:.3} ms / iteration (simulated ground truth {:.3} ms, error {:.1}%)",
        net.name,
        batch,
        dev.name,
        r.predicted_s * 1e3,
        r.measured_s * 1e3,
        r.error() * 100.0
    );
}

/// `cdmpp train <device> --save <path> [--epochs N] [--quant i8|bf16]`
fn cmd_train(args: &[String]) -> ! {
    let mut device: Option<String> = None;
    let mut save: Option<String> = None;
    let mut epochs = 12usize;
    let mut quant = QuantMode::F32;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--save" => save = it.next().cloned().or_else(|| usage()),
            "--epochs" => {
                epochs = match it.next().and_then(|v| v.parse().ok()) {
                    Some(e) if e >= 1 => e,
                    _ => usage(),
                }
            }
            "--quant" => {
                quant = match it.next().and_then(|v| QuantMode::parse(v)) {
                    Some(m) => m,
                    None => {
                        eprintln!("--quant takes i8, bf16, or f32");
                        usage();
                    }
                }
            }
            _ if device.is_none() => device = Some(a.clone()),
            _ => usage(),
        }
    }
    let (Some(device), Some(save)) = (device, save) else {
        usage();
    };
    let dev = device_or_usage(&device);
    let model = train_model(&dev, epochs);
    // Ship the engine's default batch classes so `serve --snapshot`
    // cold-starts with shape-final specialized plans too. `--quant`
    // stores the weight matrices in the requested reduced precision;
    // `serve`/`predict` auto-detect it from the file.
    let snap = match Snapshot::capture_quantized(
        &model,
        &(1..=model.predictor.config().max_leaves).collect::<Vec<_>>(),
        quant,
    )
    .map_err(|e| e.to_string())
    .and_then(|s| {
        s.with_batch_classes(&[1, cdmpp::core::DEFAULT_MAX_BATCH])
            .map_err(|e| e.to_string())
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[cdmpp] compiling inference plans failed: {e}");
            std::process::exit(1);
        }
    };
    let bytes = snap.to_bytes();
    if let Err(e) = std::fs::write(&save, &bytes) {
        eprintln!("[cdmpp] writing {save} failed: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "[cdmpp] wrote {save}: {} bytes, {} weight tensors ({} storage), \
         {} pre-compiled plans, {} batch specializations",
        bytes.len(),
        snap.params.len(),
        quant.name(),
        snap.plans.len(),
        snap.spec_plans.len()
    );
    std::process::exit(0);
}

/// Parses `--snapshot <path> <network> <batch> <device>`.
fn parse_snapshot_args(args: &[String]) -> (String, Network, u64, DeviceSpec) {
    let [flag, path, net, batch, device] = args else {
        usage();
    };
    if flag != "--snapshot" {
        usage();
    }
    let batch = parse_batch(batch);
    let net = network_or_usage(net, batch);
    let dev = device_or_usage(device);
    (path.clone(), net, batch, dev)
}

fn load_model(path: &str) -> InferenceModel {
    match InferenceModel::from_snapshot_file(path) {
        Ok(m) => {
            let storage = match m.predictor.quant_kind() {
                Some(kind) => kind.name(),
                None => "f32",
            };
            eprintln!(
                "[cdmpp] loaded {path} ({storage} weights, {} serving bytes, \
                 plan recordings performed: {})",
                m.predictor.serving_weights_bytes(),
                m.predictor.plan_compile_count()
            );
            m
        }
        Err(e) => {
            eprintln!("[cdmpp] loading snapshot {path} failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `cdmpp serve --snapshot <path> <network> <batch> <device>
///  [--queue-cap N] [--deadline-ms N] [--watch <snapshot>] [--iters N]
///  [--batch-window-ms N] [--promote-after N]`:
/// cold-start the concurrent engine from the checkpoint and serve
/// predictions through the worker pool.
///
/// `--queue-cap` bounds the submission queue (0 = unbounded),
/// `--deadline-ms` gives each iteration a completion deadline (expired
/// work is shed with a typed error instead of served late), `--watch`
/// hot-swaps the engine onto `<snapshot>` whenever the file changes
/// between iterations — zero downtime, no restart — `--iters` serves that
/// many iterations (default 1), `--batch-window-ms` holds partial chunks
/// up to that long so concurrent traffic merges into full batch classes
/// (0 = off, the default), and `--promote-after` promotes a remainder
/// size recurring that many times to a batch class (0 = never).
fn cmd_serve(args: &[String]) -> ! {
    let mut positional: Vec<String> = Vec::new();
    let mut queue_cap: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut watch: Option<String> = None;
    let mut iters = 1usize;
    let mut window_ms: Option<u64> = None;
    let mut promote_after: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--queue-cap" => {
                queue_cap = match it.next().and_then(|v| v.parse().ok()) {
                    Some(c) => Some(c),
                    None => usage(),
                }
            }
            "--deadline-ms" => {
                deadline_ms = match it.next().and_then(|v| v.parse().ok()) {
                    Some(ms) if ms >= 1 => Some(ms),
                    _ => usage(),
                }
            }
            "--watch" => watch = it.next().cloned().or_else(|| usage()),
            "--iters" => {
                iters = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage(),
                }
            }
            "--batch-window-ms" => {
                window_ms = match it.next().and_then(|v| v.parse().ok()) {
                    Some(ms) => Some(ms),
                    None => usage(),
                }
            }
            "--promote-after" => {
                promote_after = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => Some(n),
                    None => usage(),
                }
            }
            _ => positional.push(a.clone()),
        }
    }
    let (path, net, batch, dev) = parse_snapshot_args(&positional);
    let model = load_model(&path);
    let mut cfg = EngineConfig::default();
    if let Some(cap) = queue_cap {
        cfg.queue_capacity = cap;
    }
    if let Some(ms) = window_ms {
        cfg.batch_window = Some(BatchWindow::millis(ms));
    }
    if let Some(n) = promote_after {
        cfg.promote_after = n;
    }
    let engine = InferenceEngine::new(model, cfg);
    eprintln!(
        "[cdmpp] serving with {} inference workers (zero training, zero recording)",
        engine.worker_count()
    );
    // The watcher compares (mtime, len) and advances its state only after
    // a successful swap, so half-written files retry instead of being
    // recorded as seen.
    let mut watcher = watch.as_deref().map(SnapshotWatcher::new);
    let mut failures = 0usize;
    for i in 0..iters {
        // Watched-path hot swap: a new checkpoint published between
        // iterations cuts the engine over without dropping in-flight work.
        if let Some(w) = watcher.as_mut() {
            match w.poll(&engine) {
                Some(Ok(generation)) => eprintln!(
                    "[cdmpp] hot-swapped onto {} (generation {generation})",
                    w.path().display()
                ),
                Some(Err(e)) => {
                    eprintln!("[cdmpp] hot swap of {} failed: {e}", w.path().display())
                }
                None => {}
            }
        }
        let opts = match deadline_ms {
            Some(ms) => SubmitOptions::deadline_within(std::time::Duration::from_millis(ms)),
            None => SubmitOptions::default(),
        };
        match end_to_end_opts(&engine, &net, &dev, i as u64, &opts) {
            Ok(r) => print_result(&net, batch, &dev, &r),
            Err(e) => {
                eprintln!("[cdmpp] iteration {i} failed: {e}");
                failures += 1;
            }
        }
    }
    eprintln!("[cdmpp] engine stats: {}", engine.stats());
    std::process::exit(if failures == iters { 1 } else { 0 });
}

/// `cdmpp predict --snapshot <path> <network> <batch> <device>`:
/// single-threaded prediction from the checkpoint (no worker pool — the
/// minimal cold-start path).
fn cmd_predict(args: &[String]) -> ! {
    let (path, net, batch, dev) = parse_snapshot_args(args);
    let model = load_model(&path);
    match end_to_end_frozen(&model, &net, &dev, 0) {
        Ok(r) => {
            print_result(&net, batch, &dev, &r);
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("[cdmpp] inference failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Parses a task-nest spec: `dense:MxNxK`, `bmm:BxMxNxK`, `softmax:RxC`.
fn parse_nest(spec: &str) -> Option<Nest> {
    let (kind, dims) = spec.split_once(':')?;
    let d: Vec<u64> = dims
        .split('x')
        .map(str::parse)
        .collect::<Result<_, _>>()
        .ok()?;
    let op = match (kind, d.as_slice()) {
        ("dense", &[m, n, k]) => OpSpec::Dense { m, n, k },
        ("bmm", &[b, m, n, k]) => OpSpec::BatchMatmul { b, m, n, k },
        ("softmax", &[rows, cols]) => OpSpec::Softmax { rows, cols },
        _ => return None,
    };
    Some(op.canonical_nest())
}

/// `cdmpp search <device> [--nest <spec>] [--rounds N] [--candidates N]
///  [--snapshot <snapshot>] [--engine]`: generational schedule search on
/// one task nest, driven by the cost model — serially (`InferenceModel`
/// scoring on the calling thread), or with `--engine` through the
/// concurrent serving engine's zero-alloc scoring front end
/// ([`EngineCostModel`]). Each round reports the search-quality regret of
/// the model's pick against the in-round simulator optimum. Without
/// `--snapshot`, a cost model is trained on the fly first.
fn cmd_search(args: &[String]) -> ! {
    let mut device: Option<String> = None;
    let mut snapshot: Option<String> = None;
    let mut nest_spec = "dense:128x128x128".to_string();
    let mut rounds = 6usize;
    let mut candidates = 1024usize;
    let mut engine_backed = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--snapshot" => snapshot = it.next().cloned().or_else(|| usage()),
            "--nest" => nest_spec = it.next().cloned().unwrap_or_else(|| usage()),
            "--rounds" => {
                rounds = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage(),
                }
            }
            "--candidates" => {
                candidates = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage(),
                }
            }
            "--engine" => engine_backed = true,
            _ if device.is_none() => device = Some(a.clone()),
            _ => usage(),
        }
    }
    let Some(device) = device else { usage() };
    let dev = device_or_usage(&device);
    let Some(nest) = parse_nest(&nest_spec) else {
        eprintln!(
            "invalid --nest '{nest_spec}': expected dense:MxNxK, bmm:BxMxNxK, or softmax:RxC"
        );
        usage();
    };
    let model = match &snapshot {
        Some(p) => load_model(p),
        None => train_model(&dev, 12).into_frozen(),
    };
    let cfg = GenSearchConfig {
        rounds,
        candidates_per_round: candidates,
        oracle_regret: true,
        ..Default::default()
    };
    let canonical = Simulator::new(dev.clone())
        .latency_seconds(&lower(&nest, &Schedule::default()).expect("canonical schedule lowers"));
    let started = std::time::Instant::now();
    let trace = if engine_backed {
        let engine = std::sync::Arc::new(InferenceEngine::new(model, EngineConfig::default()));
        let cost = EngineCostModel::new(std::sync::Arc::clone(&engine), 0);
        let trace = generational_search(&nest, &dev, &cost, &cfg);
        let t = cost.timings();
        let s = engine.stats();
        eprintln!(
            "[cdmpp] engine scoring: {} candidates scored, encode {:.1} ms, \
             dispatch {:.1} ms (worker busy {:.1} ms)",
            t.scored,
            t.encode_ns as f64 / 1e6,
            t.dispatch_ns as f64 / 1e6,
            s.predict_ns as f64 / 1e6
        );
        eprintln!("[cdmpp] engine stats: {s}");
        trace
    } else {
        generational_search(&nest, &dev, &model, &cfg)
    };
    let wall = started.elapsed();
    for (i, r) in trace.rounds.iter().enumerate() {
        println!(
            "round {i}: {} unique of {} proposed, best predicted {:.3e}, \
             measured {:.4} ms, best so far {:.4} ms, regret {:.2}%",
            r.unique,
            r.proposed,
            r.best_predicted,
            r.round_measured * 1e3,
            r.best_measured * 1e3,
            r.regret * 100.0
        );
    }
    println!(
        "{nest_spec} on {}: best {:.4} ms vs canonical {:.4} ms ({:.2}x), \
         {} simulator measurements, {:.2} s wall",
        dev.name,
        trace.best_measured * 1e3,
        canonical * 1e3,
        canonical / trace.best_measured,
        trace.measurements,
        wall.as_secs_f64()
    );
    std::process::exit(0);
}

/// Legacy flow: train on the fly, then serve in the same process.
fn cmd_legacy(args: &[String]) -> ! {
    let [net_name, batch, device] = args else {
        usage();
    };
    let batch = parse_batch(batch);
    let net = network_or_usage(net_name, batch);
    let dev = device_or_usage(device);
    let model = train_model(&dev, 12);
    // Serve inference through the forward-only engine (one worker per
    // core). Training is done with the model, so the weights move into
    // the served Arc without a copy.
    let engine = InferenceEngine::new(model.into_frozen(), EngineConfig::default());
    eprintln!(
        "[cdmpp] serving with {} inference workers",
        engine.worker_count()
    );
    match cdmpp::runtime::end_to_end(&engine, &net, &dev, 0) {
        Ok(r) => {
            print_result(&net, batch, &dev, &r);
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("[cdmpp] inference failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("search") => cmd_search(&args[1..]),
        Some(_) if args.len() == 3 => cmd_legacy(&args),
        _ => usage(),
    }
}
