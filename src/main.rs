//! The `cdmpp` command-line interface (§6 of the paper):
//!
//! ```console
//! $ cdmpp <network> <batch_size> <device>
//! $ cdmpp resnet50 1 T4
//! ```
//!
//! Trains a compact cost model on the fly (the paper loads a pre-trained
//! checkpoint; at this repo's scale training takes well under a minute),
//! freezes it into the concurrent `runtime` serving engine, and prints the
//! predicted end-to-end latency of the network on the device, alongside
//! the simulated ground truth.

use cdmpp::prelude::*;
use cdmpp::runtime::{EngineConfig, InferenceEngine};

fn usage() -> ! {
    eprintln!("usage: cdmpp <network> <batch_size> <device>");
    eprintln!("  networks: resnet50 resnet18 mobilenet_v2 bert_tiny bert_base vgg16 inception_v3 gpt2_small mlp_mixer");
    eprintln!(
        "  devices:  {}",
        cdmpp::devsim::all_devices()
            .iter()
            .map(|d| d.name.clone())
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(2);
}

fn network_by_name(name: &str, batch: u64) -> Option<Network> {
    cdmpp::tir::all_networks(batch)
        .into_iter()
        .find(|n| n.name == name)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 4 {
        usage();
    }
    let batch: u64 = match args[2].parse() {
        Ok(b) if b >= 1 => b,
        _ => usage(),
    };
    let Some(net) = network_by_name(&args[1], batch) else {
        eprintln!("unknown network '{}'", args[1]);
        usage();
    };
    let Some(dev) = cdmpp::devsim::device_by_name(&args[3]) else {
        eprintln!("unknown device '{}'", args[3]);
        usage();
    };

    eprintln!("[cdmpp] training cost model for {}...", dev.name);
    let ds = Dataset::generate(GenConfig {
        batch: 1,
        schedules_per_task: 24,
        devices: vec![dev.clone()],
        seed: 0,
        noise_sigma: 0.03,
    });
    let split = SplitIndices::for_device(&ds, &dev.name, &[], 0);
    let (model, _) = pretrain(
        &ds,
        &split.train,
        &split.valid,
        PredictorConfig::default(),
        TrainConfig {
            epochs: 12,
            lr: 1.5e-3,
            ..Default::default()
        },
    );
    let m = evaluate(&model, &ds, &split.test);
    eprintln!("[cdmpp] cost model test MAPE: {:.1}%", m.mape * 100.0);

    // Serve inference through the forward-only engine (one worker per
    // core); training kept the mutable parameter store, serving shares
    // frozen weights across the pool.
    let engine = InferenceEngine::from_trained(&model, EngineConfig::default());
    eprintln!(
        "[cdmpp] serving with {} inference workers",
        engine.worker_count()
    );
    let r = match cdmpp::runtime::end_to_end(&engine, &net, &dev, 0) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[cdmpp] inference failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{} (batch {}) on {}: predicted {:.3} ms / iteration (simulated ground truth {:.3} ms, error {:.1}%)",
        net.name,
        batch,
        dev.name,
        r.predicted_s * 1e3,
        r.measured_s * 1e3,
        r.error() * 100.0
    );
}
